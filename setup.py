"""Legacy setup shim: offline environments lack the `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e . --no-build-isolation
--no-use-pep517` uses this file instead."""
from setuptools import setup

setup()
