"""Legacy setup shim: offline environments lack the `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e . --no-build-isolation
--no-use-pep517` uses this file instead."""
from setuptools import find_packages, setup

setup(
    name="repro-stateless-computation",
    version="0.6.0",
    description=(
        "Reproduction of 'Stateless Computation'"
        " (Dolev, Erdmann, Lutz, Schapira, Zair; PODC 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    extras_require={
        # The vectorized batch-simulation backend (repro.core.batch).
        "batch": ["numpy>=1.22"],
        # Compiled fused-window kernels (repro.core.batch_kernels);
        # kernel="auto" picks them up whenever numba imports.
        "numba": ["numba>=0.57", "numpy>=1.22"],
        # Symbolic cost model, trajectory fitting, complexity gates,
        # and cost-model-backed service admission control.
        "costmodel": ["sympy>=1.11"],
        # Everything the test suite and benchmarks need.
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
            "numpy>=1.22",
            "sympy>=1.11",
        ],
    },
)
