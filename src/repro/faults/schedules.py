"""Fault schedules: when fault models fire.

Mirrors the design of :mod:`repro.core.schedule`: a :class:`FaultSchedule`
maps time steps to fault models the way an activation schedule maps time
steps to activation sets.  The engine consumes one bounded view,
:meth:`FaultSchedule.fires_within`, so checking "does a fault fire now?"
costs nothing on the hot path — the fire list is materialized once per run,
and a run with no fires is byte-for-byte the ordinary analyzed run.

Fault times are 0-based and use the same convention as activation sets: a
fault at time ``t`` corrupts the configuration at time ``t``, *before* the
activation set ``sigma(t)`` is applied.  A fault at time 0 corrupts the
initial configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.exceptions import ValidationError
from repro.faults.models import FaultModel

#: One fault firing: (time step, model to apply).
Fire = tuple[int, FaultModel]


class FaultSchedule(ABC):
    """A (possibly empty) assignment of fault models to time steps."""

    @abstractmethod
    def fires_within(self, horizon: int) -> list[Fire]:
        """All firings with ``0 <= time < horizon``, sorted by time.

        Several entries may share a time (composed schedules); they apply in
        list order.
        """

    def last_fire_within(self, horizon: int) -> int | None:
        """The time of the last firing before ``horizon``, or ``None``."""
        fires = self.fires_within(horizon)
        return fires[-1][0] if fires else None


class NoFaults(FaultSchedule):
    """The empty fault schedule — the fault-free baseline."""

    def fires_within(self, horizon: int) -> list[Fire]:
        return []

    def __repr__(self) -> str:
        return "NoFaults()"


class OneShotFault(FaultSchedule):
    """A single fault model firing once at a fixed time."""

    def __init__(self, time: int, model: FaultModel):
        if time < 0:
            raise ValidationError("fault times must be >= 0")
        self.time = time
        self.model = model

    def fires_within(self, horizon: int) -> list[Fire]:
        return [(self.time, self.model)] if self.time < horizon else []

    def __repr__(self) -> str:
        return f"OneShotFault(time={self.time}, model={self.model!r})"


class BurstFault(FaultSchedule):
    """One fault model firing at each of an explicit list of times."""

    def __init__(self, times: Iterable[int], model: FaultModel):
        self.times = tuple(sorted(times))
        if not self.times:
            raise ValidationError("a burst fault needs at least one fire time")
        if self.times[0] < 0:
            raise ValidationError("fault times must be >= 0")
        self.model = model

    def fires_within(self, horizon: int) -> list[Fire]:
        return [(t, self.model) for t in self.times if t < horizon]

    def __repr__(self) -> str:
        return f"BurstFault(times={list(self.times)!r}, model={self.model!r})"


class WindowFault(FaultSchedule):
    """A fault model firing at every step of ``[start, stop)``.

    The natural timing for :class:`repro.faults.models.StuckAtFault`: the
    model re-applies before every transition in the window, holding its edges
    at the stuck value no matter what the protocol writes.
    """

    def __init__(self, start: int, stop: int, model: FaultModel):
        if start < 0:
            raise ValidationError("fault times must be >= 0")
        if stop <= start:
            raise ValidationError("a fault window needs stop > start")
        self.start = start
        self.stop = stop
        self.model = model

    def fires_within(self, horizon: int) -> list[Fire]:
        return [(t, self.model) for t in range(self.start, min(self.stop, horizon))]

    def __repr__(self) -> str:
        return (
            f"WindowFault(start={self.start}, stop={self.stop},"
            f" model={self.model!r})"
        )


class PeriodicFault(FaultSchedule):
    """A fault model firing every ``period`` steps from ``start`` on."""

    def __init__(
        self,
        period: int,
        model: FaultModel,
        start: int = 0,
        stop: int | None = None,
    ):
        if period < 1:
            raise ValidationError("fault period must be >= 1")
        if start < 0:
            raise ValidationError("fault times must be >= 0")
        if stop is not None and stop <= start:
            raise ValidationError("a bounded periodic fault needs stop > start")
        self.period = period
        self.start = start
        self.stop = stop
        self.model = model

    def fires_within(self, horizon: int) -> list[Fire]:
        stop = horizon if self.stop is None else min(self.stop, horizon)
        return [(t, self.model) for t in range(self.start, stop, self.period)]

    def __repr__(self) -> str:
        return (
            f"PeriodicFault(period={self.period}, start={self.start},"
            f" stop={self.stop}, model={self.model!r})"
        )


class ComposedFaultSchedule(FaultSchedule):
    """The union of several fault schedules.

    Firings merge in time order; parts firing at the same time apply in the
    order the parts were given.
    """

    def __init__(self, parts: Sequence[FaultSchedule]):
        self.parts = tuple(parts)
        if not self.parts:
            raise ValidationError("a composed fault schedule needs at least one part")

    def fires_within(self, horizon: int) -> list[Fire]:
        fires = [
            (t, k, model)
            for k, part in enumerate(self.parts)
            for (t, model) in part.fires_within(horizon)
        ]
        fires.sort(key=lambda item: (item[0], item[1]))
        return [(t, model) for (t, _k, model) in fires]

    def __repr__(self) -> str:
        return f"ComposedFaultSchedule({list(self.parts)!r})"
