"""Adversarial schedules: activation choices that delay convergence.

Theorem 3.1 reasons about *worst-case* r-fair schedules; the random r-fair
schedule is a poor stand-in for that worst case.  This module provides the
adversary explicitly, in two strengths:

* :class:`GreedyAdversarySchedule` — a scalable heuristic.  At every step it
  enumerates (or, past a cap, samples deterministically from) the activation
  sets an r-fair schedule may still choose, simulates each through the
  compiled protocol, and picks the one that keeps the run furthest from
  absorption: successor not a stable labeling first, then a one-step
  lookahead probe (the successor's own full-activation image not stable
  either), then keep-the-labels-moving, then minimal churn.  The probe is
  what lets the greedy adversary sustain Example 1's token oscillation — a
  pure churn heuristic collapses the token into the all-one absorbing
  labeling within two steps.
* :func:`exhaustive_worst_case_delay` / :class:`MinimaxAdversarySchedule` —
  the exact bounded search on paper-sized systems.  It materializes the
  Theorem 3.1 states-graph over ``(labeling, countdown)`` pairs and computes
  the longest activation sequence before the labeling hits a stable fixed
  point, detecting unbounded delay (a reachable cycle of non-stable states)
  exactly.  The witness replays as an ordinary (lasso) schedule, so the
  engine's exact cycle analysis applies to adversarial runs too.

Both adversaries are r-fair **by construction**: candidate activation sets
always contain every node whose activation deadline arrived, exactly like
the states-graph's valid activation sets.

A greedy schedule simulates the run internally, so it is only meaningful for
an engine run started from the *same* protocol, inputs, and initial labeling
it was built with.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.compiled import compile_protocol
from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.core.schedule import LassoSchedule, Schedule
from repro.exceptions import ValidationError
from repro.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.stabilization.exploration import (
    DEFAULT_STATE_BUDGET,
    ExplorationGraph,
    ExplorationStats,
    valid_activation_sets,
)

#: Above this many candidate activation sets per step the greedy adversary
#: switches from exhaustive enumeration to a deterministic O(n) family.
DEFAULT_CANDIDATE_CAP = 256


def _candidate_sets(
    countdown: Sequence[int], n: int, cap: int
) -> list[frozenset[int]]:
    """The activation sets the adversary considers this step, r-fair-valid.

    Small systems get every valid set; larger ones a deterministic family
    (forced set, forced plus one node, forced plus one adjacent pair, all
    nodes) that still spans "minimal", "local", and "global" moves.
    """
    forced = frozenset(i for i in range(n) if countdown[i] == 1)
    optional = [i for i in range(n) if i not in forced]
    if 1 << len(optional) <= cap:
        return valid_activation_sets(countdown, n)
    candidates = []
    if forced:
        candidates.append(forced)
    for i in optional:
        candidates.append(forced | {i})
    for i, j in zip(optional, optional[1:], strict=False):
        candidates.append(forced | {i, j})
    full = frozenset(range(n))
    if full not in candidates:
        candidates.append(full)
    return candidates


class GreedyAdversarySchedule(Schedule):
    """A convergence-delaying r-fair schedule (1-step lookahead heuristic).

    Realized steps are memoized, so ``active(t)`` is stable across repeated
    queries and the internal simulation advances once per step.  Aperiodic
    (``period is None``): engine runs under it use the fixed-point
    certification path, so a stabilization verdict is still exact.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        initial_labeling: Labeling,
        r: int,
        candidate_cap: int = DEFAULT_CANDIDATE_CAP,
    ):
        super().__init__(protocol.n)
        if r < 1:
            raise ValidationError("fairness parameter r must be >= 1")
        if len(inputs) != protocol.n:
            raise ValidationError(f"need {protocol.n} inputs, got {len(inputs)}")
        if candidate_cap < 1:
            raise ValidationError("candidate cap must be >= 1")
        self.r = r
        self.candidate_cap = candidate_cap
        self._compiled = compile_protocol(protocol)
        self._inputs = tuple(inputs)
        self._values = initial_labeling.values
        self._all_nodes = frozenset(range(protocol.n))
        self._countdown = [r] * protocol.n
        self._memo: list[frozenset[int]] = []
        self._stable_cache: dict[tuple, bool] = {}

    def _is_stable(self, values: tuple) -> bool:
        cached = self._stable_cache.get(values)
        if cached is None:
            cached = self._compiled.is_fixed_point(values, self._inputs)
            self._stable_cache[values] = cached
        return cached

    def _score(self, values: tuple, successor: tuple) -> tuple:
        """Greedy preference, larger is better (see module docstring)."""
        if self._is_stable(successor):
            # Absorbed: nothing past this matters.
            return (0, 0, 0, 0)
        probe, _ = self._compiled.step_values(
            successor, None, self._all_nodes, self._inputs
        )
        probe_survives = not self._is_stable(probe)
        changed = sum(a != b for a, b in zip(values, successor, strict=True))
        return (1, int(probe_survives), int(changed > 0), -changed)

    def _generate_next(self) -> frozenset[int]:
        candidates = _candidate_sets(self._countdown, self.n, self.candidate_cap)
        # Deterministic tie-break: smallest set first, then lexicographic.
        candidates.sort(key=lambda s: (len(s), sorted(s)))
        best_set = None
        best_score = None
        best_successor = None
        for active in candidates:
            successor, _ = self._compiled.step_values(
                self._values, None, active, self._inputs
            )
            score = self._score(self._values, successor)
            if best_score is None or score > best_score:
                best_set, best_score, best_successor = active, score, successor
        self._values = best_successor
        self._countdown = [
            self.r if i in best_set else self._countdown[i] - 1
            for i in range(self.n)
        ]
        return best_set

    def active(self, t: int) -> frozenset[int]:
        while len(self._memo) <= t:
            self._memo.append(self._generate_next())
        return self._memo[t]


@dataclass(frozen=True)
class WorstCaseDelay:
    """The exact worst-case label-stabilization delay under r-fair schedules.

    ``delay`` is the maximum number of steps any r-fair schedule can keep
    the labeling away from a stable fixed point, or ``None`` when some
    r-fair schedule avoids stabilization forever.  ``prefix``/``loop`` are a
    witness: the activation sets achieving the delay (for unbounded delay,
    ``loop`` is a non-stabilizing cycle entered after ``prefix``).
    """

    delay: int | None
    prefix: tuple[frozenset[int], ...]
    loop: tuple[frozenset[int], ...]
    states_explored: int
    n: int
    stats: ExplorationStats | None = None

    @property
    def bounded(self) -> bool:
        return self.delay is not None

    def schedule(self) -> Schedule:
        """Replay the witness as an eventually periodic schedule.

        Bounded delays pad the tail with full activations (1-fair, hence
        r-fair), which keep an already-stable labeling stable.
        """
        loop = self.loop if self.loop else (frozenset(range(self.n)),)
        return LassoSchedule(self.n, self.prefix, loop)


def exhaustive_worst_case_delay(
    protocol: Protocol,
    inputs: Sequence[Any],
    initial_labeling: Labeling,
    r: int,
    budget: int = DEFAULT_STATE_BUDGET,
    policy: ExecutionPolicy | None = None,
    symmetry=UNSET,
    frontier: str = UNSET,
    spill_dir=UNSET,
) -> WorstCaseDelay:
    """Exact worst-case delay via the Theorem 3.1 states-graph.

    Longest-path search over the reachable ``(labeling, countdown)`` states,
    materialized by the unified exploration core: states whose labeling is a
    stable fixed point have delay 0; any other state's delay is one more
    than the best successor's; a reachable cycle of non-stable states makes
    the delay unbounded.  Exact, but exponential — paper-sized systems only
    (``budget`` guards the graph size).

    With ``symmetry="auto"`` the search runs on the symmetry quotient:
    stability is orbit-invariant and every concrete path corresponds to a
    quotient path of the same length (and vice versa), so the delay is
    unchanged while the graph is up to ``|G|`` times smaller.  Witness
    schedules are lifted back to concrete activation sets before return.
    """
    policy = resolve_policy(
        policy,
        {"symmetry": symmetry, "frontier": frontier, "spill_dir": spill_dir},
        api="exhaustive_worst_case_delay",
    )
    inputs = tuple(inputs)
    graph = ExplorationGraph(
        protocol,
        inputs,
        r,
        [initial_labeling],
        budget=budget,
        name="states-graph",
        policy=policy,
    )
    compiled = graph.compiled
    edge_offsets = graph.edge_offsets
    edge_dst = graph.edge_dst
    edge_sid = graph.edge_sid
    edge_gid = graph.edge_gid if graph.quotient else None

    # Stability is a property of the labeling alone (and orbit-invariant on
    # quotient graphs), so cache it per interned labeling id, not per state.
    stable_cache: dict[int, bool] = {}

    def stable(k: int) -> bool:
        lid = graph.label_id_of(k)
        cached = stable_cache.get(lid)
        if cached is None:
            cached = compiled.is_fixed_point(graph.labeling_of(k), inputs)
            stable_cache[lid] = cached
        return cached

    total = len(graph)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * total
    best = [0.0] * total
    for k in range(total):
        if stable(k):
            color[k] = BLACK  # delay 0, never expanded

    (root,) = graph.initial_indices
    if color[root] != BLACK:
        # Iterative DFS with per-frame running max over the packed edge
        # arrays; an edge into a GRAY state is a reachable non-stable
        # cycle => unbounded (infinity).
        frames = [(root, edge_offsets[root])]
        color[root] = GRAY
        running = {root: 0.0}
        while frames:
            k, pointer = frames[-1]
            advanced = False
            end = edge_offsets[k + 1]
            while pointer < end:
                j = edge_dst[pointer]
                pointer += 1
                if color[j] == GRAY:
                    running[k] = math.inf
                elif color[j] == BLACK:
                    running[k] = max(running[k], best[j])
                else:
                    color[j] = GRAY
                    running[j] = 0.0
                    frames[-1] = (k, pointer)
                    frames.append((j, edge_offsets[j]))
                    advanced = True
                    break
            if advanced:
                continue
            best[k] = 1.0 + running.pop(k)
            color[k] = BLACK
            frames.pop()
            if frames:
                # Fold the finished child into its DFS parent: the
                # parent's pointer already consumed this successor
                # before pushing it.
                parent = frames[-1][0]
                running[parent] = max(running[parent], best[k])

    # Walk a witness by following argmax successors from the root,
    # collecting edge indices so quotient walks can be lifted afterwards.
    def edge_pair(e: int) -> tuple[int, int]:
        return (edge_sid[e], edge_gid[e] if edge_gid is not None else 0)

    prefix: list[frozenset[int]] = []
    loop: list[frozenset[int]] = []
    if stable(root):
        delay = 0
    elif best[root] == math.inf:
        delay = None
        seen: dict[int, int] = {}
        walk: list[int] = []
        k = root
        while k not in seen:
            seen[k] = len(walk)
            # An unbounded state always has an unbounded non-stable successor.
            for e in range(edge_offsets[k], edge_offsets[k + 1]):
                j = edge_dst[e]
                if not stable(j) and best[j] == math.inf:
                    walk.append(e)
                    k = j
                    break
            else:  # pragma: no cover - DFS invariant
                raise AssertionError("unbounded state has no unbounded successor")
        cut = seen[k]
        prefix, h = graph.lift_pairs(
            [edge_pair(e) for e in walk[:cut]], graph.root_accumulator(root)
        )
        loop = graph.lift_loop_pairs([edge_pair(e) for e in walk[cut:]], h)
    else:
        delay = int(best[root])
        walk = []
        k = root
        while not stable(k):
            chosen = None
            chosen_score = -1.0
            for e in range(edge_offsets[k], edge_offsets[k + 1]):
                j = edge_dst[e]
                score = 0.0 if stable(j) else best[j]
                if score > chosen_score:
                    chosen, chosen_score = e, score
            walk.append(chosen)
            k = edge_dst[chosen]
        prefix, _h = graph.lift_pairs(
            [edge_pair(e) for e in walk], graph.root_accumulator(root)
        )

    return WorstCaseDelay(
        delay=delay,
        prefix=tuple(prefix),
        loop=tuple(loop),
        states_explored=total,
        n=protocol.n,
        stats=graph.stats(),
    )


class MinimaxAdversarySchedule(Schedule):
    """The exact worst-case r-fair adversary, replayed as a schedule.

    Runs the bounded exhaustive search up front (small systems only) and
    replays its witness; eventually periodic, so the engine classifies runs
    under it exactly.  ``delay`` exposes the certified worst case.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        initial_labeling: Labeling,
        r: int,
        budget: int = DEFAULT_STATE_BUDGET,
        policy: ExecutionPolicy | None = None,
        symmetry=UNSET,
        frontier: str = UNSET,
    ):
        super().__init__(protocol.n)
        policy = resolve_policy(
            policy,
            {"symmetry": symmetry, "frontier": frontier},
            api="MinimaxAdversarySchedule",
        )
        self.worst_case = exhaustive_worst_case_delay(
            protocol,
            inputs,
            initial_labeling,
            r,
            budget=budget,
            policy=policy,
        )
        self.r = r
        self._realized = self.worst_case.schedule()

    @property
    def delay(self) -> int | None:
        return self.worst_case.delay

    def active(self, t: int) -> frozenset[int]:
        return self._realized.active(t)

    @property
    def period(self) -> int | None:
        return self._realized.period

    @property
    def preperiod(self) -> int:
        return self._realized.preperiod
