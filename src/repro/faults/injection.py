"""Fault injection through the compiled engine, with certified recovery.

:func:`run_with_faults` is the operational reading of the paper's
self-stabilization claim (Section 1.2): drive a run, corrupt the labeling at
the scheduled fault times, and measure whether — and how fast — the system
re-converges once the faults stop.

The mechanics are built so injection costs nothing when no fault fires:

* the fault schedule is materialized **once** into a sorted fire list
  (:meth:`repro.faults.schedules.FaultSchedule.fires_within`), so the step
  loop never asks "is there a fault now?";
* the pre-fault window steps raw ``(values, outputs)`` tuples through
  :meth:`CompiledProtocol.step_values`, exactly like the engine's own run
  loops;
* the tail — everything after the last fault — is handed to
  ``Simulator.run`` on the schedule shifted to the current time
  (:meth:`repro.core.schedule.Schedule.shifted`), which re-uses the engine's
  exact convergence analysis: cycle detection for periodic schedules, the
  aperiodic fixed-point certifier otherwise.  Recovery is therefore
  *certified*, never inferred from "the outputs looked settled".

All round counts in the report are relative to the **last** fault, which is
the paper's notion of recovery time: rounds from the final perturbation to
stabilization.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.configuration import Configuration, Labeling
from repro.core.convergence import RunOutcome
from repro.core.engine import DEFAULT_MAX_STEPS, Simulator
from repro.exceptions import ScheduleError, ValidationError


@dataclass(frozen=True)
class FaultRunReport:
    """The result of one run with injected faults.

    ``recovery_rounds`` / ``output_recovery_rounds`` / ``cycle_start`` count
    steps *after the last fault* (they are the tail run's ``label_rounds``,
    ``output_rounds`` and ``cycle_start``); ``steps_executed`` counts the
    whole run including the pre-fault window.
    """

    outcome: RunOutcome
    #: Rounds after the last fault until the labeling fixed (None if it
    #: never did within budget).
    recovery_rounds: int | None
    #: Rounds after the last fault until the outputs fixed.
    output_recovery_rounds: int | None
    #: When the tail entered its final cycle (periodic schedules only).
    cycle_start: int | None
    cycle_length: int | None
    faults_fired: int
    fault_times: tuple[int, ...]
    last_fault_time: int | None
    steps_executed: int
    final: Configuration = field(repr=False)

    @property
    def recovered(self) -> bool:
        """Label stabilization certified after the last fault."""
        return self.outcome is RunOutcome.LABEL_STABLE

    @property
    def output_recovered(self) -> bool:
        """Output stabilization (implied by label stabilization)."""
        return self.outcome in (RunOutcome.LABEL_STABLE, RunOutcome.OUTPUT_STABLE)

    @property
    def outputs(self) -> tuple[Any, ...]:
        return self.final.outputs

    def describe(self) -> str:
        parts = [f"outcome={self.outcome.value}", f"faults={self.faults_fired}"]
        if self.last_fault_time is not None:
            parts.append(f"last_fault={self.last_fault_time}")
        if self.recovery_rounds is not None:
            parts.append(f"recovery_rounds={self.recovery_rounds}")
        if self.output_recovery_rounds is not None:
            parts.append(f"output_recovery_rounds={self.output_recovery_rounds}")
        if self.cycle_length is not None:
            parts.append(f"cycle={self.cycle_start}+{self.cycle_length}")
        parts.append(f"steps={self.steps_executed}")
        return "FaultRunReport(" + ", ".join(parts) + ")"


def validate_fires(fires, max_steps: int) -> None:
    """Check a materialized fire list obeys the injection contract.

    Shared by this serial injector and the batch backend
    (:meth:`repro.core.batch.BatchSimulator.run_batch_with_faults`), so the
    two executors accept exactly the same fault plans.
    """
    for (time, _model) in fires:
        if time < 0 or time >= max_steps:
            raise ValidationError(
                f"fault schedule fired at {time}, outside 0..{max_steps - 1}"
            )
    if any(fires[k][0] > fires[k + 1][0] for k in range(len(fires) - 1)):
        raise ValidationError("fault schedule fires must be sorted by time")


def run_with_faults(
    simulator: Simulator,
    labeling: Labeling,
    schedule,
    faults,
    max_steps: int = DEFAULT_MAX_STEPS,
    initial_outputs: Sequence[Any] | None = None,
) -> FaultRunReport:
    """Run ``simulator`` under ``schedule`` while injecting ``faults``.

    A fault at time ``t`` corrupts the configuration at time ``t``, before
    the activation set ``sigma(t)`` applies — so a fault at time 0 corrupts
    the initial configuration.  Faults at or past ``max_steps`` never fire.

    Also reachable as ``Simulator.run_with_faults`` sugar.
    """
    fires = faults.fires_within(max_steps)
    validate_fires(fires, max_steps)

    # Raw pre-fault window: identical stepping to the engine's run loops.
    values, outputs = simulator._initial_raw(labeling, initial_outputs)
    topology = simulator.protocol.topology
    space = simulator.protocol.label_space
    step = simulator.compiled.step_values
    active = schedule.active
    inputs = simulator.inputs
    t = 0
    fault_times = []
    for (fire_time, model) in fires:
        while t < fire_time:
            try:
                current = active(t)
            except ScheduleError:
                # Finite (non-cycling) schedule exhausted inside the fault
                # window: end gracefully, like the engine's own run loops.
                return FaultRunReport(
                    outcome=RunOutcome.SCHEDULE_EXHAUSTED,
                    recovery_rounds=None,
                    output_recovery_rounds=None,
                    cycle_start=None,
                    cycle_length=None,
                    faults_fired=len(fault_times),
                    fault_times=tuple(fault_times),
                    last_fault_time=fault_times[-1] if fault_times else None,
                    steps_executed=t,
                    final=simulator._materialize(values, outputs),
                )
            values, outputs = step(values, outputs, current, inputs)
            t += 1
        values = model.apply(values, topology, space, fire_time)
        fault_times.append(fire_time)

    # Certified tail: the ordinary analyzed run on the shifted schedule.
    tail = simulator.run(
        Labeling(topology, values),
        schedule.shifted(t),
        max_steps=max_steps - t,
        initial_outputs=outputs,
    )
    return FaultRunReport(
        outcome=tail.outcome,
        recovery_rounds=tail.label_rounds,
        output_recovery_rounds=tail.output_rounds,
        cycle_start=tail.cycle_start,
        cycle_length=tail.cycle_length,
        faults_fired=len(fault_times),
        fault_times=tuple(fault_times),
        last_fault_time=fault_times[-1] if fault_times else None,
        steps_executed=t + tail.steps_executed,
        final=tail.final,
    )
