"""Fault models: what one transient fault does to the edge labeling.

The paper's self-stabilization claim (Section 1.2) quantifies over *any*
transient corruption of the edge labels, provided code and inputs stay
intact.  A :class:`FaultModel` makes that perturbation a first-class object:
it maps a flat label tuple (canonical edge order, exactly what the compiled
engine runs on) to a corrupted flat label tuple.

Contracts shared by every model:

* **Pure and seeded.**  ``apply(values, topology, space, step)`` depends only
  on its arguments and the model's own constructor parameters.  Randomized
  models derive their RNG from ``(seed, step)``, so the same fault at the
  same time produces the same corruption no matter how many times — or in
  which process — it is evaluated.  This is what lets resilience sweeps fan
  out over ``multiprocessing`` and stay bit-identical to serial runs.
* **Picklable.**  Models hold only plain data (no closures, no RNG state),
  so they ship to worker processes as-is.
* **Identity-preserving.**  A model that changes nothing returns the input
  tuple object unchanged, keeping the engine's ``is``-based fast paths
  intact.

Timing is deliberately *not* a model concern: :mod:`repro.faults.schedules`
decides when a model fires, mirroring the engine's split between reaction
functions and activation schedules.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping

from repro.core.labels import Label, LabelSpace
from repro.core.reaction import Edge
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology


def _scatter_rows(codes, rows, positions, new_codes) -> None:
    """Write ``new_codes`` into ``codes[rows x positions]`` in one scatter.

    The vectorized counterpart of ``for row in rows: codes[row, positions] =
    new_codes``.  numpy is imported lazily: this module stays importable
    without it, and ``fire_batch`` is only ever reached from the batch
    backend, which requires numpy anyway.
    """
    import numpy as np

    grid = np.ix_(
        np.asarray(rows, dtype=np.intp), np.asarray(positions, dtype=np.intp)
    )
    codes[grid] = new_codes


def _derive_rng(seed: int, step: int) -> random.Random:
    """A fresh RNG for one (model seed, fire time) pair.

    Multiplying by a large odd constant decorrelates neighboring seeds and
    steps; masking keeps the product in an int range ``random.Random``
    seeds directly.
    """
    return random.Random((seed * 0x9E3779B1 + step * 0x85EBCA77) & 0xFFFFFFFFFFFFFFFF)


class FaultModel(ABC):
    """One transient corruption of the labeling, on flat label tuples."""

    @abstractmethod
    def apply(
        self, values: tuple, topology: Topology, space: LabelSpace, step: int
    ) -> tuple:
        """The corrupted labeling values (``values`` itself if nothing changed)."""

    def fire_batch(self, codes, rows, topology, space, interner, step) -> None:
        """Apply this fault to several rows of a batch code array, in place.

        ``codes`` is the batch backend's ``(B, m)`` label-code array
        (:mod:`repro.core.batch`), ``rows`` the row indices firing this model
        at time ``step``, and ``interner`` the backend's label interner.  The
        contract is equality with :meth:`apply` row by row — same ``(seed,
        fire time)`` RNG derivation, same resulting labeling — so batch
        resilience sweeps stay interchangeable with serial ones.

        The default decodes each row and runs :meth:`apply` itself (exact by
        construction); models whose draw sequence does not depend on the
        current labeling override this to derive the corruption once and
        scatter it across all rows.
        """
        for row in rows:
            values = self.apply(
                interner.decode_values(codes[row]), topology, space, step
            )
            codes[row] = interner.encode_values(values)


class RandomCorruption(FaultModel):
    """Overwrite each edge independently with probability ``fraction``.

    Replacement labels are drawn uniformly from the label space (a draw may
    repeat the current label; the *edge* is still counted as corrupted, which
    matches the paper's "arbitrary transient fault" reading).
    """

    def __init__(self, fraction: float = 0.5, seed: int = 0):
        if not 0.0 <= fraction <= 1.0:
            raise ValidationError("corruption fraction must lie in [0, 1]")
        self.fraction = fraction
        self.seed = seed

    def apply(self, values, topology, space, step):
        rng = _derive_rng(self.seed, step)
        fraction = self.fraction
        new_values = list(values)
        changed = False
        for position in range(len(values)):
            if rng.random() < fraction:
                new_values[position] = space.sample(rng)
                changed = True
        return tuple(new_values) if changed else values

    def fire_batch(self, codes, rows, topology, space, interner, step) -> None:
        # The draw sequence of apply() depends only on (seed, step), never on
        # the current labeling, so one replay serves every row.
        rng = _derive_rng(self.seed, step)
        fraction = self.fraction
        positions: list[int] = []
        labels: list = []
        for position in range(codes.shape[1]):
            if rng.random() < fraction:
                positions.append(position)
                labels.append(space.sample(rng))
        if not positions:
            return
        new_codes = [interner.encode(label) for label in labels]
        _scatter_rows(codes, rows, positions, new_codes)

    def __repr__(self) -> str:
        return f"RandomCorruption(fraction={self.fraction}, seed={self.seed})"


class TargetedCorruption(FaultModel):
    """Corrupt a chosen set of edges, leaving every other edge untouched.

    Without ``labels``, each listed edge gets an independent uniform label
    from the space; with ``labels`` (a mapping ``edge -> label``) the listed
    edges are overwritten deterministically — the shape an *adversarial*
    fault takes, e.g. re-planting an oscillation token.
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        labels: Mapping[Edge, Label] | None = None,
        seed: int = 0,
    ):
        self.edges = tuple(edges)
        if not self.edges:
            raise ValidationError("a targeted corruption needs at least one edge")
        self.labels = dict(labels) if labels is not None else None
        if self.labels is not None:
            unknown = set(self.labels) - set(self.edges)
            if unknown:
                raise ValidationError(
                    f"labels given for edges outside the target set: {sorted(unknown)}"
                )
        self.seed = seed

    def apply(self, values, topology, space, step):
        rng = _derive_rng(self.seed, step)
        position = topology.edge_position
        new_values = list(values)
        for edge in self.edges:
            if self.labels is not None and edge in self.labels:
                label = self.labels[edge]
                if label not in space:
                    raise ValidationError(
                        f"fault label {label!r} for edge {edge!r} is not in {space!r}"
                    )
            else:
                label = space.sample(rng)
            new_values[position(edge)] = label
        return tuple(new_values)

    def fire_batch(self, codes, rows, topology, space, interner, step) -> None:
        # Same edit list for every row: explicit labels are fixed, random
        # replacements replay apply()'s (seed, step) draw sequence.
        rng = _derive_rng(self.seed, step)
        position = topology.edge_position
        positions: list[int] = []
        new_codes: list[int] = []
        for edge in self.edges:
            if self.labels is not None and edge in self.labels:
                label = self.labels[edge]
                if label not in space:
                    raise ValidationError(
                        f"fault label {label!r} for edge {edge!r} is not in {space!r}"
                    )
            else:
                label = space.sample(rng)
            positions.append(position(edge))
            new_codes.append(interner.encode(label))
        _scatter_rows(codes, rows, positions, new_codes)

    def __repr__(self) -> str:
        return (
            f"TargetedCorruption(edges={self.edges!r},"
            f" labels={self.labels!r}, seed={self.seed})"
        )


class StuckAtFault(FaultModel):
    """Pin a set of edges at one label (the classical stuck-at fault).

    A single application overwrites the edges once; combined with
    :class:`repro.faults.schedules.WindowFault` it holds the edges at the
    value for a whole time window, modeling a stuck channel rather than a
    one-shot glitch.
    """

    def __init__(self, edges: Iterable[Edge], label: Label):
        self.edges = tuple(edges)
        if not self.edges:
            raise ValidationError("a stuck-at fault needs at least one edge")
        self.label = label

    def apply(self, values, topology, space, step):
        if self.label not in space:
            raise ValidationError(
                f"stuck-at label {self.label!r} is not in {space!r}"
            )
        position = topology.edge_position
        new_values = list(values)
        changed = False
        for edge in self.edges:
            p = position(edge)
            if new_values[p] != self.label:
                new_values[p] = self.label
                changed = True
        return tuple(new_values) if changed else values

    def fire_batch(self, codes, rows, topology, space, interner, step) -> None:
        if self.label not in space:
            raise ValidationError(
                f"stuck-at label {self.label!r} is not in {space!r}"
            )
        position = topology.edge_position
        positions = [position(edge) for edge in self.edges]
        code = interner.encode(self.label)
        _scatter_rows(codes, rows, positions, code)

    def __repr__(self) -> str:
        return f"StuckAtFault(edges={self.edges!r}, label={self.label!r})"


class ComposedFault(FaultModel):
    """Apply several fault models in sequence at one fire time."""

    def __init__(self, models: Iterable[FaultModel]):
        self.models = tuple(models)
        if not self.models:
            raise ValidationError("a composed fault needs at least one model")

    def apply(self, values, topology, space, step):
        for model in self.models:
            values = model.apply(values, topology, space, step)
        return values

    def fire_batch(self, codes, rows, topology, space, interner, step) -> None:
        for model in self.models:
            model.fire_batch(codes, rows, topology, space, interner, step)

    def __repr__(self) -> str:
        return f"ComposedFault({list(self.models)!r})"
