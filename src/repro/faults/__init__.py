"""Adversarial fault injection and resilience measurement.

The perturbation layer of the stack (see ``ARCHITECTURE.md``): fault models
operating on flat label tuples (:mod:`repro.faults.models`), fault schedules
deciding when they fire (:mod:`repro.faults.schedules`), certified injection
runs through the compiled engine (:mod:`repro.faults.injection`), and
convergence-delaying adversarial activation schedules
(:mod:`repro.faults.adversary`).

Sweep-scale resilience measurement lives one layer up, in
:func:`repro.analysis.run_resilience_sweep`.
"""

from repro.faults.adversary import (
    DEFAULT_CANDIDATE_CAP,
    GreedyAdversarySchedule,
    MinimaxAdversarySchedule,
    WorstCaseDelay,
    exhaustive_worst_case_delay,
)
from repro.faults.injection import FaultRunReport, run_with_faults
from repro.faults.models import (
    ComposedFault,
    FaultModel,
    RandomCorruption,
    StuckAtFault,
    TargetedCorruption,
)
from repro.faults.schedules import (
    BurstFault,
    ComposedFaultSchedule,
    FaultSchedule,
    NoFaults,
    OneShotFault,
    PeriodicFault,
    WindowFault,
)

__all__ = [
    "BurstFault",
    "ComposedFault",
    "ComposedFaultSchedule",
    "DEFAULT_CANDIDATE_CAP",
    "FaultModel",
    "FaultRunReport",
    "FaultSchedule",
    "GreedyAdversarySchedule",
    "MinimaxAdversarySchedule",
    "NoFaults",
    "OneShotFault",
    "PeriodicFault",
    "RandomCorruption",
    "StuckAtFault",
    "TargetedCorruption",
    "WindowFault",
    "WorstCaseDelay",
    "exhaustive_worst_case_delay",
    "run_with_faults",
]
