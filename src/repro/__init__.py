"""repro — a library reproducing "Stateless Computation" (Dolev, Erdmann,
Lutz, Schapira, Zair; PODC 2017, arXiv:1611.10068).

The package implements the paper's model of stateless, self-stabilizing
distributed computation and every construction in it:

* ``repro.core`` — label spaces, reaction functions, protocols, schedules and
  the simulation engine (Section 2).
* ``repro.graphs`` — directed topologies and their properties.
* ``repro.stabilization`` — stable labelings, the Theorem 3.1 states-graph,
  an exhaustive r-fair model checker, and Example 1.
* ``repro.substrates`` — Boolean circuits, branching programs, logspace
  Turing machines (the classical models of Part II).
* ``repro.power`` — the computational-power constructions of Sections 2 and 5
  (generic protocol, counters, ring simulations of TMs/BPs/circuits,
  counting bound).
* ``repro.lowerbounds`` — the fooling-set method of Section 6.
* ``repro.hardness`` — snake-in-the-box gadgets, the communication and
  PSPACE hardness reductions of Section 4 / Appendix B.
* ``repro.dynamics`` — best-response dynamics applications (BGP routing,
  diffusion, congestion, asynchronous circuits) from Sections 1 and 3.
* ``repro.faults`` — adversarial fault injection: fault models on flat label
  tuples, fault schedules, certified recovery runs, and convergence-delaying
  adversarial schedules (the operational reading of Section 1.2).
* ``repro.analysis`` — round/label complexity measurement, reporting, the
  sweep runners (``run_sweep``, ``run_resilience_sweep``: many cases
  through one compiled protocol), and the symbolic cost model
  (``repro.analysis.costmodel``, requires the ``costmodel`` extra).
* ``repro.service`` — the sweep job service: planner/executor split,
  content-addressed result caching, and cost-model-backed admission
  control.
* ``repro.statics`` — static analysis: the statelessness/purity verifier,
  plan preflight (predicted batch partition, fingerprint-safety), and the
  repo-invariant lint gate (``python -m repro.statics``).

How any of these *run* — executor, kernel, fan-out, frontier engine,
symmetry quotient — is described by one frozen value object,
:class:`repro.ExecutionPolicy`, accepted uniformly by the sweep runners,
the service layer, and the exploration core.  Policies are cosmetic:
they change how fast answers arrive, never which answers (or which cache
keys).

See ``ARCHITECTURE.md`` for the layer stack, including the compiled
fast-path engine core (``repro.core.compiled``).
"""

from repro.core import (
    CompiledProtocol,
    Configuration,
    Labeling,
    RunOutcome,
    RunReport,
    Simulator,
    StatefulProtocol,
    StatelessProtocol,
    SynchronousSchedule,
    compile_protocol,
    synchronous_run,
)
from repro.exceptions import Diagnostic, StaticAnalysisError
from repro.graphs import Topology
from repro.policy import DEFAULT_POLICY, ExecutionPolicy

__version__ = "1.4.0"

__all__ = [
    "CompiledProtocol",
    "Configuration",
    "DEFAULT_POLICY",
    "Diagnostic",
    "ExecutionPolicy",
    "Labeling",
    "RunOutcome",
    "RunReport",
    "Simulator",
    "StatefulProtocol",
    "StatelessProtocol",
    "StaticAnalysisError",
    "SynchronousSchedule",
    "Topology",
    "__version__",
    "compile_protocol",
    "synchronous_run",
]
