"""Stateless and stateful protocols.

A stateless protocol ``A = (Sigma, delta)`` (Section 2.1) packages the label
space and one reaction function per node on a fixed topology.  Inputs are
*not* part of the protocol: they are supplied when a simulator is built, which
mirrors the paper's separation between protocol and input assignment.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.labels import LabelSpace
from repro.core.reaction import ReactionFunction, StatefulReactionFunction
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology


class StatelessProtocol:
    """A stateless protocol: topology, label space, and per-node reactions."""

    is_stateful = False

    def __init__(
        self,
        topology: Topology,
        label_space: LabelSpace,
        reactions: Sequence[ReactionFunction],
        name: str = "",
    ):
        if len(reactions) != topology.n:
            raise ValidationError(
                f"need {topology.n} reactions, got {len(reactions)}"
            )
        self.topology = topology
        self.label_space = label_space
        self.reactions = tuple(reactions)
        self.name = name or "stateless-protocol"

    def reaction(self, i: int) -> ReactionFunction:
        return self.reactions[i]

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def label_complexity(self) -> float:
        """The paper's ``L_n = log2(|Sigma|)``."""
        return self.label_space.bit_length

    def __repr__(self) -> str:
        return (
            f"<StatelessProtocol {self.name!r} on {self.topology.name}"
            f" |Sigma|={self.label_space.size}>"
        )


class StatefulProtocol:
    """A protocol whose reactions also read their own outgoing labels.

    Used only by the PSPACE-hardness reduction (Theorem B.11); Theorem B.14's
    metanode compiler converts these into equivalent stateless protocols.
    """

    is_stateful = True

    def __init__(
        self,
        topology: Topology,
        label_space: LabelSpace,
        reactions: Sequence[StatefulReactionFunction],
        name: str = "",
    ):
        if len(reactions) != topology.n:
            raise ValidationError(
                f"need {topology.n} reactions, got {len(reactions)}"
            )
        self.topology = topology
        self.label_space = label_space
        self.reactions = tuple(reactions)
        self.name = name or "stateful-protocol"

    def reaction(self, i: int) -> StatefulReactionFunction:
        return self.reactions[i]

    @property
    def n(self) -> int:
        return self.topology.n

    @property
    def label_complexity(self) -> float:
        return self.label_space.bit_length

    def __repr__(self) -> str:
        return (
            f"<StatefulProtocol {self.name!r} on {self.topology.name}"
            f" |Sigma|={self.label_space.size}>"
        )


Protocol = StatelessProtocol | StatefulProtocol


def default_inputs(protocol: Protocol, value: Any = 0) -> tuple[Any, ...]:
    """A convenience all-``value`` input vector for input-insensitive protocols."""
    return (value,) * protocol.n
