"""The simulation engine.

Implements the paper's global transition (Section 2.1): at each time step the
scheduled nodes simultaneously apply their reaction functions to the *previous*
labeling,

    (l^t_{+i}, y^t_i) = delta_i(l^{t-1}_{-i}, x_i)    for every i in sigma(t),

while unscheduled nodes keep their outgoing labels and outputs.

Convergence detection:

* For **periodic schedules** (synchronous, round-robin, cyclic explicit) the
  run is eventually periodic in the finite space ``configurations x phase``;
  the engine hashes visited states and classifies the detected cycle exactly
  as label-stable / output-stable / oscillating.
* For **aperiodic schedules** (seeded random r-fair) the engine certifies
  label stabilization once every node has been activated at least once while
  the labeling remained unchanged — each such activation witnesses that the
  node's reaction is at a fixed point, so the labeling can never change again.
  Oscillation cannot be certified for aperiodic schedules; runs that do not
  stabilize end in ``TIMEOUT``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.configuration import Configuration, Labeling
from repro.core.convergence import RunOutcome, RunReport
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule
from repro.exceptions import ValidationError

DEFAULT_MAX_STEPS = 10_000


class Simulator:
    """Drives one protocol on one input vector."""

    def __init__(self, protocol: Protocol, inputs: Sequence[Any]):
        if len(inputs) != protocol.n:
            raise ValidationError(
                f"need {protocol.n} inputs, got {len(inputs)}"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self._topology = protocol.topology

    # -- single step -------------------------------------------------------

    def step(self, config: Configuration, active: frozenset[int]) -> Configuration:
        """Apply one global transition with the given activation set."""
        labeling = config.labeling
        updates: dict = {}
        outputs = list(config.outputs)
        stateful = self.protocol.is_stateful
        for i in active:
            incoming = labeling.incoming(i)
            if stateful:
                outgoing, y = self.protocol.reaction(i)(
                    incoming, labeling.outgoing(i), self.inputs[i]
                )
            else:
                outgoing, y = self.protocol.reaction(i)(incoming, self.inputs[i])
            expected = self._topology.out_edges(i)
            if set(outgoing) != set(expected):
                raise ValidationError(
                    f"reaction of node {i} labeled edges {sorted(outgoing)}"
                    f" but must label exactly {sorted(expected)}"
                )
            updates.update(outgoing)
            outputs[i] = y
        new_labeling = labeling.replace(updates) if updates else labeling
        return Configuration(new_labeling, tuple(outputs))

    def initial_configuration(
        self, labeling: Labeling, initial_outputs: Sequence[Any] | None = None
    ) -> Configuration:
        outputs = (
            tuple(initial_outputs)
            if initial_outputs is not None
            else (None,) * self.protocol.n
        )
        return Configuration(labeling, outputs)

    # -- plain trace -------------------------------------------------------

    def run_trace(
        self,
        labeling: Labeling,
        schedule: Schedule,
        steps: int,
        initial_outputs: Sequence[Any] | None = None,
    ) -> list[Configuration]:
        """Configurations at times ``0..steps`` (inclusive), no analysis."""
        config = self.initial_configuration(labeling, initial_outputs)
        trace = [config]
        for t in range(steps):
            config = self.step(config, schedule.active(t))
            trace.append(config)
        return trace

    # -- analyzed run ------------------------------------------------------

    def run(
        self,
        labeling: Labeling,
        schedule: Schedule,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Any] | None = None,
        record_trace: bool = False,
    ) -> RunReport:
        """Run until the outcome is decided or ``max_steps`` elapse."""
        if schedule.period is not None:
            return self._run_periodic(
                labeling, schedule, max_steps, initial_outputs, record_trace
            )
        return self._run_aperiodic(
            labeling, schedule, max_steps, initial_outputs, record_trace
        )

    def _run_periodic(self, labeling, schedule, max_steps, initial_outputs, record_trace):
        period = schedule.period
        preperiod = schedule.preperiod
        config = self.initial_configuration(labeling, initial_outputs)
        trace = [config]
        seen: dict[tuple[Configuration, int], int] = {}
        if preperiod == 0:
            seen[(config, 0)] = 0
        for t in range(max_steps):
            config = self.step(config, schedule.active(t))
            now = t + 1
            if now >= preperiod:
                key = (config, (now - preperiod) % period)
                if key in seen:
                    return self._classify_cycle(trace, seen[key], now, record_trace)
                seen[key] = now
            trace.append(config)
        return RunReport(
            outcome=RunOutcome.TIMEOUT,
            label_rounds=None,
            output_rounds=None,
            final=config,
            steps_executed=max_steps,
            trace=trace if record_trace else None,
        )

    def _classify_cycle(self, trace, cycle_start, now, record_trace):
        cycle = trace[cycle_start:now] or [trace[cycle_start]]
        cycle_labelings = {c.labeling for c in cycle}
        cycle_outputs = {c.outputs for c in cycle}
        final = cycle[0]
        label_rounds = None
        output_rounds = None
        if len(cycle_labelings) == 1:
            outcome = RunOutcome.LABEL_STABLE
            label_rounds = _settle_time(trace, lambda c: c.labeling, final.labeling)
            output_rounds = _settle_time(trace, lambda c: c.outputs, final.outputs)
        elif len(cycle_outputs) == 1:
            outcome = RunOutcome.OUTPUT_STABLE
            output_rounds = _settle_time(trace, lambda c: c.outputs, final.outputs)
        else:
            outcome = RunOutcome.OSCILLATING
        return RunReport(
            outcome=outcome,
            label_rounds=label_rounds,
            output_rounds=output_rounds,
            final=final,
            steps_executed=now,
            cycle_start=cycle_start,
            cycle_length=max(now - cycle_start, 1),
            trace=trace if record_trace else None,
        )

    def _run_aperiodic(self, labeling, schedule, max_steps, initial_outputs, record_trace):
        n = self.protocol.n
        config = self.initial_configuration(labeling, initial_outputs)
        trace = [config] if record_trace else None
        last_label_change = -1
        last_output_change = -1
        witnessed: set[int] = set()
        for t in range(max_steps):
            active = schedule.active(t)
            nxt = self.step(config, active)
            if nxt.labeling != config.labeling:
                last_label_change = t
                witnessed = set()
            else:
                witnessed.update(active)
            if nxt.outputs != config.outputs:
                last_output_change = t
            config = nxt
            if trace is not None:
                trace.append(config)
            if len(witnessed) == n:
                return RunReport(
                    outcome=RunOutcome.LABEL_STABLE,
                    label_rounds=last_label_change + 1,
                    output_rounds=last_output_change + 1,
                    final=config,
                    steps_executed=t + 1,
                    trace=trace,
                )
        return RunReport(
            outcome=RunOutcome.TIMEOUT,
            label_rounds=None,
            output_rounds=None,
            final=config,
            steps_executed=max_steps,
            trace=trace,
        )


def _settle_time(trace, key, final_value) -> int:
    """Smallest T such that key(trace[t]) == final_value for all t >= T."""
    settle = len(trace)
    for t in range(len(trace) - 1, -1, -1):
        if key(trace[t]) != final_value:
            break
        settle = t
    return settle


def synchronous_run(
    protocol: Protocol,
    inputs: Sequence[Any],
    labeling: Labeling,
    max_steps: int = DEFAULT_MAX_STEPS,
    record_trace: bool = False,
) -> RunReport:
    """Convenience wrapper: run under the 1-fair (all nodes) schedule."""
    from repro.core.schedule import SynchronousSchedule

    simulator = Simulator(protocol, inputs)
    return simulator.run(
        labeling,
        SynchronousSchedule(protocol.n),
        max_steps=max_steps,
        record_trace=record_trace,
    )
