"""The simulation engine.

Implements the paper's global transition (Section 2.1): at each time step the
scheduled nodes simultaneously apply their reaction functions to the *previous*
labeling,

    (l^t_{+i}, y^t_i) = delta_i(l^{t-1}_{-i}, x_i)    for every i in sigma(t),

while unscheduled nodes keep their outgoing labels and outputs.

The hot loops run on the **compiled fast path** (:mod:`repro.core.compiled`):
the protocol is lowered once to per-node index arrays and reaction adapters,
and every transition is an index-gather → reaction → index-scatter over plain
label tuples.  ``Labeling``/``Configuration`` objects are materialized only at
the API boundary (``step``, run reports, traces), so results are identical to
the object-based implementation while steps stay allocation-light.

Convergence detection:

* For **periodic schedules** (synchronous, round-robin, cyclic explicit) the
  run is eventually periodic in the finite space ``configurations x phase``;
  the engine hashes visited states and classifies the detected cycle exactly
  as label-stable / output-stable / oscillating.
* For **aperiodic schedules** (seeded random r-fair) the engine certifies
  label stabilization once every node has been activated at least once while
  the labeling remained unchanged — each such activation witnesses that the
  node's reaction is at a fixed point, so the labeling can never change again.
  A node activated on the very step the labeling last changed is *not* a
  witness (it reacted to a pre-fixed-point labeling), and an empty activation
  set witnesses nothing.  Oscillation cannot be certified for aperiodic
  schedules; runs that do not stabilize end in ``TIMEOUT``.
* **Finite schedules** (``ExplicitSchedule(..., cycle=False)``) may run out
  of activation sets before either mechanism concludes; the run then ends
  gracefully with a ``SCHEDULE_EXHAUSTED`` report instead of leaking the
  schedule's :class:`ScheduleError` mid-run.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.compiled import CompiledProtocol, compile_protocol
from repro.core.configuration import Configuration, Labeling
from repro.core.convergence import RunOutcome, RunReport
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError, ValidationError

DEFAULT_MAX_STEPS = 10_000

#: Internal raw state: (flat label tuple, output tuple).
_Raw = tuple[tuple, tuple]


class Simulator:
    """Drives one protocol on one input vector."""

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        compiled: CompiledProtocol | None = None,
    ):
        if len(inputs) != protocol.n:
            raise ValidationError(
                f"need {protocol.n} inputs, got {len(inputs)}"
            )
        if compiled is None:
            compiled = compile_protocol(protocol)
        elif compiled.protocol is not protocol:
            raise ValidationError(
                "compiled form was built from a different protocol object"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self._topology = protocol.topology
        self._compiled = compiled

    @property
    def compiled(self) -> CompiledProtocol:
        """The shared compiled form of the protocol."""
        return self._compiled

    # -- single step -------------------------------------------------------

    def step(self, config: Configuration, active: frozenset[int]) -> Configuration:
        """Apply one global transition with the given activation set."""
        labeling = config.labeling
        self._check_topology(labeling)
        values, outputs = self._compiled.step_values(
            labeling.values, config.outputs, active, self.inputs
        )
        if values is not labeling.values:
            labeling = Labeling(self._topology, values)
        return Configuration(labeling, outputs)

    def initial_configuration(
        self, labeling: Labeling, initial_outputs: Sequence[Any] | None = None
    ) -> Configuration:
        outputs = (
            tuple(initial_outputs)
            if initial_outputs is not None
            else (None,) * self.protocol.n
        )
        return Configuration(labeling, outputs)

    def _check_topology(self, labeling: Labeling) -> None:
        """The compiled index arrays are positional, so the labeling must use
        the protocol topology's canonical edge order (value-equality with the
        same order is fine; identity is the cheap common case)."""
        topology = labeling.topology
        if topology is not self._topology and (
            topology.n != self._topology.n
            or topology.edges != self._topology.edges
        ):
            raise ValidationError(
                "labeling topology does not match the protocol's topology"
            )

    def _initial_raw(
        self, labeling: Labeling, initial_outputs: Sequence[Any] | None
    ) -> _Raw:
        self._check_topology(labeling)
        if initial_outputs is None:
            outputs = (None,) * self.protocol.n
        else:
            outputs = tuple(initial_outputs)
            if len(outputs) != self.protocol.n:
                raise ValidationError("outputs must have one entry per node")
        return labeling.values, outputs

    def _materialize(self, values: tuple, outputs: tuple) -> Configuration:
        return Configuration(Labeling(self._topology, values), outputs)

    # -- plain trace -------------------------------------------------------

    def run_trace(
        self,
        labeling: Labeling,
        schedule: Schedule,
        steps: int,
        initial_outputs: Sequence[Any] | None = None,
    ) -> list[Configuration]:
        """Configurations at times ``0..steps`` (inclusive), no analysis."""
        values, outputs = self._initial_raw(labeling, initial_outputs)
        step = self._compiled.step_values
        active = schedule.active
        inputs = self.inputs
        raw: list[_Raw] = [(values, outputs)]
        for t in range(steps):
            values, outputs = step(values, outputs, active(t), inputs)
            raw.append((values, outputs))
        return [self._materialize(v, o) for v, o in raw]

    # -- analyzed run ------------------------------------------------------

    def run(
        self,
        labeling: Labeling,
        schedule: Schedule,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Any] | None = None,
        record_trace: bool = False,
    ) -> RunReport:
        """Run until the outcome is decided or ``max_steps`` elapse."""
        if schedule.period is not None:
            return self._run_periodic(
                labeling, schedule, max_steps, initial_outputs, record_trace
            )
        return self._run_aperiodic(
            labeling, schedule, max_steps, initial_outputs, record_trace
        )

    def run_with_faults(
        self,
        labeling: Labeling,
        schedule: Schedule,
        faults,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Any] | None = None,
    ):
        """Run under ``schedule`` while injecting transient faults.

        ``faults`` is a :class:`repro.faults.FaultSchedule` (anything with a
        ``fires_within(horizon)`` method yielding ``(time, model)`` pairs).
        The run steps raw values through the fault window, applies each fault
        to the labeling at its fire time, and then hands the tail to the
        normal analyzed run — exact cycle detection for periodic schedules,
        fixed-point certification for aperiodic ones — so recovery after the
        last fault is certified, not guessed.  Returns a
        :class:`repro.faults.FaultRunReport`.

        The import is deferred: the faults layer builds on the engine, and
        this method is only its entry-point sugar.
        """
        from repro.faults.injection import run_with_faults as _run

        return _run(
            self,
            labeling,
            schedule,
            faults,
            max_steps=max_steps,
            initial_outputs=initial_outputs,
        )

    def _run_periodic(
        self, labeling, schedule, max_steps, initial_outputs, record_trace
    ):
        period = schedule.period
        preperiod = schedule.preperiod
        values, outputs = self._initial_raw(labeling, initial_outputs)
        step = self._compiled.step_values
        active = schedule.active
        inputs = self.inputs
        raw: list[_Raw] = [(values, outputs)]
        seen: dict[tuple[tuple, tuple, int], int] = {}
        if preperiod == 0:
            seen[(values, outputs, 0)] = 0
        for t in range(max_steps):
            values, outputs = step(values, outputs, active(t), inputs)
            now = t + 1
            if now >= preperiod:
                key = (values, outputs, (now - preperiod) % period)
                if key in seen:
                    return self._classify_cycle(raw, seen[key], now, record_trace)
                seen[key] = now
            raw.append((values, outputs))
        return RunReport(
            outcome=RunOutcome.TIMEOUT,
            label_rounds=None,
            output_rounds=None,
            final=self._materialize(values, outputs),
            steps_executed=max_steps,
            trace=[self._materialize(v, o) for v, o in raw] if record_trace else None,
        )

    def _classify_cycle(self, raw, cycle_start, now, record_trace):
        outcome, label_rounds, output_rounds, (final_values, final_outputs) = (
            classify_cycle(raw, cycle_start, now)
        )
        return RunReport(
            outcome=outcome,
            label_rounds=label_rounds,
            output_rounds=output_rounds,
            final=self._materialize(final_values, final_outputs),
            steps_executed=now,
            cycle_start=cycle_start,
            cycle_length=max(now - cycle_start, 1),
            trace=[self._materialize(v, o) for v, o in raw] if record_trace else None,
        )

    def _run_aperiodic(
        self, labeling, schedule, max_steps, initial_outputs, record_trace
    ):
        n = self.protocol.n
        values, outputs = self._initial_raw(labeling, initial_outputs)
        step = self._compiled.step_values
        active = schedule.active
        inputs = self.inputs
        raw: list[_Raw] | None = [(values, outputs)] if record_trace else None
        last_label_change = -1
        last_output_change = -1
        witnessed: set[int] = set()
        for t in range(max_steps):
            try:
                current = active(t)
            except ScheduleError:
                # Finite (non-cycling) schedule exhausted before a verdict.
                return RunReport(
                    outcome=RunOutcome.SCHEDULE_EXHAUSTED,
                    label_rounds=None,
                    output_rounds=None,
                    final=self._materialize(values, outputs),
                    steps_executed=t,
                    trace=[self._materialize(v, o) for v, o in raw]
                    if raw is not None
                    else None,
                )
            next_values, next_outputs = step(values, outputs, current, inputs)
            if next_values is not values and next_values != values:
                last_label_change = t
                # Nodes active at a changing step reacted to a pre-fixed-point
                # labeling, so they witness nothing — reset, don't record.
                witnessed = set()
            else:
                witnessed.update(current)
            if next_outputs is not outputs and next_outputs != outputs:
                last_output_change = t
            values, outputs = next_values, next_outputs
            if raw is not None:
                raw.append((values, outputs))
            if len(witnessed) == n:
                return RunReport(
                    outcome=RunOutcome.LABEL_STABLE,
                    label_rounds=last_label_change + 1,
                    output_rounds=last_output_change + 1,
                    final=self._materialize(values, outputs),
                    steps_executed=t + 1,
                    trace=[self._materialize(v, o) for v, o in raw]
                    if raw is not None
                    else None,
                )
        return RunReport(
            outcome=RunOutcome.TIMEOUT,
            label_rounds=None,
            output_rounds=None,
            final=self._materialize(values, outputs),
            steps_executed=max_steps,
            trace=[self._materialize(v, o) for v, o in raw]
            if raw is not None
            else None,
        )


def classify_cycle(raw, cycle_start, now):
    """Classify a detected revisit in a periodic run's raw state history.

    ``raw`` holds one ``(values, outputs)`` pair per step (indices
    ``0..now-1``); the state reached at local time ``now`` was first seen at
    ``cycle_start``, so ``raw[cycle_start:now]`` is exactly one period of the
    run's final cycle.  Returns ``(outcome, label_rounds, output_rounds,
    final_pair)``.

    The pairs only need well-defined equality — the engine passes label/output
    tuples, the batch backend (:mod:`repro.core.batch`) passes the byte views
    of its interned code rows, and both classify identically because code
    equality mirrors label equality.
    """
    cycle = raw[cycle_start:now] or [raw[cycle_start]]
    cycle_values = {v for v, _ in cycle}
    cycle_outputs = {o for _, o in cycle}
    final = cycle[0]
    final_values, final_outputs = final
    label_rounds = None
    output_rounds = None
    if len(cycle_values) == 1:
        outcome = RunOutcome.LABEL_STABLE
        label_rounds = settle_time(raw, 0, final_values)
        output_rounds = settle_time(raw, 1, final_outputs)
    elif len(cycle_outputs) == 1:
        outcome = RunOutcome.OUTPUT_STABLE
        output_rounds = settle_time(raw, 1, final_outputs)
    else:
        outcome = RunOutcome.OSCILLATING
    return outcome, label_rounds, output_rounds, final


def settle_time(raw, component, final_value) -> int:
    """Smallest T such that raw[t][component] == final_value for all t >= T."""
    settle = len(raw)
    for t in range(len(raw) - 1, -1, -1):
        if raw[t][component] != final_value:
            break
        settle = t
    return settle


def synchronous_run(
    protocol: Protocol,
    inputs: Sequence[Any],
    labeling: Labeling,
    max_steps: int = DEFAULT_MAX_STEPS,
    record_trace: bool = False,
) -> RunReport:
    """Convenience wrapper: run under the 1-fair (all nodes) schedule."""
    from repro.core.schedule import SynchronousSchedule

    simulator = Simulator(protocol, inputs)
    return simulator.run(
        labeling,
        SynchronousSchedule(protocol.n),
        max_steps=max_steps,
        record_trace=record_trace,
    )
