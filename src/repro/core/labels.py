"""Finite label spaces: the paper's alphabet Sigma.

A *label* is the value a node writes on one of its outgoing edges.  The paper
measures protocols by their *label complexity* ``L_n = log2(|Sigma|)`` (Section
2.3); :attr:`LabelSpace.bit_length` exposes exactly that quantity.

Label spaces may be huge (the generic protocol of Proposition 2.3 uses
``{0,1}^(n+1)``), so the base class supports lazy spaces that know their size
and membership without materializing every value.  Exhaustive tools (the model
checker, stable-labeling enumeration) iterate over the space and therefore
only accept small spaces.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable, Iterator
from itertools import product
from typing import Any

from repro.exceptions import ValidationError

Label = Any


class LabelSpace(ABC):
    """A finite, nonempty set of hashable labels."""

    def __init__(self, name: str = ""):
        self.name = name

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of labels, ``|Sigma|``."""

    @abstractmethod
    def __contains__(self, label: Label) -> bool: ...

    @abstractmethod
    def __iter__(self) -> Iterator[Label]: ...

    @abstractmethod
    def sample(self, rng) -> Label:
        """Draw a uniformly random label using ``rng`` (a ``random.Random``)."""

    @property
    def bit_length(self) -> float:
        """The paper's label complexity ``L_n = log2(|Sigma|)``."""
        return math.log2(self.size)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        tag = self.name or type(self).__name__
        return f"<LabelSpace {tag} |Sigma|={self.size}>"


class ExplicitLabelSpace(LabelSpace):
    """A label space materialized from an explicit collection of values."""

    def __init__(self, values: Iterable[Label], name: str = ""):
        super().__init__(name)
        self._values = tuple(values)
        if not self._values:
            raise ValidationError("a label space must be nonempty")
        seen = set()
        for value in self._values:
            if not isinstance(value, Hashable):
                raise ValidationError(f"label {value!r} is not hashable")
            if value in seen:
                raise ValidationError(f"duplicate label {value!r}")
            seen.add(value)
        self._set = seen

    @property
    def size(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[Label, ...]:
        return self._values

    def __contains__(self, label: Label) -> bool:
        return label in self._set

    def __iter__(self) -> Iterator[Label]:
        return iter(self._values)

    def sample(self, rng) -> Label:
        return self._values[rng.randrange(len(self._values))]


class BitStrings(LabelSpace):
    """All bit tuples of a fixed length ``k``; ``|Sigma| = 2^k``."""

    def __init__(self, k: int, name: str = ""):
        if k < 0:
            raise ValidationError("bit-string length must be nonnegative")
        super().__init__(name or f"bits^{k}")
        self.k = k

    @property
    def size(self) -> int:
        return 1 << self.k

    def __contains__(self, label: Label) -> bool:
        return (
            isinstance(label, tuple)
            and len(label) == self.k
            and all(bit in (0, 1) for bit in label)
        )

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return product((0, 1), repeat=self.k)

    def sample(self, rng) -> tuple[int, ...]:
        word = rng.getrandbits(self.k) if self.k else 0
        return tuple((word >> i) & 1 for i in range(self.k))


class IntegerRange(LabelSpace):
    """Labels ``0 .. size-1`` (used for counters and round-robin tokens)."""

    def __init__(self, size: int, name: str = ""):
        if size <= 0:
            raise ValidationError("IntegerRange size must be positive")
        super().__init__(name or f"range({size})")
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def __contains__(self, label: Label) -> bool:
        return (
            isinstance(label, int)
            and not isinstance(label, bool)
            and 0 <= label < self._size
        )

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._size))

    def sample(self, rng) -> int:
        return rng.randrange(self._size)


class ProductSpace(LabelSpace):
    """Cartesian product of component spaces; labels are tuples."""

    def __init__(self, components: Iterable[LabelSpace], name: str = ""):
        super().__init__(name)
        self.components = tuple(components)
        if not self.components:
            raise ValidationError("a product space needs at least one component")

    @property
    def size(self) -> int:
        result = 1
        for component in self.components:
            result *= component.size
        return result

    def __contains__(self, label: Label) -> bool:
        if not isinstance(label, tuple) or len(label) != len(self.components):
            return False
        return all(
            part in space
            for part, space in zip(label, self.components, strict=True)
        )

    def __iter__(self) -> Iterator[tuple]:
        return product(*self.components)

    def sample(self, rng) -> tuple:
        return tuple(space.sample(rng) for space in self.components)


#: The one-bit label space used by most of the paper's gadget constructions.
def binary() -> ExplicitLabelSpace:
    """Return the label space {0, 1}."""
    return ExplicitLabelSpace((0, 1), name="binary")
