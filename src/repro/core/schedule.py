"""Activation schedules.

A schedule ``sigma`` maps each time step to the nonempty set of nodes
activated at that step (Section 2.1).  The paper's fairness notions:

* *fair* — every node is activated infinitely often;
* *r-fair* — every node is activated at least once in every window of ``r``
  consecutive steps.

The engine performs exact cycle detection for *eventually periodic* schedules
(synchronous, round-robin, explicit-cyclic), exposed through
:attr:`Schedule.period`.  Random schedules have ``period = None`` and rely on
the engine's fixed-point detection instead.

Time steps are 0-based: ``active(0)`` is the set applied to the initial
configuration.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.exceptions import ScheduleError, ValidationError


class Schedule(ABC):
    """An infinite sequence of nonempty activation sets."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValidationError("schedules need at least one node")
        self.n = n

    @abstractmethod
    def active(self, t: int) -> frozenset[int]:
        """The set of nodes activated at step ``t >= 0``."""

    @property
    def period(self) -> int | None:
        """Cycle length for (eventually) periodic schedules, else ``None``."""
        return None

    @property
    def preperiod(self) -> int:
        """Steps before the periodic part starts (0 for purely periodic)."""
        return 0

    def phase(self, t: int) -> int:
        """Position within the period (0 for aperiodic schedules)."""
        p = self.period
        return (t - self.preperiod) % p if p else 0

    def shifted(self, offset: int) -> "Schedule":
        """The schedule viewed from ``offset`` steps in: ``active'(t) =
        active(t + offset)``.

        Used by the fault-injection engine to resume exact convergence
        analysis mid-run (after the last injected fault) without replaying
        the prefix.  Periodicity survives shifting, so the engine keeps its
        exact cycle detection on the tail.
        """
        if offset == 0:
            return self
        return ShiftedSchedule(self, offset)


class ShiftedSchedule(Schedule):
    """A view of another schedule starting ``offset`` steps in."""

    def __init__(self, base: Schedule, offset: int):
        if offset < 0:
            raise ValidationError("schedule shift offset must be >= 0")
        super().__init__(base.n)
        self.base = base
        self.offset = offset

    def active(self, t: int) -> frozenset[int]:
        return self.base.active(t + self.offset)

    @property
    def period(self) -> int | None:
        return self.base.period

    @property
    def preperiod(self) -> int:
        return max(0, self.base.preperiod - self.offset)

    def phase(self, t: int) -> int:
        """Position within the base schedule's loop.

        The default ``(t - preperiod) % period`` would misreport once
        ``offset > base.preperiod``: the clamped preperiod is 0, so phase 0
        would no longer align with the base loop's phase 0.  A shifted view
        at local time ``t`` is the base schedule at ``t + offset``, so its
        loop position is exactly ``base.phase(t + offset)``.
        """
        return self.base.phase(t + self.offset)

    def shifted(self, offset: int) -> Schedule:
        return self.base.shifted(self.offset + offset)


class SynchronousSchedule(Schedule):
    """All nodes at every step — the 1-fair schedule of Sections 5 and 6."""

    def __init__(self, n: int):
        super().__init__(n)
        self._all = frozenset(range(n))

    def active(self, t: int) -> frozenset[int]:
        return self._all

    @property
    def period(self) -> int:
        return 1


class RoundRobinSchedule(Schedule):
    """One node per step, cyclically: node ``t mod n`` at step ``t`` (n-fair)."""

    def active(self, t: int) -> frozenset[int]:
        return frozenset((t % self.n,))

    @property
    def period(self) -> int:
        return self.n


class ExplicitSchedule(Schedule):
    """A schedule given as an explicit list of activation sets.

    With ``cycle=True`` (default) the list repeats forever, giving a periodic
    schedule with exact cycle detection.  With ``cycle=False`` querying past
    the end raises :class:`ScheduleError`.
    """

    def __init__(self, n: int, steps: Sequence[Iterable[int]], cycle: bool = True):
        super().__init__(n)
        self._steps = tuple(frozenset(step) for step in steps)
        if not self._steps:
            raise ValidationError("an explicit schedule needs at least one step")
        for k, step in enumerate(self._steps):
            if not step:
                raise ValidationError(f"step {k} activates no node")
            if not all(0 <= i < n for i in step):
                raise ValidationError(f"step {k} activates nodes outside 0..{n - 1}")
        self.cycle = cycle

    def active(self, t: int) -> frozenset[int]:
        if self.cycle:
            return self._steps[t % len(self._steps)]
        if t >= len(self._steps):
            raise ScheduleError(f"schedule defined only for {len(self._steps)} steps")
        return self._steps[t]

    @property
    def period(self) -> int | None:
        return len(self._steps) if self.cycle else None

    @property
    def steps(self) -> tuple[frozenset[int], ...]:
        return self._steps


class LassoSchedule(Schedule):
    """A prefix of activation sets followed by a repeating cycle.

    This is the shape of the oscillation witnesses the model checker emits:
    drive the system from an initial state into a cycle, then loop the cycle
    forever.  Eventually periodic, so the engine can classify runs exactly.
    """

    def __init__(
        self,
        n: int,
        prefix: Sequence[Iterable[int]],
        loop: Sequence[Iterable[int]],
    ):
        super().__init__(n)
        self._prefix = tuple(frozenset(step) for step in prefix)
        self._loop = tuple(frozenset(step) for step in loop)
        if not self._loop:
            raise ValidationError("a lasso schedule needs a nonempty loop")
        for step in self._prefix + self._loop:
            if not step:
                raise ValidationError("every step must activate at least one node")
            if not all(0 <= i < n for i in step):
                raise ValidationError("activation set outside node range")

    def active(self, t: int) -> frozenset[int]:
        if t < len(self._prefix):
            return self._prefix[t]
        return self._loop[(t - len(self._prefix)) % len(self._loop)]

    @property
    def period(self) -> int:
        return len(self._loop)

    @property
    def preperiod(self) -> int:
        return len(self._prefix)


class RandomRFairSchedule(Schedule):
    """A seeded random schedule guaranteed to be r-fair.

    Each step activates every node whose activation deadline has arrived, plus
    each other node independently with probability ``p``.  Realized steps are
    memoized so ``active(t)`` is stable across repeated queries, keeping runs
    deterministic for a fixed seed.
    """

    def __init__(self, n: int, r: int, seed: int = 0, p: float = 0.5):
        super().__init__(n)
        if r < 1:
            raise ValidationError("fairness parameter r must be >= 1")
        if not 0.0 <= p <= 1.0:
            raise ValidationError("activation probability must lie in [0, 1]")
        self.r = r
        self.p = p
        #: Kept as plain data: the realized activation sets are a
        #: deterministic function of (n, r, p, seed), which is what the
        #: service layer's content-addressed cache fingerprints.
        self.seed = seed
        self._rng = random.Random(seed)
        self._memo: list[frozenset[int]] = []
        self._countdown = [r] * n

    def _generate_next(self) -> frozenset[int]:
        forced = {i for i in range(self.n) if self._countdown[i] == 1}
        chosen = set(forced)
        for i in range(self.n):
            if i not in chosen and self._rng.random() < self.p:
                chosen.add(i)
        if not chosen:
            chosen.add(self._rng.randrange(self.n))
        for i in range(self.n):
            self._countdown[i] = self.r if i in chosen else self._countdown[i] - 1
        return frozenset(chosen)

    def active(self, t: int) -> frozenset[int]:
        while len(self._memo) <= t:
            self._memo.append(self._generate_next())
        return self._memo[t]


def is_r_fair(schedule: Schedule, r: int, horizon: int) -> bool:
    """Check r-fairness over ``horizon`` steps (every r-window hits every node)."""
    last_seen = [-1] * schedule.n
    for t in range(horizon):
        for i in schedule.active(t):
            last_seen[i] = t
        if t >= r - 1:
            window_start = t - r + 1
            if any(seen < window_start for seen in last_seen):
                return False
    return True


def minimal_fairness(schedule: Schedule, horizon: int) -> int | None:
    """The smallest ``r`` for which the schedule is r-fair over the horizon.

    Computed as the largest observed gap between consecutive activations of
    any node (counting from step 0 and measured over ``horizon`` steps).

    Returns ``None`` when some node is never activated within the horizon:
    no horizon-length run can certify *any* finite fairness bound for such a
    schedule, so there is no meaningful ``r`` to report.  (Historically this
    case returned ``horizon + 1``, an ``r`` that looked like a certified
    bound but was not.)
    """
    last_seen = [-1] * schedule.n
    worst_gap = 0
    for t in range(horizon):
        active = schedule.active(t)
        for i in range(schedule.n):
            if i in active:
                worst_gap = max(worst_gap, t - last_seen[i])
                last_seen[i] = t
    if -1 in last_seen:
        return None
    for i in range(schedule.n):
        worst_gap = max(worst_gap, horizon - last_seen[i])
    return worst_gap
