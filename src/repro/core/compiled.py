"""Compiled fast path for the paper's global transition.

``Simulator.step`` is the hot path of every experiment in this repository:
benchmarks, the model checker, and the states-graph all drive it millions of
times.  The naive implementation rebuilds ``{Edge: Label}`` dictionaries for
every activated node, validates the out-edge set on every step, and constructs
fresh :class:`~repro.core.configuration.Labeling` objects per transition —
so most of the wall time goes to allocation, not dynamics.

:class:`CompiledProtocol` precomputes, once per protocol:

* per-node integer index arrays into the flat label tuple for incoming and
  outgoing edges (``in_positions`` / ``out_positions``), and
* a per-node *reaction adapter* ``(values, x) -> (outgoing_labels, y)`` that
  reads straight from the flat tuple and emits labels in canonical out-edge
  order.

``step_values`` is then index-gather → reaction → index-scatter on plain
tuples: no per-step dict construction for the common reaction classes, no
out-edge set checks (they are hoisted to compile time where the reaction's
edge set is statically known), and no intermediate ``Labeling`` objects.

Reaction classes that can prove their outgoing edge set at compile time
(:class:`UniformReaction`, :class:`ConstantReaction`,
:class:`TabularReaction`) provide their own adapters via
``ReactionFunction.compile_fast_path``; everything else falls back to the
generic adapter below, which keeps the per-step validation of the original
engine.

One protocol compiles once and is shared by every consumer — the engine, the
stabilization tools, and the sweep runner — via :func:`compile_protocol`'s
weak cache.
"""

from __future__ import annotations

import weakref
from collections.abc import Callable
from typing import Any

from repro.core.protocol import Protocol
from repro.exceptions import ValidationError

#: A compiled per-node reaction: reads incoming labels from the flat tuple
#: ``values``, writes outgoing labels into the mutable ``new_values`` list at
#: the node's precomputed positions, returns the node's output value.
Adapter = Callable[[tuple, list, Any], Any]


def _bad_edges_error(node: int, outgoing, out_edges) -> ValidationError:
    try:
        labeled = sorted(outgoing)
    except TypeError:
        labeled = list(outgoing)
    return ValidationError(
        f"reaction of node {node} labeled edges {labeled}"
        f" but must label exactly {sorted(out_edges)}"
    )


def _generic_stateless_adapter(
    reaction, node, in_edges, in_positions, out_edges, out_positions
):
    """Dict-based adapter for arbitrary stateless reactions.

    Keeps the original engine's per-step validation: the reaction must label
    exactly the node's outgoing edges.
    """
    n_out = len(out_edges)

    def adapter(values, new_values, x):
        incoming = {e: values[p] for e, p in zip(in_edges, in_positions, strict=True)}
        outgoing, y = reaction(incoming, x)
        # Size check both before and after indexing: auto-vivifying mappings
        # (defaultdict) would otherwise grow to the right size while being
        # read and dodge the validation.
        if len(outgoing) != n_out:
            raise _bad_edges_error(node, outgoing, out_edges)
        try:
            for e, q in zip(out_edges, out_positions, strict=True):
                new_values[q] = outgoing[e]
        except (KeyError, TypeError):
            raise _bad_edges_error(node, outgoing, out_edges) from None
        if len(outgoing) != n_out:
            raise _bad_edges_error(node, outgoing, out_edges)
        return y

    return adapter


def _generic_stateful_adapter(
    reaction, node, in_edges, in_positions, out_edges, out_positions
):
    """Dict-based adapter for stateful reactions (Theorem B.11 machinery)."""
    n_out = len(out_edges)

    def adapter(values, new_values, x):
        incoming = {e: values[p] for e, p in zip(in_edges, in_positions, strict=True)}
        own = {e: values[p] for e, p in zip(out_edges, out_positions, strict=True)}
        outgoing, y = reaction(incoming, own, x)
        # Size check both before and after indexing — see the stateless
        # adapter.
        if len(outgoing) != n_out:
            raise _bad_edges_error(node, outgoing, out_edges)
        try:
            for e, q in zip(out_edges, out_positions, strict=True):
                new_values[q] = outgoing[e]
        except (KeyError, TypeError):
            raise _bad_edges_error(node, outgoing, out_edges) from None
        if len(outgoing) != n_out:
            raise _bad_edges_error(node, outgoing, out_edges)
        return y

    return adapter


class CompiledProtocol:
    """A protocol lowered to index arrays over the flat label tuple.

    Immutable once built; safe to share between any number of simulators,
    model-checker runs, and sweep cases over the same protocol.
    """

    __slots__ = (
        "_protocol_ref",
        "topology",
        "n",
        "m",
        "in_positions",
        "out_positions",
        "_adapters",
        "_all_nodes",
        "__weakref__",
    )

    def __init__(self, protocol: Protocol):
        topology = protocol.topology
        position = topology.edge_position
        n = topology.n
        # Weak so the compile cache (protocol -> compiled) holds no strong
        # path back to its key: compiled forms die with their protocols.
        self._protocol_ref = weakref.ref(protocol)
        self.topology = topology
        self.n = n
        self.m = topology.m
        self.in_positions = tuple(
            tuple(position(e) for e in topology.in_edges(i)) for i in range(n)
        )
        self.out_positions = tuple(
            tuple(position(e) for e in topology.out_edges(i)) for i in range(n)
        )
        self._all_nodes = frozenset(range(n))

        adapters = []
        stateful = protocol.is_stateful
        for i in range(n):
            reaction = protocol.reaction(i)
            in_edges = topology.in_edges(i)
            out_edges = topology.out_edges(i)
            adapter = reaction.compile_fast_path(
                in_edges, self.in_positions[i], out_edges, self.out_positions[i]
            )
            if adapter is None:
                build = (
                    _generic_stateful_adapter
                    if stateful
                    else _generic_stateless_adapter
                )
                adapter = build(
                    reaction,
                    i,
                    in_edges,
                    self.in_positions[i],
                    out_edges,
                    self.out_positions[i],
                )
            adapters.append(adapter)
        self._adapters = tuple(adapters)

    @property
    def protocol(self) -> Protocol | None:
        """The source protocol, or ``None`` once it has been collected."""
        return self._protocol_ref()

    def adapter(self, i: int) -> Adapter:
        """The compiled reaction of node ``i`` (mainly for tests)."""
        return self._adapters[i]

    def batch_form(self, max_table_size: int | None = None):
        """The vectorized batch compilation of this protocol.

        Cached like :func:`compile_protocol`'s weak cache; requires numpy.
        See :mod:`repro.core.batch` — the import is deferred because the
        batch backend layers on top of this module.
        """
        from repro.core.batch import DEFAULT_MAX_TABLE_SIZE, batch_compile

        if max_table_size is None:
            max_table_size = DEFAULT_MAX_TABLE_SIZE
        return batch_compile(self, max_table_size)

    def step_values(
        self,
        values: tuple,
        outputs: tuple | None,
        active,
        inputs,
    ) -> tuple[tuple, tuple | None]:
        """One global transition on flat tuples.

        All activated nodes read the *previous* ``values`` (the paper's
        simultaneous semantics); writes go to a lazily-created copy.  Returns
        the input tuples unchanged (same objects) when no node was activated.
        ``outputs`` may be ``None`` for consumers that only track labels
        (the states-graph, label-only model checking).
        """
        adapters = self._adapters
        new_values = None
        if outputs is None:
            for i in active:
                if new_values is None:
                    new_values = list(values)
                adapters[i](values, new_values, inputs[i])
            return (
                values if new_values is None else tuple(new_values),
                None,
            )
        new_outputs = None
        for i in active:
            if new_values is None:
                new_values = list(values)
                new_outputs = list(outputs)
            new_outputs[i] = adapters[i](values, new_values, inputs[i])
        return (
            values if new_values is None else tuple(new_values),
            outputs if new_outputs is None else tuple(new_outputs),
        )

    def is_fixed_point(self, values: tuple, inputs) -> bool:
        """True when ``values`` is a stable labeling (Section 3).

        A labeling is stable exactly when one full-activation transition
        leaves it unchanged: every node's reaction then fixes its outgoing
        labels, so no activation set can ever change the labeling again.
        This is the compiled counterpart of
        :func:`repro.stabilization.fixed_points.is_stable_labeling`; the
        fault-injection layer uses it to certify recovery and the
        adversarial schedulers use it to steer runs away from absorption.
        """
        new_values, _ = self.step_values(values, None, self._all_nodes, inputs)
        return new_values is values or new_values == values

    def __repr__(self) -> str:
        protocol = self.protocol
        if protocol is None:
            return "<CompiledProtocol of a collected protocol>"
        return f"<CompiledProtocol of {protocol!r}>"


_CACHE: "weakref.WeakKeyDictionary[Any, CompiledProtocol]" = (
    weakref.WeakKeyDictionary()
)


def compile_protocol(protocol: Protocol) -> CompiledProtocol:
    """Compile ``protocol``, reusing a cached compilation when available.

    The cache is keyed weakly on the protocol object, so compiled forms die
    with their protocols and repeated ``Simulator`` construction over the
    same protocol pays the compilation cost once.
    """
    compiled = _CACHE.get(protocol)
    if compiled is None:
        compiled = CompiledProtocol(protocol)
        _CACHE[protocol] = compiled
    return compiled
