"""Labelings and global configurations.

A *labeling* assigns a label to every edge of the topology (the paper's
``l in Sigma^E``).  A *configuration* couples a labeling with the current
output value of every node.  Both are immutable and hashable, which makes
cycle detection in the engine and the model checker sound.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.core.labels import Label, LabelSpace
from repro.core.reaction import Edge
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology


class Labeling:
    """An immutable edge labeling, stored as a flat tuple in edge order."""

    __slots__ = ("_topology", "_values", "_hash")

    def __init__(self, topology: Topology, values: tuple[Label, ...]):
        if len(values) != topology.m:
            raise ValidationError(
                f"expected {topology.m} labels, got {len(values)}"
            )
        self._topology = topology
        self._values = tuple(values)
        self._hash = None

    @classmethod
    def _trusted(cls, topology: Topology, values: tuple) -> "Labeling":
        """Construct without validation, for callers that built ``values``
        themselves in canonical form (the batch backend's bulk decode)."""
        labeling = cls.__new__(cls)
        labeling._topology = topology
        labeling._values = values
        labeling._hash = None
        return labeling

    # -- constructors ------------------------------------------------------

    @classmethod
    def uniform(cls, topology: Topology, label: Label) -> "Labeling":
        """Every edge carries ``label``."""
        return cls(topology, (label,) * topology.m)

    @classmethod
    def from_dict(cls, topology: Topology, mapping: Mapping[Edge, Label]) -> "Labeling":
        if set(mapping) != set(topology.edges):
            raise ValidationError("mapping must label exactly the topology's edges")
        return cls(topology, tuple(mapping[edge] for edge in topology.edges))

    @classmethod
    def random(cls, topology: Topology, space: LabelSpace, rng) -> "Labeling":
        """Independent uniform labels on every edge (for self-stabilization tests)."""
        return cls(topology, tuple(space.sample(rng) for _ in topology.edges))

    # -- access ------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def values(self) -> tuple[Label, ...]:
        """Labels in the topology's canonical edge order."""
        return self._values

    def __getitem__(self, edge: Edge) -> Label:
        return self._values[self._topology.edge_position(edge)]

    def as_dict(self) -> dict[Edge, Label]:
        return dict(zip(self._topology.edges, self._values, strict=True))

    def incoming(self, i: int) -> dict[Edge, Label]:
        """The labels a node reads when activated (the paper's ``l_{-i}``)."""
        position = self._topology.edge_position
        return {
            edge: self._values[position(edge)]
            for edge in self._topology.in_edges(i)
        }

    def outgoing(self, i: int) -> dict[Edge, Label]:
        """The node's current outgoing labels (the paper's ``l_{+i}``)."""
        position = self._topology.edge_position
        return {
            edge: self._values[position(edge)]
            for edge in self._topology.out_edges(i)
        }

    def replace(self, updates: Mapping[Edge, Label]) -> "Labeling":
        """A new labeling with the given edges overwritten."""
        values = list(self._values)
        position = self._topology.edge_position
        for edge, label in updates.items():
            values[position(edge)] = label
        return Labeling(self._topology, tuple(values))

    def validate(self, space: LabelSpace) -> None:
        """Raise unless every label belongs to ``space``."""
        for edge, label in zip(self._topology.edges, self._values, strict=True):
            if label not in space:
                raise ValidationError(
                    f"label {label!r} on edge {edge!r} not in {space!r}"
                )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        if self._values != other._values:
            return False
        # Compare topologies by value, not identity: structurally equal
        # labelings built on equal-but-distinct Topology objects must compare
        # equal.  Values are positional, so the canonical edge orders must
        # agree (stricter than Topology.__eq__, which ignores order) — this
        # also keeps the hash/eq contract: equal labelings share values and
        # therefore hashes.
        return self._topology is other._topology or (
            self._topology.n == other._topology.n
            and self._topology.edges == other._topology.edges
        )

    def __hash__(self) -> int:
        # Lazy: most labelings (batch sweep finals in particular) are never
        # hashed, and the tuple hash over every edge is the constructor's
        # dominant cost at scale.
        h = self._hash
        if h is None:
            h = self._hash = hash(self._values)
        return h

    def __repr__(self) -> str:
        return f"<Labeling {self._values!r}>"


class Configuration:
    """A global system state: edge labeling plus per-node outputs."""

    __slots__ = ("labeling", "outputs", "_hash")

    def __init__(self, labeling: Labeling, outputs: tuple[Any, ...]):
        if len(outputs) != labeling.topology.n:
            raise ValidationError("outputs must have one entry per node")
        self.labeling = labeling
        self.outputs = tuple(outputs)
        self._hash = None

    @classmethod
    def _trusted(cls, labeling: Labeling, outputs: tuple) -> "Configuration":
        """Construct without validation (see :meth:`Labeling._trusted`)."""
        config = cls.__new__(cls)
        config.labeling = labeling
        config.outputs = outputs
        config._hash = None
        return config

    def __eq__(self, other) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.labeling == other.labeling and self.outputs == other.outputs

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = self._hash = hash((self.labeling, self.outputs))
        return h

    def __repr__(self) -> str:
        return (
            f"<Configuration labels={self.labeling.values!r}"
            f" outputs={self.outputs!r}>"
        )
