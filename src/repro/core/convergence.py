"""Run outcomes and convergence reports.

The paper distinguishes *output stabilization* (every node's output sequence
converges) from the stronger *label stabilization* (the labeling sequence
converges, i.e. all reaction functions reach a fixed point) — Section 2.2.
:class:`RunReport` captures which of the two a concrete run achieved and the
convergence times, which are the paper's round-complexity measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.core.configuration import Configuration


class RunOutcome(enum.Enum):
    """How a simulated run ended."""

    #: The labeling reached a global fixed point (label stabilization).
    LABEL_STABLE = "label-stable"
    #: Outputs converged but the labeling cycles forever (output stabilization
    #: without label stabilization).
    OUTPUT_STABLE = "output-stable"
    #: The run provably cycles with non-constant outputs (periodic schedules).
    OSCILLATING = "oscillating"
    #: ``max_steps`` elapsed without a verdict.
    TIMEOUT = "timeout"
    #: A finite schedule (``ExplicitSchedule(..., cycle=False)``) ran out of
    #: activation sets before a verdict; like ``TIMEOUT``, no verdict — the
    #: run simply cannot be driven further.
    SCHEDULE_EXHAUSTED = "schedule-exhausted"


@dataclass(frozen=True)
class RunReport:
    """The result of one simulated run."""

    outcome: RunOutcome
    #: Smallest T with labeling(t) == labeling(T) for all t >= T, when known.
    label_rounds: int | None
    #: Smallest T with outputs(t) == outputs(T) for all t >= T, when known.
    output_rounds: int | None
    #: The stabilized configuration (stable outcomes) or last configuration.
    final: Configuration
    steps_executed: int
    cycle_start: int | None = None
    cycle_length: int | None = None
    trace: list[Configuration] | None = field(default=None, repr=False)

    @property
    def label_stable(self) -> bool:
        return self.outcome is RunOutcome.LABEL_STABLE

    @property
    def output_stable(self) -> bool:
        """True when outputs converged (label stabilization implies this)."""
        return self.outcome in (RunOutcome.LABEL_STABLE, RunOutcome.OUTPUT_STABLE)

    @property
    def oscillating(self) -> bool:
        return self.outcome is RunOutcome.OSCILLATING

    @property
    def outputs(self) -> tuple[Any, ...]:
        """The (final) output vector."""
        return self.final.outputs

    def describe(self) -> str:
        parts = [f"outcome={self.outcome.value}"]
        if self.label_rounds is not None:
            parts.append(f"label_rounds={self.label_rounds}")
        if self.output_rounds is not None:
            parts.append(f"output_rounds={self.output_rounds}")
        if self.cycle_length is not None:
            parts.append(f"cycle={self.cycle_start}+{self.cycle_length}")
        parts.append(f"steps={self.steps_executed}")
        return "RunReport(" + ", ".join(parts) + ")"
