"""Optional numba kernels for the batch backend (``kernel="numba"``).

The batch simulator's hot loop is pure table arithmetic over packed integer
arrays (:mod:`repro.core.batch`): gather incoming codes, add the per-node
table base, look up the packed transition table, blend by the activation
mask.  numpy executes that as a handful of whole-array passes per step; the
kernels here fuse a whole k-step window into one compiled loop nest that
keeps every intermediate in registers — same tables, same packed arrays,
bit-identical results.

The module always imports; :data:`HAVE_NUMBA` reports whether the compiled
route is actually available.  When numba is absent the kernel symbols are
``None`` and the simulator silently keeps its numpy route, so installing the
``numba`` extra is a pure performance switch (the shape of pia-mpc's one-flag
CPU<->GPU processor selection).

The kernels deliberately use explicit element loops only — numba does not
support numpy fancy indexing, and element loops are also what lets the
window stay fused (no per-step temporaries).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only when numba is installed
    import numpy as _np
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the numpy-only environment
    njit = None
    HAVE_NUMBA = False

if HAVE_NUMBA:  # pragma: no cover - compiled path, covered by the CI numba leg

    @njit(cache=True)
    def mono_window(stack, ostack, masks, perm, base, table, ytable):
        """Fused k-step window for the monolithic degree-1 layout.

        ``stack``/``ostack`` are ``(k+1, L, m)`` / ``(k+1, L, n)`` state
        stacks with slice 0 holding the current codes; ``masks`` is the
        ``(k, n)`` per-step activation mask (shared by every row); ``perm``
        maps each edge to the edge its owner reads; ``base`` is the per-edge
        int64 table offset; ``table``/``ytable`` are the packed transition
        and output tables.  Fills slices 1..k in place.
        """
        k = masks.shape[0]
        rows = stack.shape[1]
        m = stack.shape[2]
        for j in range(k):
            for r in range(rows):
                for e in range(m):
                    if masks[j, e]:
                        key = base[e] + _np.int64(stack[j, r, perm[e]])
                        stack[j + 1, r, e] = table[key]
                        ostack[j + 1, r, e] = ytable[key]
                    else:
                        stack[j + 1, r, e] = stack[j, r, e]
                        ostack[j + 1, r, e] = ostack[j, r, e]

    @njit(cache=True)
    def window_changes(stack):
        """Per-(step, row) change flags over a filled window stack.

        Returns a ``(k, L)`` uint8 array whose ``[j, r]`` entry is 1 exactly
        when row ``r`` changed during step ``j`` — the compiled counterpart
        of ``(stack[1:] != stack[:-1]).any(axis=2)``, with per-row
        short-circuiting.
        """
        k = stack.shape[0] - 1
        rows = stack.shape[1]
        m = stack.shape[2]
        out = _np.zeros((k, rows), dtype=_np.uint8)
        for j in range(k):
            for r in range(rows):
                for e in range(m):
                    if stack[j + 1, r, e] != stack[j, r, e]:
                        out[j, r] = 1
                        break
        return out

else:
    mono_window = None
    window_changes = None
