"""Vectorized batch simulation: whole populations of configurations in lockstep.

PR 1's compiled fast path made *one* trajectory cheap; sweeps still step each
case through its own Python run loop, so a 1024-labeling recovery matrix pays
1024 × (per-step adapter calls).  This module lifts the compiled engine over a
**batch axis**: ``B`` configurations of the same protocol advance together,
with the label state held as a ``(B, m)`` integer array (one interned label
code per edge, canonical edge order — exactly the flat-tuple layout of
:class:`~repro.core.compiled.CompiledProtocol`, with a batch dimension in
front) and per-node outputs as a ``(B, n)`` code array.

The lift has two tiers, chosen per node:

* **Table lookup.**  When the label alphabet is finite and small enough
  (``|Sigma|^in_degree`` rows fit the table budget), the node's compiled
  adapter is enumerated once over every incoming-code combination into a flat
  numpy table.  A step is then gather (incoming codes → mixed-radix key) →
  table row → scatter, vectorized over all rows at once.  Because the table is
  built by calling the *serial* adapter, batch transitions are equal to serial
  transitions by construction.
* **Per-row Python apply.**  Nodes that cannot be lifted (huge or
  non-enumerable spaces, stateful reactions, labels escaping the declared
  space, unhashable inputs) decode their rows back to label objects and call
  the serial adapter directly.  Lifted and fallback nodes mix freely in one
  protocol; if a fallback node ever emits a label outside the enumerated
  space, every lifted node is demoted to the fallback path before the next
  transition, so stale table keys can never be consulted.

Convergence analysis runs per row on top of the shared stepping, replicating
``Simulator.run`` decision-for-decision: periodic rows hash
``(state bytes, phase)`` for exact cycle detection and classify through the
engine's own :func:`~repro.core.engine.classify_cycle`; aperiodic rows carry
vectorized witness masks for the fixed-point certifier; finished rows leave
the live set and stop costing work while the rest keep stepping.  Reports are
equal (``==``) to the serial engine's, field for field.

Fault injection (:meth:`BatchSimulator.run_batch_with_faults`) mirrors
:func:`repro.faults.injection.run_with_faults`: raw stepping through each
row's fault window, models fired through
:meth:`repro.faults.models.FaultModel.fire_batch` (which reproduces the
serial ``(seed, fire time)`` RNG derivation row by row), then the certified
analysis tail relative to each row's last fault.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from itertools import product
from typing import Any

from repro.core.compiled import CompiledProtocol, compile_protocol
from repro.core.configuration import Configuration, Labeling
from repro.core.convergence import RunOutcome, RunReport
from repro.core.engine import DEFAULT_MAX_STEPS, classify_cycle
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError, ValidationError

try:  # numpy is an optional extra; everything else in repro runs without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Per-(node, input) table budget: a node lifts only while
#: ``|Sigma| ** in_degree`` stays at or below this many rows.
DEFAULT_MAX_TABLE_SIZE = 1 << 16


def require_numpy() -> None:
    """Raise a actionable error when numpy is unavailable."""
    if np is None:
        raise ValidationError(
            "the batch simulation backend requires numpy; install it"
            " (pip install numpy, or the 'batch' extra) or use the serial"
            " executor"
        )


class LabelInterner:
    """A growable bijection between label objects and small integer codes.

    Interning is by equality (``dict`` lookup), so two labels that compare
    equal share a code — exactly the equivalence the serial engine's tuple
    comparisons use, which is what makes code-array equality a faithful stand-
    in for labeling equality.
    """

    __slots__ = ("codes", "objects", "_identity")

    def __init__(self, seed_objects=()):
        self.codes: dict[Any, int] = {}
        self.objects: list[Any] = []
        self._identity = True
        for obj in seed_objects:
            self.encode(obj)

    @property
    def size(self) -> int:
        return len(self.objects)

    @property
    def int_identity(self) -> bool:
        """True while every interned object is exactly its own code.

        Holds for the common integer spaces (``binary()``, ``IntegerRange``)
        and lets bulk encode/decode skip the per-element dict walk: encoding
        is ``np.asarray`` and decoding is ``tolist`` — numeric labels that
        merely *equal* their code (``True``, ``1.0``) coerce to the same code
        the dict would return, so equality semantics are unchanged.
        """
        return self._identity

    def encode(self, obj) -> int:
        """The code of ``obj``, interning it on first sight."""
        code = self.codes.get(obj)
        if code is None:
            code = len(self.objects)
            self.codes[obj] = code
            self.objects.append(obj)
            if self._identity and not (type(obj) is int and obj == code):
                self._identity = False
        return code

    def decode(self, code: int):
        return self.objects[code]

    def encode_values(self, values) -> list[int]:
        """Codes for a whole flat label tuple, in order."""
        encode = self.encode
        return [encode(value) for value in values]

    def decode_values(self, codes) -> tuple:
        """The label tuple behind one row of the code array."""
        if self._identity:
            try:
                return tuple(codes.tolist())
            except AttributeError:
                pass
        objects = self.objects
        return tuple(objects[code] for code in codes)


class BatchCompiledProtocol:
    """A :class:`CompiledProtocol` lowered further, to batch lookup tables.

    Construction interns the label space (when it is enumerable within the
    table budget) and prepares per-node position arrays; the per-(node, input)
    reaction tables themselves are built lazily by :meth:`column` and cached,
    so one batch compilation serves every :class:`BatchSimulator` over the
    protocol no matter which inputs each batch carries.
    """

    def __init__(
        self,
        compiled: CompiledProtocol,
        max_table_size: int = DEFAULT_MAX_TABLE_SIZE,
    ):
        require_numpy()
        protocol = compiled.protocol
        if protocol is None:
            raise ValidationError(
                "cannot batch-compile: the source protocol has been collected"
            )
        if max_table_size < 1:
            raise ValidationError("max_table_size must be at least 1")
        self.compiled = compiled
        self.topology = compiled.topology
        self.label_space = protocol.label_space
        self.is_stateful = protocol.is_stateful
        self.max_table_size = max_table_size
        self.n = compiled.n
        self.m = compiled.m
        self.in_positions = [
            np.asarray(positions, dtype=np.int64)
            for positions in compiled.in_positions
        ]
        self.out_positions = [
            np.asarray(positions, dtype=np.int64)
            for positions in compiled.out_positions
        ]

        #: Shared label interner.  Seeded with the full space when that is
        #: enumerable within budget; codes past the seeded prefix mark labels
        #: outside the declared space and disable the table tier.
        space = self.label_space
        if space.size <= max_table_size:
            self.interner = LabelInterner(iter(space))
        else:
            self.interner = LabelInterner()
        self.space_size = self.interner.size

        #: Per-node output interners (outputs never key tables, so they may
        #: grow freely at runtime).
        self.y_interners = [LabelInterner() for _ in range(self.n)]
        self._columns: dict[tuple[int, Any], tuple | None] = {}

    def node_liftable(self, i: int) -> bool:
        """Static (input-independent) part of the lift gate for node ``i``."""
        if self.is_stateful or self.space_size == 0:
            return False
        degree = len(self.in_positions[i])
        return self.space_size**degree <= self.max_table_size

    def column(self, i: int, x):
        """The lifted reaction table of node ``i`` under private input ``x``.

        Returns ``(out_codes, y_codes, valid)`` — arrays of ``|Sigma|**d``
        rows indexed by the mixed-radix key over the node's incoming codes —
        or ``None`` when this (node, input) pair cannot be lifted (table too
        large, unhashable input, a reaction emitting labels outside the
        declared space or unhashable outputs).  Combinations on which the
        serial adapter raises are marked invalid rather than failing the
        lift; hitting one at runtime re-raises through the serial adapter.
        """
        try:
            key = (i, x)
            if key in self._columns:
                return self._columns[key]
        except TypeError:  # unhashable input value
            return None
        column = self._build_column(i, x) if self.node_liftable(i) else None
        self._columns[key] = column
        return column

    def _build_column(self, i: int, x):
        space_size = self.space_size
        in_pos = self.in_positions[i]
        out_pos = self.out_positions[i]
        degree = len(in_pos)
        n_out = len(out_pos)
        rows = space_size**degree
        adapter = self.compiled.adapter(i)
        objects = self.interner.objects
        label_codes = self.interner.codes
        y_encode = self.y_interners[i].encode

        out_codes = np.zeros((rows, n_out), dtype=np.int64)
        y_codes = np.zeros(rows, dtype=np.int64)
        valid = np.ones(rows, dtype=bool)
        values: list[Any] = [None] * self.m
        scratch: list[Any] = [None] * self.m
        for row, combo in enumerate(product(range(space_size), repeat=degree)):
            for position, code in zip(in_pos, combo):
                values[position] = objects[code]
            try:
                y = adapter(values, scratch, x)
            except Exception:
                valid[row] = False
                continue
            try:
                for j, position in enumerate(out_pos):
                    code = label_codes.get(scratch[position])
                    if code is None or code >= space_size:
                        # The reaction leaves the declared space: no table can
                        # close over its codes.  Fall back to Python apply.
                        return None
                    out_codes[row, j] = code
                y_codes[row] = y_encode(y)
            except TypeError:  # unhashable label or output
                return None
        return out_codes, y_codes, valid


#: compiled form -> {max_table_size: batch compilation}; weak on the compiled
#: form so batch compilations die with their protocols, keyed per table
#: budget so alternating budgets never thrash the enumeration work.
_BATCH_CACHE: "weakref.WeakKeyDictionary[CompiledProtocol, dict]" = (
    weakref.WeakKeyDictionary()
)


def batch_compile(
    protocol, max_table_size: int = DEFAULT_MAX_TABLE_SIZE
) -> BatchCompiledProtocol:
    """Batch-compile a protocol (or an already-compiled form), with caching.

    Mirrors :func:`repro.core.compiled.compile_protocol`: repeated
    ``BatchSimulator`` construction over one protocol pays the lookup-table
    costs once per table budget.
    """
    require_numpy()
    if isinstance(protocol, CompiledProtocol):
        compiled = protocol
    else:
        compiled = compile_protocol(protocol)
    per_size = _BATCH_CACHE.get(compiled)
    if per_size is None:
        per_size = _BATCH_CACHE[compiled] = {}
    batch = per_size.get(max_table_size)
    if batch is None:
        batch = BatchCompiledProtocol(compiled, max_table_size=max_table_size)
        per_size[max_table_size] = batch
    return batch


class _Group:
    """One set of lifted nodes sharing an (in-degree, out-degree) shape."""

    __slots__ = (
        "nodes",
        "in_pos",
        "in_pos_flat",
        "out_cols",
        "powers",
        "out_table",
        "y_table",
        "valid",
        "all_valid",
        "xbase",
        "xbase_zero",
        "n_out",
        "degree",
        "covers_all",
    )


class _RowAnalysis:
    """Per-row convergence bookkeeping for the periodic analyzer."""

    __slots__ = ("preperiod", "period", "seen", "history")

    def __init__(self, preperiod, period, state):
        self.preperiod = preperiod
        self.period = period
        self.seen = {} if preperiod else {(state[0], state[1], 0): 0}
        self.history = [state]


class BatchSimulator:
    """Drives one protocol on a fixed population of input vectors.

    The batch analog of :class:`~repro.core.engine.Simulator`: construction
    binds the protocol and one input vector **per row** (pass a single vector
    to broadcast it), :meth:`run_batch` then advances every row's own
    ``(labeling, schedule)`` case in lockstep and returns one
    :class:`~repro.core.convergence.RunReport` per row, equal to what the
    serial engine returns for that case.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        batch_size: int | None = None,
        compiled: CompiledProtocol | None = None,
        batch_compiled: BatchCompiledProtocol | None = None,
        max_table_size: int = DEFAULT_MAX_TABLE_SIZE,
    ):
        require_numpy()
        if compiled is None:
            compiled = compile_protocol(protocol)
        elif compiled.protocol is not protocol:
            raise ValidationError(
                "compiled form was built from a different protocol object"
            )
        if batch_compiled is None:
            batch_compiled = batch_compile(compiled, max_table_size)
        elif batch_compiled.compiled is not compiled:
            raise ValidationError(
                "batch compilation was built from a different compiled form"
            )
        self.protocol = protocol
        self._compiled = compiled
        self._batch = batch_compiled
        self._topology = protocol.topology
        n = protocol.n

        rows = self._normalize_inputs(inputs, n, batch_size)
        self.inputs = rows
        self.batch_size = len(rows)
        self._interner = self._batch.interner
        self._y_interners = self._batch.y_interners
        self._space_size = self._batch.space_size
        self._groups: list[_Group] = []
        self._fallback: list[int] = []
        self._assemble()

    @staticmethod
    def _normalize_inputs(inputs, n, batch_size):
        try:
            rows = [tuple(row) for row in inputs]
        except TypeError:
            raise ValidationError(
                "inputs must be a sequence of per-row input vectors"
            ) from None
        if batch_size is not None:
            if len(rows) == 1:
                rows = rows * batch_size
            elif len(rows) != batch_size:
                raise ValidationError(
                    f"got {len(rows)} input rows for batch_size={batch_size}"
                )
        if not rows:
            raise ValidationError("a batch needs at least one input row")
        for row in rows:
            if len(row) != n:
                raise ValidationError(f"need {n} inputs, got {len(row)}")
        return tuple(rows)

    @property
    def compiled(self) -> CompiledProtocol:
        return self._compiled

    @property
    def batch_compiled(self) -> BatchCompiledProtocol:
        return self._batch

    @property
    def lifted_nodes(self) -> tuple[int, ...]:
        """Nodes currently stepped through lookup tables (for tests/docs)."""
        return tuple(
            int(i) for group in self._groups for i in group.nodes.tolist()
        )

    # -- lift assembly -----------------------------------------------------

    def _assemble(self) -> None:
        """Partition nodes into table groups and Python-fallback nodes."""
        batch = self._batch
        n = batch.n
        space_size = self._space_size
        lifted: dict[tuple[int, int], list[tuple[int, list, dict]]] = {}
        fallback: list[int] = []
        for i in range(n):
            columns: list[Any] = []
            #: Distinct input values at node i, mapped to their column index.
            seen: dict[Any, int] = {}
            ok = batch.node_liftable(i)
            if ok:
                for row in self.inputs:
                    x = row[i]
                    try:
                        if x in seen:
                            continue
                        seen[x] = len(columns)
                    except TypeError:
                        ok = False
                        break
                    column = batch.column(i, x)
                    if column is None:
                        ok = False
                        break
                    columns.append(column)
            if not ok:
                fallback.append(i)
                continue
            shape = (len(batch.in_positions[i]), len(batch.out_positions[i]))
            lifted.setdefault(shape, []).append((i, columns, seen))

        self._fallback = fallback
        self._groups = []
        B = self.batch_size
        for (degree, n_out), members in sorted(lifted.items()):
            group = _Group()
            group.nodes = np.asarray([i for i, _, _ in members], dtype=np.int64)
            group.in_pos = np.stack(
                [batch.in_positions[i] for i, _, _ in members]
            )
            group.out_cols = (
                np.concatenate([batch.out_positions[i] for i, _, _ in members])
                if n_out
                else np.zeros(0, dtype=np.int64)
            )
            group.n_out = n_out
            group.powers = np.asarray(
                [space_size ** (degree - 1 - k) for k in range(degree)],
                dtype=np.int64,
            )
            block = space_size**degree
            out_parts, y_parts, valid_parts = [], [], []
            offsets = []
            offset = 0
            for i, columns, seen in members:
                for out_codes, y_codes, valid in columns:
                    out_parts.append(out_codes)
                    y_parts.append(y_codes)
                    valid_parts.append(valid)
                offsets.append(offset)
                offset += len(columns) * block
            # One xbase row per distinct input vector, broadcast to its rows
            # (sweeps typically share one input vector across the population).
            xbase = np.zeros((B, len(members)), dtype=np.int64)
            try:
                unique_rows: dict[tuple, list[int]] = {}
                for b, row in enumerate(self.inputs):
                    unique_rows.setdefault(row, []).append(b)
            except TypeError:  # unhashable input rows: assign row by row
                for b, row in enumerate(self.inputs):
                    for g, (i, _, seen) in enumerate(members):
                        xbase[b, g] = offsets[g] + seen[row[i]] * block
            else:
                for row, row_slots in unique_rows.items():
                    vector = [
                        offsets[g] + seen[row[i]] * block
                        for g, (i, _, seen) in enumerate(members)
                    ]
                    xbase[row_slots] = vector
            group.out_table = np.concatenate(out_parts)
            group.y_table = np.concatenate(y_parts)
            group.valid = np.concatenate(valid_parts)
            group.all_valid = bool(group.valid.all())
            group.xbase = xbase
            group.xbase_zero = not xbase.any()
            group.degree = degree
            group.in_pos_flat = group.in_pos[:, 0] if degree == 1 else None
            group.covers_all = len(members) == n and bool(
                (group.nodes == np.arange(n)).all()
            )
            self._groups.append(group)

        # Monolithic fast route: every node lifted into one degree-1,
        # out-degree-1 group whose out edges sit in identity layout (edge i
        # owned by node i — rings and other functional graphs).  The whole
        # transition then reduces to gather → table → blend with no scatter.
        self._mono = None
        if (
            not self._fallback
            and len(self._groups) == 1
            and self._groups[0].covers_all
            and self._groups[0].degree == 1
            and self._groups[0].n_out == 1
            and self._groups[0].all_valid
            and np.array_equal(self._groups[0].out_cols, np.arange(batch.m))
        ):
            self._mono = self._groups[0]
        self._refresh_fallback_cache()

    def _demote_all(self) -> None:
        """Move every lifted node to the Python fallback path.

        Triggered when the interner outgrows the enumerated space (a fallback
        reaction or a fault emitted a label outside ``Sigma``): table keys are
        only sound while every code is below ``space_size``.
        """
        demoted = [int(i) for group in self._groups for i in group.nodes]
        self._fallback = sorted(self._fallback + demoted)
        self._groups = []
        self._mono = None
        self._refresh_fallback_cache()

    def _refresh_fallback_cache(self) -> None:
        """Per-node adapter/position lookups for the Python-apply path,
        rebuilt only when the fallback set changes (assembly, demotion)."""
        self._fallback_adapters = [
            self._compiled.adapter(i) for i in self._fallback
        ]
        self._fallback_out_positions = [
            self._batch.out_positions[i] for i in self._fallback
        ]

    # -- stepping ----------------------------------------------------------

    def _raise_invalid(self, group, sub, idx, act, live_slots) -> None:
        """Re-raise the serial adapter's error for the first invalid hit."""
        bad = act & ~group.valid[idx]
        rows, cols = np.nonzero(bad)
        row, col = int(rows[0]), int(cols[0])
        node = int(group.nodes[col])
        values = self._interner.decode_values(sub[row])
        scratch = list(values)
        slot = int(live_slots[row])
        self._compiled.adapter(node)(values, scratch, self.inputs[slot][node])
        raise ValidationError(  # pragma: no cover - adapter should have raised
            f"reaction of node {node} failed during batch stepping"
        )

    def _step_rows(self, sub, osub, mask, live_slots):
        """One global transition over the live rows.

        ``sub``/``osub`` are the live slices of the code arrays; ``mask`` is
        the ``(L, n)`` activation mask.  Returns the post-step arrays; rows
        and nodes outside the mask keep their codes (the paper's semantics:
        unscheduled nodes hold their outgoing labels and outputs).
        """
        if self._groups and self._interner.size > self._space_size:
            self._demote_all()
        mono = self._mono
        if mono is not None:
            keys = sub[:, mono.in_pos_flat]
            if not mono.xbase_zero:
                keys = keys + (
                    mono.xbase
                    if mono.xbase.shape[0] == sub.shape[0]
                    else mono.xbase[live_slots]
                )
            updates = mono.out_table[keys, 0]
            ys = mono.y_table[keys]
            if mask.all():
                return updates, ys
            return np.where(mask, updates, sub), np.where(mask, ys, osub)
        new_sub = sub.copy()
        new_osub = osub.copy()
        L = sub.shape[0]
        for group in self._groups:
            act = mask if group.covers_all else mask[:, group.nodes]
            if not act.any():
                continue
            all_active = bool(act.all())
            if group.degree == 1:
                keys = sub[:, group.in_pos_flat]  # (L, g)
            elif group.degree:
                keys = sub[:, group.in_pos] @ group.powers  # (L, g)
            else:
                keys = np.zeros((L, len(group.nodes)), dtype=np.int64)
            if group.xbase_zero:
                idx = keys
            else:
                idx = group.xbase[live_slots] + keys
            if not group.all_valid and not group.valid[idx[act]].all():
                self._raise_invalid(group, sub, idx, act, live_slots)
            if group.n_out == 1:
                updates = group.out_table[idx, 0]  # (L, g)
                if all_active:
                    new_sub[:, group.out_cols] = updates
                else:
                    current = new_sub[:, group.out_cols]
                    new_sub[:, group.out_cols] = np.where(
                        act, updates, current
                    )
            elif group.n_out:
                updates = group.out_table[idx].reshape(L, -1)
                if all_active:
                    new_sub[:, group.out_cols] = updates
                else:
                    act_cols = np.repeat(act, group.n_out, axis=1)
                    current = new_sub[:, group.out_cols]
                    new_sub[:, group.out_cols] = np.where(
                        act_cols, updates, current
                    )
            ys = group.y_table[idx]
            if all_active:
                new_osub[:, group.nodes] = ys
            else:
                new_osub[:, group.nodes] = np.where(
                    act, ys, new_osub[:, group.nodes]
                )
        if self._fallback:
            self._apply_fallback(sub, new_sub, new_osub, mask, live_slots)
        return new_sub, new_osub

    def _apply_fallback(self, sub, new_sub, new_osub, mask, live_slots):
        nodes = self._fallback
        adapters = self._fallback_adapters
        out_positions = self._fallback_out_positions
        act = mask[:, nodes]
        interner = self._interner
        y_interners = self._y_interners
        for row in np.flatnonzero(act.any(axis=1)):
            slot = int(live_slots[row])
            inputs = self.inputs[slot]
            values = interner.decode_values(sub[row])
            scratch = list(values)
            for k, i in enumerate(nodes):
                if act[row, k]:
                    y = adapters[k](values, scratch, inputs[i])
                    new_osub[row, i] = y_interners[i].encode(y)
            for k, i in enumerate(nodes):
                if act[row, k]:
                    for position in out_positions[k]:
                        new_sub[row, position] = interner.encode(
                            scratch[position]
                        )

    # -- runs --------------------------------------------------------------

    def _check_topology(self, labeling: Labeling) -> None:
        topology = labeling.topology
        if topology is not self._topology and (
            topology.n != self._topology.n
            or topology.edges != self._topology.edges
        ):
            raise ValidationError(
                "labeling topology does not match the protocol's topology"
            )

    def _materialize(self, value_codes, output_codes) -> Configuration:
        labeling = Labeling(
            self._topology, self._interner.decode_values(value_codes)
        )
        outputs = tuple(
            self._y_interners[i].decode(code)
            for i, code in enumerate(output_codes)
        )
        return Configuration(labeling, outputs)

    def run_batch(
        self,
        labelings: Sequence[Labeling],
        schedules: Sequence[Schedule] | Schedule,
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Sequence[Any] | None] | None = None,
    ) -> list[RunReport]:
        """Run every row's case to a verdict; one ``RunReport`` per row.

        ``schedules`` is one schedule per row (a single schedule object is
        shared by every row — only sound for stateless-in-time schedules,
        which all of :mod:`repro.core.schedule` are).  Traces are not
        recorded; use the serial engine for ``record_trace`` runs.
        """
        reports = self._run_lockstep(
            labelings, schedules, None, max_steps, initial_outputs
        )
        return [report for report, _, _ in reports]

    def run_batch_with_faults(
        self,
        labelings: Sequence[Labeling],
        schedules: Sequence[Schedule] | Schedule,
        fault_plans: Sequence[Any],
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Sequence[Any] | None] | None = None,
    ):
        """Injected batch runs; one ``FaultRunReport`` per row.

        The batch analog of :func:`repro.faults.injection.run_with_faults`,
        certified the same way: every round count is relative to the row's
        last fault.
        """
        from repro.faults.injection import FaultRunReport

        reports = self._run_lockstep(
            labelings, schedules, fault_plans, max_steps, initial_outputs
        )
        out = []
        for report, fault_times, base in reports:
            out.append(
                FaultRunReport(
                    outcome=report.outcome,
                    recovery_rounds=report.label_rounds,
                    output_recovery_rounds=report.output_rounds,
                    cycle_start=report.cycle_start,
                    cycle_length=report.cycle_length,
                    faults_fired=len(fault_times),
                    fault_times=tuple(fault_times),
                    last_fault_time=fault_times[-1] if fault_times else None,
                    # Report rounds are local to the analysis tail; the whole
                    # run additionally executed the pre-fault window.
                    steps_executed=base + report.steps_executed,
                    final=report.final,
                )
            )
        return out

    def _run_lockstep(
        self, labelings, schedules, fault_plans, max_steps, initial_outputs
    ):
        B = self.batch_size
        n = self.protocol.n
        if isinstance(schedules, Schedule):
            schedules = [schedules] * B
        else:
            schedules = list(schedules)
        labelings = list(labelings)
        if len(labelings) != B or len(schedules) != B:
            raise ValidationError(
                f"need {B} labelings and schedules, got"
                f" {len(labelings)} and {len(schedules)}"
            )
        if initial_outputs is None:
            initial_outputs = [None] * B
        elif len(initial_outputs) != B:
            raise ValidationError("outputs must have one entry per row")

        interner = self._interner
        y_interners = self._y_interners
        m = self.protocol.topology.m
        codes = np.empty((B, m), dtype=np.int64)
        ocodes = np.empty((B, n), dtype=np.int64)
        encoded = False
        if interner.int_identity:
            # Bulk fast path for integer spaces whose labels are their own
            # codes: one asarray replaces B*m dict walks.  Anything that is
            # not a clean in-range integer array falls back per row.
            try:
                bulk = np.array([labeling.values for labeling in labelings])
            except ValueError:
                bulk = None
            if (
                bulk is not None
                and bulk.shape == (B, m)
                and np.issubdtype(bulk.dtype, np.integer)
                and (0 <= bulk).all()
                and (bulk < interner.size).all()
            ):
                codes = bulk.astype(np.int64)
                encoded = True
        none_row = None
        for b, labeling in enumerate(labelings):
            self._check_topology(labeling)
            if not encoded:
                codes[b] = interner.encode_values(labeling.values)
            outs = initial_outputs[b]
            if outs is None:
                if none_row is None:
                    none_row = [
                        y_interners[i].encode(None) for i in range(n)
                    ]
                row = none_row
            else:
                outs = tuple(outs)
                if len(outs) != n:
                    raise ValidationError(
                        "outputs must have one entry per node"
                    )
                row = [y_interners[i].encode(outs[i]) for i in range(n)]
            ocodes[b] = row

        # Fault fire lists, validated by the serial injector's own check so
        # the two executors accept exactly the same fault plans.
        if fault_plans is not None:
            from repro.faults.injection import validate_fires

            fault_plans = list(fault_plans)
            if len(fault_plans) != B:
                raise ValidationError("need one fault plan per row")
            pending = []
            for plan in fault_plans:
                fires = plan.fires_within(max_steps)
                validate_fires(fires, max_steps)
                pending.append(fires)
        else:
            pending = [[] for _ in range(B)]
        fault_times: list[list[int]] = [[] for _ in range(B)]

        # Per-row analysis state.
        t0 = np.zeros(B, dtype=np.int64)
        witnessed = np.zeros((B, n), dtype=bool)
        llc = np.full(B, -1, dtype=np.int64)  # last label change, local time
        loc = np.full(B, -1, dtype=np.int64)  # last output change, local time
        analysis: list[_RowAnalysis | None] = [None] * B
        is_periodic = np.zeros(B, dtype=bool)
        in_analysis = np.zeros(B, dtype=bool)
        results: list[Any] = [None] * B

        def start_analysis(slot: int, t: int) -> None:
            t0[slot] = t
            in_analysis[slot] = True
            schedule = schedules[slot]
            period = schedule.period
            if period is not None:
                is_periodic[slot] = True
                preperiod = max(0, schedule.preperiod - t)
                state = (codes[slot].tobytes(), ocodes[slot].tobytes())
                analysis[slot] = _RowAnalysis(preperiod, period, state)
            else:
                witnessed[slot] = False
                llc[slot] = -1
                loc[slot] = -1

        raw_rows = []
        for slot in range(B):
            if pending[slot]:
                raw_rows.append(slot)
            else:
                start_analysis(slot, 0)

        def conclude_timeout(slot: int, executed_local: int):
            results[slot] = (
                RunReport(
                    outcome=RunOutcome.TIMEOUT,
                    label_rounds=None,
                    output_rounds=None,
                    final=self._materialize(codes[slot], ocodes[slot]),
                    steps_executed=executed_local,
                ),
                fault_times[slot],
                int(t0[slot]),
            )

        alive = np.ones(B, dtype=bool)
        live = np.arange(B)
        setvec_cache: dict[frozenset, Any] = {}
        topology = self._topology
        space = self.protocol.label_space

        # Group rows by schedule object: a schedule shared across rows (the
        # run_batch broadcast, or a factory returning one object) is queried
        # once per step and its activation vector assigned to all its rows.
        by_schedule: dict[int, tuple[Schedule, list[int]]] = {}
        for slot, schedule in enumerate(schedules):
            by_schedule.setdefault(id(schedule), (schedule, []))[1].append(slot)
        sched_groups = [
            (schedule, np.asarray(slots, dtype=np.int64))
            for schedule, slots in by_schedule.values()
        ]
        mask_full = np.zeros((B, n), dtype=bool)

        for t in range(max_steps):
            if not live.size:
                break
            # 1. Fire faults scheduled for time t (before sigma(t) applies).
            if raw_rows:
                buckets: dict[tuple, tuple[list, list]] = {}
                started = []
                for slot in raw_rows:
                    fires = pending[slot]
                    count = 0
                    while count < len(fires) and fires[count][0] == t:
                        count += 1
                    if not count:
                        continue
                    now_models = [model for _, model in fires[:count]]
                    pending[slot] = fires[count:]
                    fault_times[slot].extend([t] * count)
                    signature = tuple(id(model) for model in now_models)
                    bucket = buckets.setdefault(signature, (now_models, []))
                    bucket[1].append(slot)
                    if not pending[slot]:
                        started.append(slot)
                for models, slots in buckets.values():
                    for model in models:
                        model.fire_batch(
                            codes, slots, topology, space, interner, t
                        )
                for slot in started:
                    raw_rows.remove(slot)
                    start_analysis(slot, t)

            # 2. Activation sets (a finite schedule may run dry here).
            mask_full[live] = False
            exhausted = []
            for schedule, slots in sched_groups:
                current = slots[alive[slots]]
                if not current.size:
                    continue
                try:
                    active = schedule.active(t)
                except ScheduleError:
                    exhausted.extend(int(slot) for slot in current)
                    continue
                vec = setvec_cache.get(active)
                if vec is None:
                    vec = np.zeros(n, dtype=bool)
                    vec[list(active)] = True
                    setvec_cache[active] = vec
                mask_full[current] = vec
            if exhausted:
                for slot in exhausted:
                    results[slot] = (
                        RunReport(
                            outcome=RunOutcome.SCHEDULE_EXHAUSTED,
                            label_rounds=None,
                            output_rounds=None,
                            final=self._materialize(
                                codes[slot], ocodes[slot]
                            ),
                            steps_executed=t - int(t0[slot]),
                        ),
                        fault_times[slot],
                        int(t0[slot]),
                    )
                    alive[slot] = False
                    if slot in raw_rows:
                        raw_rows.remove(slot)
                live = live[alive[live]]
                if not live.size:
                    break

            # 3. One vectorized global transition over the live rows.  While
            # every row is still live the code arrays are used as-is (no
            # gather); once rows have finished, the live slice is compacted
            # out so dead rows stop costing work.
            full = live.size == B
            sub = codes if full else codes[live]
            osub = ocodes if full else ocodes[live]
            mask = mask_full if full else mask_full[live]
            new_sub, new_osub = self._step_rows(sub, osub, mask, live)

            # 4. Convergence bookkeeping, replicated from Simulator.run.
            dead = []
            aper = in_analysis[live] & ~is_periodic[live]
            if aper.any():
                rows = np.flatnonzero(aper)
                slots = live[rows]
                # One full-array compare beats two fancy-indexed copies; the
                # aperiodic rows are usually all (or nearly all) of the batch.
                changed_all = (new_sub != sub).any(axis=1)
                ochanged_all = (new_osub != osub).any(axis=1)
                changed = changed_all[rows]
                ochanged = ochanged_all[rows]
                local_now = t - t0[slots]
                llc[slots[changed]] = local_now[changed]
                witnessed[slots[changed]] = False
                unchanged_slots = slots[~changed]
                witnessed[unchanged_slots] |= mask[rows[~changed]]
                loc[slots[ochanged]] = local_now[ochanged]
                finished = witnessed[slots].all(axis=1)
                for slot, row in zip(slots[finished], rows[finished]):
                    slot = int(slot)
                    results[slot] = (
                        RunReport(
                            outcome=RunOutcome.LABEL_STABLE,
                            label_rounds=int(llc[slot]) + 1,
                            output_rounds=int(loc[slot]) + 1,
                            final=self._materialize(
                                new_sub[row], new_osub[row]
                            ),
                            steps_executed=t - int(t0[slot]) + 1,
                        ),
                        fault_times[slot],
                        int(t0[slot]),
                    )
                    dead.append(slot)
            per = in_analysis[live] & is_periodic[live]
            if per.any():
                for row in np.flatnonzero(per):
                    slot = int(live[row])
                    state = analysis[slot]
                    vb = new_sub[row].tobytes()
                    ob = new_osub[row].tobytes()
                    local_now = t - int(t0[slot]) + 1
                    if local_now >= state.preperiod:
                        key = (
                            vb,
                            ob,
                            (local_now - state.preperiod) % state.period,
                        )
                        cycle_start = state.seen.get(key)
                        if cycle_start is not None:
                            outcome, label_rounds, output_rounds, final = (
                                classify_cycle(
                                    state.history, cycle_start, local_now
                                )
                            )
                            final_values = np.frombuffer(
                                final[0], dtype=np.int64
                            )
                            final_outputs = np.frombuffer(
                                final[1], dtype=np.int64
                            )
                            results[slot] = (
                                RunReport(
                                    outcome=outcome,
                                    label_rounds=label_rounds,
                                    output_rounds=output_rounds,
                                    final=self._materialize(
                                        final_values, final_outputs
                                    ),
                                    steps_executed=local_now,
                                    cycle_start=cycle_start,
                                    cycle_length=max(
                                        local_now - cycle_start, 1
                                    ),
                                ),
                                fault_times[slot],
                                int(t0[slot]),
                            )
                            dead.append(slot)
                            continue
                        state.seen[key] = local_now
                    state.history.append((vb, ob))

            # 5. Commit and drop finished rows.
            if full:
                codes = new_sub
                ocodes = new_osub
            else:
                codes[live] = new_sub
                ocodes[live] = new_osub
            if dead:
                for slot in dead:
                    alive[slot] = False
                live = live[alive[live]]

        for slot in live:
            slot = int(slot)
            conclude_timeout(slot, max_steps - int(t0[slot]))
        return results
