"""Vectorized batch simulation: whole populations of configurations in lockstep.

PR 1's compiled fast path made *one* trajectory cheap; sweeps still step each
case through its own Python run loop, so a 1024-labeling recovery matrix pays
1024 × (per-step adapter calls).  This module lifts the compiled engine over a
**batch axis**: ``B`` configurations of the same protocol advance together,
with the label state held as a ``(B, m)`` integer array (one interned label
code per edge, canonical edge order — exactly the flat-tuple layout of
:class:`~repro.core.compiled.CompiledProtocol`, with a batch dimension in
front) and per-node outputs as a ``(B, n)`` code array.

The lift has two tiers, chosen per node:

* **Table lookup.**  When the label alphabet is finite and small enough
  (``|Sigma|^in_degree`` rows fit the table budget), the node's compiled
  adapter is enumerated once over every incoming-code combination into a flat
  numpy table.  A step is then gather (incoming codes → mixed-radix key) →
  table row → scatter, vectorized over all rows at once.  Because the table is
  built by calling the *serial* adapter, batch transitions are equal to serial
  transitions by construction.
* **Per-row Python apply.**  Nodes that cannot be lifted (huge or
  non-enumerable spaces, stateful reactions, labels escaping the declared
  space, unhashable inputs) decode their rows back to label objects and call
  the serial adapter directly.  Lifted and fallback nodes mix freely in one
  protocol; if a fallback node ever emits a label outside the enumerated
  space, every lifted node is demoted to the fallback path before the next
  transition, so stale table keys can never be consulted.

Three throughput layers sit on top of the lift (this module's hot loop):

* **Packed codes.**  Code arrays and lookup-table columns are packed to the
  smallest dtype the enumerated label space allows (u8/u16/u32, int64 when
  the space is not enumerable), and mixed-radix key strides are precomputed
  so gather → key is one fused take-plus-dot.  If the interner ever outgrows
  the packed dtype (a fallback reaction or fault emitting labels outside the
  declared space), the code arrays are *widened* first and any byte-hashed
  cycle history is re-coded — packed runs can demote, never silently
  overflow.
* **Fused multi-step windows.**  When every node is lifted, k steps run as
  one kernel invocation over a resident ``(k+1, L, m)`` state stack; the
  convergence bookkeeping is then evaluated once per window from the stored
  intermediate states, which keeps it exactly serial-equivalent (a row that
  settles mid-window is concluded from its in-window state, and the extra
  stepped states are simply discarded).  Windows shrink to 1 near settle
  points and around fault fire times, and grow while nothing happens.
* **Optional numba kernels.**  ``kernel="numba"`` routes the fused window
  through :mod:`repro.core.batch_kernels`' ``@njit`` loops when numba is
  importable (``kernel="auto"``, the default, selects it automatically);
  the numpy route remains the reference and the two are bit-identical by
  construction — same packed tables, same window semantics.

Convergence analysis runs per row on top of the shared stepping, replicating
``Simulator.run`` decision-for-decision: periodic rows hash
``(state bytes, phase)`` for exact cycle detection and classify through the
engine's own :func:`~repro.core.engine.classify_cycle`; aperiodic rows carry
vectorized witness masks for the fixed-point certifier; finished rows leave
the live set and stop costing work while the rest keep stepping.  Reports are
equal (``==``) to the serial engine's, field for field.

Fault injection (:meth:`BatchSimulator.run_batch_with_faults`) mirrors
:func:`repro.faults.injection.run_with_faults`: raw stepping through each
row's fault window, models fired through
:meth:`repro.faults.models.FaultModel.fire_batch` (which reproduces the
serial ``(seed, fire time)`` RNG derivation row by row), then the certified
analysis tail relative to each row's last fault.  A fault fire time inside a
fused window splits the window: fires always land exactly at window starts.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence
from itertools import product
from typing import Any

from repro.core import batch_kernels as _kernels
from repro.core.compiled import CompiledProtocol, compile_protocol
from repro.core.configuration import Configuration, Labeling
from repro.core.convergence import RunOutcome, RunReport
from repro.core.engine import DEFAULT_MAX_STEPS, classify_cycle
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError, ValidationError

try:  # numpy is an optional extra; everything else in repro runs without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Per-(node, input) table budget: a node lifts only while
#: ``|Sigma| ** in_degree`` stays at or below this many rows.
DEFAULT_MAX_TABLE_SIZE = 1 << 16

#: Upper bound on the adaptive fused-window length (``fuse="auto"``).
MAX_FUSE_WINDOW = 64

#: Resident-stack budget for one fused window, in bytes; the window length
#: is clamped so ``(k+1)`` state slices stay within it.  Sized so the
#: per-window fixed costs (stack load/commit copies) amortize even for
#: populations of 10^5 packed rows.
STACK_BUDGET_BYTES = 128 << 20

#: Row-tile footprint for the fused mono kernels: one frame slice of this
#: many bytes (times the handful of live arrays per step) stays resident in
#: the outer cache levels while a tile runs all k steps.
MONO_TILE_BYTES = 1 << 20

#: Preferred sub-batch size for sweep-level drivers: populations larger than
#: this are run as several lockstep batches so the per-window working set
#: (codes, outputs, window stacks, bookkeeping) stays cache-resident.
#: Measured on the a05 ring workload, 10^5-row single batches run ~25-40%
#: slower than the same rows in slices of this size.
SWEEP_CHUNK_ROWS = 8192


def require_numpy() -> None:
    """Raise a actionable error when numpy is unavailable."""
    if np is None:
        raise ValidationError(
            "the batch simulation backend requires numpy; install it"
            " (pip install numpy, or the 'batch' extra) or use the serial"
            " executor"
        )


def packed_dtype(count: int):
    """The smallest unsigned dtype whose range covers codes ``0..count-1``.

    Falls back to int64 past 32 bits.  This is the dtype ladder behind the
    packed code arrays: a binary space steps in u8, a 4096-label space in
    u16, and only genuinely huge (or non-enumerable) spaces pay for int64.
    """
    if count <= 1 << 8:
        return np.uint8
    if count <= 1 << 16:
        return np.uint16
    if count <= 1 << 32:
        return np.uint32
    return np.int64


def dtype_capacity(dtype) -> int:
    """How many distinct codes ``dtype`` can represent (for overflow gates)."""
    return int(np.iinfo(np.dtype(dtype)).max) + 1


class LabelInterner:
    """A growable bijection between label objects and small integer codes.

    Interning is by equality (``dict`` lookup), so two labels that compare
    equal share a code — exactly the equivalence the serial engine's tuple
    comparisons use, which is what makes code-array equality a faithful stand-
    in for labeling equality.
    """

    __slots__ = ("codes", "objects", "_identity")

    def __init__(self, seed_objects=()):
        self.codes: dict[Any, int] = {}
        self.objects: list[Any] = []
        self._identity = True
        for obj in seed_objects:
            self.encode(obj)

    @property
    def size(self) -> int:
        return len(self.objects)

    @property
    def int_identity(self) -> bool:
        """True while every interned object is exactly its own code.

        Holds for the common integer spaces (``binary()``, ``IntegerRange``)
        and lets bulk encode/decode skip the per-element dict walk: encoding
        is ``np.asarray`` and decoding is ``tolist`` — numeric labels that
        merely *equal* their code (``True``, ``1.0``) coerce to the same code
        the dict would return, so equality semantics are unchanged.
        """
        return self._identity

    def encode(self, obj) -> int:
        """The code of ``obj``, interning it on first sight."""
        code = self.codes.get(obj)
        if code is None:
            code = len(self.objects)
            self.codes[obj] = code
            self.objects.append(obj)
            if self._identity and not (type(obj) is int and obj == code):
                self._identity = False
        return code

    def decode(self, code: int):
        return self.objects[code]

    def encode_values(self, values) -> list[int]:
        """Codes for a whole flat label tuple, in order."""
        encode = self.encode
        return [encode(value) for value in values]

    def decode_values(self, codes) -> tuple:
        """The label tuple behind one row of the code array (any int dtype)."""
        if self._identity:
            try:
                return tuple(codes.tolist())
            except AttributeError:
                pass
        objects = self.objects
        return tuple(objects[code] for code in codes)

    def bulk_encode(self, rows, dtype=None):
        """Codes for many label rows at once, or ``None`` when ineligible.

        The fast path applies while the interner is int-identity: ``rows``
        (any nested sequence, or an integer ndarray of *any* dtype — u8 and
        u16 inputs are accepted as-is, with no int64 round-trip) is coerced
        with one ``asarray`` and bounds-checked against the interned
        population, replacing one dict walk per element.  The result is
        emitted in ``dtype`` (default: the smallest packed dtype covering
        the interner).  Returns ``None`` — fall back to per-element
        :meth:`encode_values` — when the interner is not int-identity, the
        rows are ragged or non-integer, or any code falls outside the
        interned population (bulk encoding never interns new labels).
        """
        if not self._identity:
            return None
        try:
            bulk = np.asarray(rows)
        except ValueError:
            return None
        if not np.issubdtype(bulk.dtype, np.integer):
            return None
        if bulk.size and (
            int(bulk.min()) < 0 or int(bulk.max()) >= len(self.objects)
        ):
            return None
        if dtype is None:
            dtype = packed_dtype(len(self.objects))
        return bulk.astype(dtype, copy=False)


class BatchCompiledProtocol:
    """A :class:`CompiledProtocol` lowered further, to batch lookup tables.

    Construction interns the label space (when it is enumerable within the
    table budget) and prepares per-node position arrays; the per-(node, input)
    reaction tables themselves are built lazily by :meth:`column` and cached,
    so one batch compilation serves every :class:`BatchSimulator` over the
    protocol no matter which inputs each batch carries.
    """

    def __init__(
        self,
        compiled: CompiledProtocol,
        max_table_size: int = DEFAULT_MAX_TABLE_SIZE,
    ):
        require_numpy()
        protocol = compiled.protocol
        if protocol is None:
            raise ValidationError(
                "cannot batch-compile: the source protocol has been collected"
            )
        if max_table_size < 1:
            raise ValidationError("max_table_size must be at least 1")
        self.compiled = compiled
        self.topology = compiled.topology
        self.label_space = protocol.label_space
        self.is_stateful = protocol.is_stateful
        self.max_table_size = max_table_size
        self.n = compiled.n
        self.m = compiled.m
        self.in_positions = [
            np.asarray(positions, dtype=np.int64)
            for positions in compiled.in_positions
        ]
        self.out_positions = [
            np.asarray(positions, dtype=np.int64)
            for positions in compiled.out_positions
        ]

        #: Shared label interner.  Seeded with the full space when that is
        #: enumerable within budget; codes past the seeded prefix mark labels
        #: outside the declared space and disable the table tier.
        space = self.label_space
        if space.size <= max_table_size:
            self.interner = LabelInterner(iter(space))
        else:
            self.interner = LabelInterner()
        self.space_size = self.interner.size

        #: Smallest dtype covering the enumerated space codes.  Table columns
        #: are packed to it, and code arrays start at it (they widen on
        #: demand if the interner ever outgrows the space).  int64 when the
        #: space is not enumerable within budget: the eventual code
        #: population is unknown, so packing would only buy repeated widening.
        self.code_dtype = (
            np.dtype(packed_dtype(self.space_size))
            if self.space_size
            else np.dtype(np.int64)
        )

        #: Per-node output interners (outputs never key tables, so they may
        #: grow freely at runtime).
        self.y_interners = [LabelInterner() for _ in range(self.n)]
        self._columns: dict[tuple[int, Any], tuple | None] = {}

    def node_liftable(self, i: int) -> bool:
        """Static (input-independent) part of the lift gate for node ``i``."""
        if self.is_stateful or self.space_size == 0:
            return False
        degree = len(self.in_positions[i])
        return self.space_size**degree <= self.max_table_size

    def column(self, i: int, x):
        """The lifted reaction table of node ``i`` under private input ``x``.

        Returns ``(out_codes, y_codes, valid)`` — arrays of ``|Sigma|**d``
        rows indexed by the mixed-radix key over the node's incoming codes —
        or ``None`` when this (node, input) pair cannot be lifted (table too
        large, unhashable input, a reaction emitting labels outside the
        declared space or unhashable outputs).  Combinations on which the
        serial adapter raises are marked invalid rather than failing the
        lift; hitting one at runtime re-raises through the serial adapter.
        ``out_codes`` is packed to :attr:`code_dtype`.
        """
        try:
            key = (i, x)
            if key in self._columns:
                return self._columns[key]
        except TypeError:  # unhashable input value
            return None
        column = self._build_column(i, x) if self.node_liftable(i) else None
        self._columns[key] = column
        return column

    def _build_column(self, i: int, x):
        space_size = self.space_size
        in_pos = self.in_positions[i]
        out_pos = self.out_positions[i]
        degree = len(in_pos)
        n_out = len(out_pos)
        rows = space_size**degree
        adapter = self.compiled.adapter(i)
        objects = self.interner.objects
        label_codes = self.interner.codes
        y_encode = self.y_interners[i].encode

        out_codes = np.zeros((rows, n_out), dtype=self.code_dtype)
        y_codes = np.zeros(rows, dtype=np.int64)
        valid = np.ones(rows, dtype=bool)
        values: list[Any] = [None] * self.m
        scratch: list[Any] = [None] * self.m
        for row, combo in enumerate(product(range(space_size), repeat=degree)):
            for position, code in zip(in_pos, combo, strict=True):
                values[position] = objects[code]
            try:
                y = adapter(values, scratch, x)
            except Exception:
                valid[row] = False
                continue
            try:
                for j, position in enumerate(out_pos):
                    code = label_codes.get(scratch[position])
                    if code is None or code >= space_size:
                        # The reaction leaves the declared space: no table can
                        # close over its codes.  Fall back to Python apply.
                        return None
                    out_codes[row, j] = code
                y_codes[row] = y_encode(y)
            except TypeError:  # unhashable label or output
                return None
        return out_codes, y_codes, valid


#: compiled form -> {max_table_size: batch compilation}; weak on the compiled
#: form so batch compilations die with their protocols, keyed per table
#: budget so alternating budgets never thrash the enumeration work.
_BATCH_CACHE: "weakref.WeakKeyDictionary[CompiledProtocol, dict]" = (
    weakref.WeakKeyDictionary()
)


def batch_compile(
    protocol, max_table_size: int = DEFAULT_MAX_TABLE_SIZE
) -> BatchCompiledProtocol:
    """Batch-compile a protocol (or an already-compiled form), with caching.

    Mirrors :func:`repro.core.compiled.compile_protocol`: repeated
    ``BatchSimulator`` construction over one protocol pays the lookup-table
    costs once per table budget.
    """
    require_numpy()
    if isinstance(protocol, CompiledProtocol):
        compiled = protocol
    else:
        compiled = compile_protocol(protocol)
    per_size = _BATCH_CACHE.get(compiled)
    if per_size is None:
        per_size = _BATCH_CACHE[compiled] = {}
    batch = per_size.get(max_table_size)
    if batch is None:
        batch = BatchCompiledProtocol(compiled, max_table_size=max_table_size)
        per_size[max_table_size] = batch
    return batch


class _Group:
    """One set of lifted nodes sharing an (in-degree, out-degree) shape."""

    __slots__ = (
        "nodes",
        "in_pos",
        "in_pos_flat",
        "out_cols",
        "powers",
        "out_table",
        "out_flat",
        "y_table",
        "valid",
        "all_valid",
        "xbase",
        "xbase_zero",
        "xbase_row",
        "n_out",
        "degree",
        "covers_all",
        "comb",
        "s2",
        "y_cast",
        "shift",
    )


class _RowAnalysis:
    """Per-row convergence bookkeeping for the periodic analyzer."""

    __slots__ = ("preperiod", "period", "seen", "history")

    def __init__(self, preperiod, period, state):
        self.preperiod = preperiod
        self.period = period
        self.seen = {} if preperiod else {(state[0], state[1], 0): 0}
        self.history = [state]


class BatchSimulator:
    """Drives one protocol on a fixed population of input vectors.

    The batch analog of :class:`~repro.core.engine.Simulator`: construction
    binds the protocol and one input vector **per row** (pass a single vector
    to broadcast it), :meth:`run_batch` then advances every row's own
    ``(labeling, schedule)`` case in lockstep and returns one
    :class:`~repro.core.convergence.RunReport` per row, equal to what the
    serial engine returns for that case.

    ``kernel`` selects the compute route for the fused stepping windows:
    ``"numpy"`` (whole-array operations, always available), ``"numba"``
    (the ``@njit`` kernels of :mod:`repro.core.batch_kernels`; raises when
    numba is not importable), or ``"auto"`` (numba when importable, numpy
    otherwise — the default).  The routes are bit-identical; the knob only
    trades compilation latency for step throughput.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        batch_size: int | None = None,
        compiled: CompiledProtocol | None = None,
        batch_compiled: BatchCompiledProtocol | None = None,
        max_table_size: int = DEFAULT_MAX_TABLE_SIZE,
        kernel: str = "auto",
    ):
        require_numpy()
        if compiled is None:
            compiled = compile_protocol(protocol)
        elif compiled.protocol is not protocol:
            raise ValidationError(
                "compiled form was built from a different protocol object"
            )
        if batch_compiled is None:
            batch_compiled = batch_compile(compiled, max_table_size)
        elif batch_compiled.compiled is not compiled:
            raise ValidationError(
                "batch compilation was built from a different compiled form"
            )
        if kernel not in ("auto", "numpy", "numba"):
            raise ValidationError(
                f"unknown kernel {kernel!r};"
                " expected 'auto', 'numpy', or 'numba'"
            )
        if kernel == "numba" and not _kernels.HAVE_NUMBA:
            raise ValidationError(
                "kernel='numba' requires numba; install the 'numba' extra"
                " or pass kernel='numpy'"
            )
        self._kernel = (
            "numba"
            if kernel != "numpy" and _kernels.HAVE_NUMBA
            else "numpy"
        )
        self.protocol = protocol
        self._compiled = compiled
        self._batch = batch_compiled
        self._topology = protocol.topology
        n = protocol.n

        rows = self._normalize_inputs(inputs, n, batch_size)
        self.inputs = rows
        self.batch_size = len(rows)
        # Sweeps typically share one input vector across the population;
        # detecting that once lets _assemble scan a single row instead of
        # B rows per node (identity usually short-circuits the compare).
        first = rows[0]
        self._uniform_inputs = all(
            row is first or row == first for row in rows
        )
        self._interner = self._batch.interner
        self._y_interners = self._batch.y_interners
        self._space_size = self._batch.space_size
        self._groups: list[_Group] = []
        self._fallback: list[int] = []
        self._assemble()

    @staticmethod
    def _normalize_inputs(inputs, n, batch_size):
        try:
            rows = [tuple(row) for row in inputs]
        except TypeError:
            raise ValidationError(
                "inputs must be a sequence of per-row input vectors"
            ) from None
        if batch_size is not None:
            if len(rows) == 1:
                rows = rows * batch_size
            elif len(rows) != batch_size:
                raise ValidationError(
                    f"got {len(rows)} input rows for batch_size={batch_size}"
                )
        if not rows:
            raise ValidationError("a batch needs at least one input row")
        for row in rows:
            if len(row) != n:
                raise ValidationError(f"need {n} inputs, got {len(row)}")
        return tuple(rows)

    @property
    def compiled(self) -> CompiledProtocol:
        return self._compiled

    @property
    def batch_compiled(self) -> BatchCompiledProtocol:
        return self._batch

    @property
    def kernel(self) -> str:
        """The resolved compute kernel ("numpy" or "numba")."""
        return self._kernel

    @property
    def lifted_nodes(self) -> tuple[int, ...]:
        """Nodes currently stepped through lookup tables (for tests/docs)."""
        return tuple(
            int(i) for group in self._groups for i in group.nodes.tolist()
        )

    # -- lift assembly -----------------------------------------------------

    def _assemble(self) -> None:
        """Partition nodes into table groups and Python-fallback nodes."""
        batch = self._batch
        n = batch.n
        space_size = self._space_size
        lifted: dict[tuple[int, int], list[tuple[int, list, dict]]] = {}
        fallback: list[int] = []
        for i in range(n):
            columns: list[Any] = []
            #: Distinct input values at node i, mapped to their column index.
            seen: dict[Any, int] = {}
            ok = batch.node_liftable(i)
            if ok:
                scan = (
                    self.inputs[:1] if self._uniform_inputs else self.inputs
                )
                for row in scan:
                    x = row[i]
                    try:
                        if x in seen:
                            continue
                        seen[x] = len(columns)
                    except TypeError:
                        ok = False
                        break
                    column = batch.column(i, x)
                    if column is None:
                        ok = False
                        break
                    columns.append(column)
            if not ok:
                fallback.append(i)
                continue
            shape = (len(batch.in_positions[i]), len(batch.out_positions[i]))
            lifted.setdefault(shape, []).append((i, columns, seen))

        self._fallback = fallback
        self._groups = []
        B = self.batch_size
        for (degree, n_out), members in sorted(lifted.items()):
            group = _Group()
            group.nodes = np.asarray([i for i, _, _ in members], dtype=np.int64)
            group.in_pos = np.stack(
                [batch.in_positions[i] for i, _, _ in members]
            )
            group.out_cols = (
                np.concatenate([batch.out_positions[i] for i, _, _ in members])
                if n_out
                else np.zeros(0, dtype=np.int64)
            )
            group.n_out = n_out
            group.powers = np.asarray(
                [space_size ** (degree - 1 - k) for k in range(degree)],
                dtype=np.int64,
            )
            block = space_size**degree
            out_parts, y_parts, valid_parts = [], [], []
            offsets = []
            offset = 0
            for _, columns, _ in members:
                for out_codes, y_codes, valid in columns:
                    out_parts.append(out_codes)
                    y_parts.append(y_codes)
                    valid_parts.append(valid)
                offsets.append(offset)
                offset += len(columns) * block
            # Mixed-radix table indices fit the concatenated row count, so
            # the per-row base offsets pack to the matching dtype; the
            # gather-plus-base sum then promotes to (at most) that dtype and
            # can never wrap.
            index_dtype = packed_dtype(max(offset, 1))
            # One xbase row per distinct input vector, broadcast to its rows
            # (sweeps typically share one input vector across the population).
            xbase = np.zeros((B, len(members)), dtype=index_dtype)
            if self._uniform_inputs:
                row = self.inputs[0]
                xbase[:] = [
                    offsets[g] + seen[row[i]] * block
                    for g, (i, _, seen) in enumerate(members)
                ]
            else:
                try:
                    unique_rows: dict[tuple, list[int]] = {}
                    for b, row in enumerate(self.inputs):
                        unique_rows.setdefault(row, []).append(b)
                except TypeError:  # unhashable input rows: assign row by row
                    for b, row in enumerate(self.inputs):
                        for g, (i, _, seen) in enumerate(members):
                            xbase[b, g] = offsets[g] + seen[row[i]] * block
                else:
                    for row, row_slots in unique_rows.items():
                        vector = [
                            offsets[g] + seen[row[i]] * block
                            for g, (i, _, seen) in enumerate(members)
                        ]
                        xbase[row_slots] = vector
            group.out_table = np.concatenate(out_parts)
            group.out_flat = (
                np.ascontiguousarray(group.out_table[:, 0])
                if n_out == 1
                else None
            )
            # Output codes for lifted nodes are fully enumerated at column
            # build time, so the per-group packed dtype is final.
            y_max = max(
                (batch.y_interners[i].size for i, _, _ in members), default=0
            )
            group.y_table = np.concatenate(y_parts).astype(
                packed_dtype(max(y_max, 1))
            )
            group.valid = np.concatenate(valid_parts)
            group.all_valid = bool(group.valid.all())
            group.xbase = xbase
            group.xbase_zero = not xbase.any()
            group.xbase_row = None
            if not group.xbase_zero and bool((xbase == xbase[0]).all()):
                # Every row shares one input vector: a single base row
                # broadcasts, saving a (B, g) gather per step.
                group.xbase_row = xbase[0]
            group.degree = degree
            group.in_pos_flat = group.in_pos[:, 0] if degree == 1 else None
            group.comb = None  # lazy: fused (label | output << 8) table
            group.s2 = None  # lazy: binary-space arithmetic constants
            group.y_cast = None  # lazy: y_table cast to the run's y dtype
            # Cyclic-shift reads (ring families): the per-step gather
            # becomes two contiguous slice copies instead of a random take.
            group.shift = None
            if group.in_pos_flat is not None:
                width = group.in_pos_flat.size
                s = int(group.in_pos_flat[0])
                if np.array_equal(
                    group.in_pos_flat, (np.arange(width) + s) % width
                ):
                    group.shift = s
            group.covers_all = len(members) == n and bool(
                (group.nodes == np.arange(n)).all()
            )
            self._groups.append(group)

        # Monolithic fast route: every node lifted into one degree-1,
        # out-degree-1 group whose out edges sit in identity layout (edge i
        # owned by node i — rings and other functional graphs).  The whole
        # transition then reduces to gather → table → blend with no scatter.
        self._mono = None
        if (
            not self._fallback
            and len(self._groups) == 1
            and self._groups[0].covers_all
            and self._groups[0].degree == 1
            and self._groups[0].n_out == 1
            and self._groups[0].all_valid
            and np.array_equal(self._groups[0].out_cols, np.arange(batch.m))
        ):
            self._mono = self._groups[0]
        self._refresh_fallback_cache()

    def _demote_all(self) -> None:
        """Move every lifted node to the Python fallback path.

        Triggered when the interner outgrows the enumerated space (a fallback
        reaction or a fault emitted a label outside ``Sigma``): table keys are
        only sound while every code is below ``space_size``.
        """
        demoted = [int(i) for group in self._groups for i in group.nodes]
        self._fallback = sorted(self._fallback + demoted)
        self._groups = []
        self._mono = None
        self._refresh_fallback_cache()

    def _refresh_fallback_cache(self) -> None:
        """Per-node adapter/position lookups for the Python-apply path,
        rebuilt only when the fallback set changes (assembly, demotion)."""
        self._fallback_adapters = [
            self._compiled.adapter(i) for i in self._fallback
        ]
        self._fallback_out_positions = [
            self._batch.out_positions[i] for i in self._fallback
        ]

    # -- stepping ----------------------------------------------------------

    def _raise_invalid(self, group, sub, idx, act, live_slots) -> None:
        """Re-raise the serial adapter's error for the first invalid hit."""
        bad = act & ~group.valid[idx]
        rows, cols = np.nonzero(bad)
        row, col = int(rows[0]), int(cols[0])
        node = int(group.nodes[col])
        values = self._interner.decode_values(sub[row])
        scratch = list(values)
        slot = int(live_slots[row])
        self._compiled.adapter(node)(values, scratch, self.inputs[slot][node])
        raise ValidationError(  # pragma: no cover - adapter should have raised
            f"reaction of node {node} failed during batch stepping"
        )

    def _apply_groups(self, sub, new_sub, new_osub, mask, live_slots) -> None:
        """Apply every lifted table group in place on the post-step arrays.

        ``new_sub``/``new_osub`` must enter holding the pre-step codes; rows
        and nodes outside ``mask`` are left untouched (the paper's semantics:
        unscheduled nodes hold their outgoing labels and outputs).
        """
        L = sub.shape[0]
        for group in self._groups:
            act = mask if group.covers_all else mask[:, group.nodes]
            if not act.any():
                continue
            all_active = bool(act.all())
            if group.degree == 1:
                keys = sub[:, group.in_pos_flat]  # (L, g)
            elif group.degree:
                keys = sub[:, group.in_pos] @ group.powers  # (L, g)
            else:
                keys = np.zeros((L, len(group.nodes)), dtype=np.int64)
            if group.xbase_zero:
                idx = keys
            elif group.xbase_row is not None:
                idx = keys + group.xbase_row
            else:
                idx = group.xbase[live_slots] + keys
            if not group.all_valid and not group.valid[idx[act]].all():
                self._raise_invalid(group, sub, idx, act, live_slots)
            if group.n_out == 1:
                updates = group.out_flat[idx]  # (L, g)
                if all_active:
                    new_sub[:, group.out_cols] = updates
                else:
                    current = new_sub[:, group.out_cols]
                    new_sub[:, group.out_cols] = np.where(
                        act, updates, current
                    )
            elif group.n_out:
                updates = group.out_table[idx].reshape(L, -1)
                if all_active:
                    new_sub[:, group.out_cols] = updates
                else:
                    act_cols = np.repeat(act, group.n_out, axis=1)
                    current = new_sub[:, group.out_cols]
                    new_sub[:, group.out_cols] = np.where(
                        act_cols, updates, current
                    )
            ys = group.y_table[idx]
            if all_active:
                new_osub[:, group.nodes] = ys
            else:
                new_osub[:, group.nodes] = np.where(
                    act, ys, new_osub[:, group.nodes]
                )

    def _step_rows(self, sub, osub, mask, live_slots):
        """One global transition over the live rows.

        ``sub``/``osub`` are the live slices of the code arrays; ``mask`` is
        the ``(L, n)`` activation mask.  Returns the post-step arrays; the
        returned dtypes may be wider than the inputs' when a fallback
        reaction interned labels past the packed range (the caller widens
        its master arrays to match — packed codes never wrap).
        """
        if self._groups and self._interner.size > self._space_size:
            self._demote_all()
        mono = self._mono
        if mono is not None:
            keys = sub[:, mono.in_pos_flat]
            if not mono.xbase_zero:
                if mono.xbase_row is not None:
                    keys = keys + mono.xbase_row
                elif mono.xbase.shape[0] == sub.shape[0]:
                    keys = keys + mono.xbase
                else:
                    keys = keys + mono.xbase[live_slots]
            updates = mono.out_flat[keys]
            ys = mono.y_table[keys]
            if mask.all():
                return updates, ys
            return np.where(mask, updates, sub), np.where(mask, ys, osub)
        new_sub = sub.copy()
        new_osub = osub.copy()
        self._apply_groups(sub, new_sub, new_osub, mask, live_slots)
        if self._fallback:
            new_sub, new_osub = self._apply_fallback(
                sub, new_sub, new_osub, mask, live_slots
            )
        return new_sub, new_osub

    def step_codes(self, codes, ocodes, active):
        """One shared-activation-set transition over arbitrary code rows.

        The frontier-expansion entry point for the exploration core: every
        row of ``codes`` (shape ``(L, m)``, any row count — independent of
        the simulator's ``batch_size``) is stepped once with the *same*
        activation set ``active``, against the batch's (uniform) input
        vector.  ``ocodes`` is the matching ``(L, n)`` output-code array
        (pass zeros when outputs are untracked; code 0 of a fresh
        per-node output interner decodes to whatever that node emitted
        first, which the caller then ignores).

        Returns the post-step ``(codes, outputs)`` arrays; dtypes may be
        wider than the inputs' when a fallback reaction interned labels
        past the packed range (packed codes never wrap).
        """
        if not self._uniform_inputs:
            raise ValidationError(
                "step_codes requires a batch built over one shared"
                " input vector"
            )
        n = self._batch.n
        codes = np.ascontiguousarray(codes)
        ocodes = np.ascontiguousarray(ocodes)
        if codes.ndim != 2 or codes.shape[1] != self._batch.m:
            raise ValidationError(
                f"step_codes expects (rows, {self._batch.m}) label codes"
            )
        mask_row = np.zeros(n, dtype=bool)
        mask_row[list(active)] = True
        mask = np.broadcast_to(mask_row, codes.shape[:1] + (n,))
        live_slots = np.zeros(codes.shape[0], dtype=np.intp)
        return self._step_rows(codes, ocodes, mask, live_slots)

    def _apply_fallback(self, sub, new_sub, new_osub, mask, live_slots):
        """Per-row Python apply for the non-lifted nodes.

        Writes are collected first and scattered after an overflow check, so
        a reaction interning labels (or outputs) past the packed dtype's
        range widens the post-step arrays instead of wrapping.  Returns the
        (possibly widened) post-step arrays.
        """
        nodes = self._fallback
        adapters = self._fallback_adapters
        out_positions = self._fallback_out_positions
        act = mask[:, nodes]
        interner = self._interner
        y_interners = self._y_interners
        label_writes: list[tuple[int, int, int]] = []
        output_writes: list[tuple[int, int, int]] = []
        for row in np.flatnonzero(act.any(axis=1)):
            slot = int(live_slots[row])
            inputs = self.inputs[slot]
            values = interner.decode_values(sub[row])
            scratch = list(values)
            for k, i in enumerate(nodes):
                if act[row, k]:
                    y = adapters[k](values, scratch, inputs[i])
                    output_writes.append((row, i, y_interners[i].encode(y)))
            for k in range(len(nodes)):
                if act[row, k]:
                    for position in out_positions[k]:
                        label_writes.append(
                            (row, position, interner.encode(scratch[position]))
                        )
        if label_writes:
            high = max(code for _, _, code in label_writes)
            if high >= dtype_capacity(new_sub.dtype):
                new_sub = new_sub.astype(
                    packed_dtype(max(self._space_size, high + 1))
                )
            for row, position, code in label_writes:
                new_sub[row, position] = code
        if output_writes:
            high = max(code for _, _, code in output_writes)
            if high >= dtype_capacity(new_osub.dtype):
                new_osub = new_osub.astype(packed_dtype(high + 1))
            for row, i, code in output_writes:
                new_osub[row, i] = code
        return new_sub, new_osub

    def _fill_stack(self, stack, ostack, masks, live):
        """Fuse ``k = len(masks)`` steps into one resident-stack kernel run.

        ``stack``/``ostack`` are ``(k+1, L, m)`` / ``(k+1, L, n)`` state
        stacks whose slice 0 holds the current codes; every mask is either a
        shared ``(n,)`` activation vector or a per-row ``(L, n)`` array.
        Only called when every node is lifted (no fallback), so the interner
        cannot grow mid-window and the packed dtypes are stable.

        Returns ``(diffs, odiffs)`` — the ``(k, L)`` per-step change flags —
        when the kernel computed them as a by-product (the tiled mono route,
        where the frames are still cache-resident), else ``None`` and the
        caller falls back to :meth:`_window_diffs`.
        """
        L = stack.shape[1]
        n = self._batch.n
        mono = self._mono
        if mono is not None:
            flat = mono.in_pos_flat
            shift = mono.shift
            table = mono.out_flat
            ytab = mono.y_table
            if mono.xbase_zero:
                xb = None
            elif mono.xbase_row is not None:
                xb = mono.xbase_row
            elif mono.xbase.shape[0] == L:
                xb = mono.xbase
            else:
                xb = mono.xbase[live]
            if (
                self._kernel == "numba"
                and _kernels.HAVE_NUMBA
                and (mono.xbase_zero or mono.xbase_row is not None)
                and all(mk.ndim == 1 for mk in masks)
            ):
                base = (
                    np.zeros(len(flat), dtype=np.int64)
                    if mono.xbase_zero
                    else mono.xbase_row.astype(np.int64)
                )
                _kernels.mono_window(
                    stack,
                    ostack,
                    np.ascontiguousarray(np.stack(masks)),
                    np.ascontiguousarray(flat),
                    base,
                    table,
                    ytab,
                )
                return None
            m = stack.shape[2]
            shared_xb = None
            if mono.xbase_zero:
                shared_xb = np.zeros(m, dtype=np.int64)
            elif mono.xbase_row is not None:
                shared_xb = mono.xbase_row.astype(np.int64)
            packed_u8 = (
                stack.dtype == np.uint8
                and ostack.dtype == np.uint8
                and table.dtype == np.uint8
                and ytab.dtype == np.uint8
            )
            if packed_u8 and self._space_size == 2 and shared_xb is not None:
                # Binary alphabet: each per-edge table holds two entries, so
                # the lookup collapses to arithmetic select over the packed
                # u8 arrays — ``entry0 ^ code * (entry0 ^ entry1)`` — with
                # no index conversion at all.
                variant = "s2"
                if mono.s2 is None:
                    a0 = table[shared_xb]
                    a1 = table[shared_xb + 1]
                    y0 = ytab[shared_xb]
                    y1 = ytab[shared_xb + 1]
                    flip = a0 ^ a1
                    yflip = y0 ^ y1
                    # All-ones flips (both table entries differ everywhere,
                    # e.g. xor rings) make the multiply an identity.
                    mono.s2 = (
                        a0,
                        flip,
                        y0,
                        yflip,
                        bool((flip == 1).all()),
                        bool((yflip == 1).all()),
                    )
                base_row, flip, ybase, yflip, flip_unit, yflip_unit = mono.s2
            elif packed_u8:
                # Fuse the label and output tables into one u16 lookup: one
                # gather per step instead of two, split by cheap bit ops.
                variant = "comb"
                if mono.comb is None:
                    mono.comb = table.astype(np.uint16) | (
                        ytab.astype(np.uint16) << 8
                    )
                comb = mono.comb
            else:
                variant = "takes"
                if mono.y_cast is None or mono.y_cast.dtype != ostack.dtype:
                    mono.y_cast = (
                        ytab
                        if ytab.dtype == ostack.dtype
                        else ytab.astype(ostack.dtype)
                    )
                ytab_cast = mono.y_cast
            #: Columns each step's mask leaves inactive (gathers write every
            #: column; the blend copies these back) — None for 2D masks.
            inactive = [
                np.flatnonzero(~mk)
                if mk.ndim == 1 and not mk.all()
                else None
                for mk in masks
            ]
            # Tile the window over row blocks so a tile's frames stay
            # cache-resident across the whole k-step loop instead of
            # streaming every frame through DRAM once per pass.
            tile = max(1, MONO_TILE_BYTES // (m * stack.dtype.itemsize))
            tile = min(tile, L)
            k = len(masks)
            diffs = np.empty((k, L), dtype=bool)
            odiffs = np.empty((k, L), dtype=bool)
            neq = np.empty((tile, m), dtype=bool)
            # Change detection compares whole rows; viewing each packed row
            # as u64 words compares 8 bytes per lane and shrinks the any()
            # reduction by the same factor.
            s_words = (m * stack.dtype.itemsize) % 8 == 0
            o_words = (m * ostack.dtype.itemsize) % 8 == 0
            gather = np.empty((tile, m), dtype=stack.dtype)
            wide = (
                np.empty((tile, m), dtype=np.uint16)
                if variant == "comb"
                else None
            )
            idx = (
                np.empty((tile, m), dtype=np.intp)
                if variant != "s2"
                else None
            )
            for r0 in range(0, L, tile):
                r1 = min(L, r0 + tile)
                height = r1 - r0
                st = stack[:, r0:r1]
                ost = ostack[:, r0:r1]
                g = gather[:height]
                xb_t = None
                if shared_xb is None and xb is not None:
                    xb_t = xb[r0:r1]
                fused_shift = (
                    shift is not None
                    and variant == "s2"
                    and flip_unit
                    and yflip_unit
                )
                for j, mk in enumerate(masks):
                    src = st[j]
                    if fused_shift:
                        # Ring xor family: the gather is a cyclic shift and
                        # both selects are plain xors, so each step is two
                        # segment xors per stack — no staging buffer at all.
                        a = m - shift
                        np.bitwise_xor(
                            src[:, shift:], base_row[:a], out=st[j + 1][:, :a]
                        )
                        np.bitwise_xor(
                            src[:, shift:], ybase[:a], out=ost[j + 1][:, :a]
                        )
                        if shift:
                            np.bitwise_xor(
                                src[:, :shift],
                                base_row[a:],
                                out=st[j + 1][:, a:],
                            )
                            np.bitwise_xor(
                                src[:, :shift],
                                ybase[a:],
                                out=ost[j + 1][:, a:],
                            )
                    elif shift is not None:
                        # Cyclic-shift gather: two contiguous block copies.
                        g[:, : m - shift] = src[:, shift:]
                        if shift:
                            g[:, m - shift :] = src[:, :shift]
                    else:
                        # mode="clip" skips the bounds check; ``flat`` is a
                        # compile-time permutation, always in range.
                        np.take(src, flat, axis=1, out=g, mode="clip")
                    if fused_shift:
                        pass
                    elif variant == "s2":
                        if flip_unit:
                            np.bitwise_xor(g, base_row, out=st[j + 1])
                        else:
                            np.multiply(g, flip, out=st[j + 1])
                            np.bitwise_xor(st[j + 1], base_row, out=st[j + 1])
                        if yflip_unit:
                            np.bitwise_xor(g, ybase, out=ost[j + 1])
                        else:
                            np.multiply(g, yflip, out=ost[j + 1])
                            np.bitwise_xor(ost[j + 1], ybase, out=ost[j + 1])
                    elif variant == "comb":
                        i_ = idx[:height]
                        w_ = wide[:height]
                        np.add(
                            g,
                            shared_xb if shared_xb is not None else xb_t,
                            out=i_,
                            casting="unsafe",
                        )
                        np.take(comb, i_, out=w_, mode="clip")
                        np.bitwise_and(
                            w_, 0xFF, out=st[j + 1], casting="unsafe"
                        )
                        np.right_shift(w_, 8, out=w_)
                        np.copyto(ost[j + 1], w_, casting="unsafe")
                    else:
                        i_ = idx[:height]
                        if shared_xb is not None:
                            np.add(g, shared_xb, out=i_, casting="unsafe")
                        elif xb_t is not None:
                            np.add(g, xb_t, out=i_, casting="unsafe")
                        else:
                            np.copyto(i_, g, casting="unsafe")
                        np.take(table, i_, out=st[j + 1], mode="clip")
                        np.take(ytab_cast, i_, out=ost[j + 1], mode="clip")
                    mk = masks[j]
                    if mk.ndim == 1:
                        cols = inactive[j]
                        if cols is not None:
                            st[j + 1][:, cols] = st[j][:, cols]
                            ost[j + 1][:, cols] = ost[j][:, cols]
                    else:
                        off = ~mk[r0:r1]
                        np.copyto(st[j + 1], st[j], where=off)
                        np.copyto(ost[j + 1], ost[j], where=off)
                    sa, sb = st[j + 1], st[j]
                    if s_words:
                        sa = sa.view(np.uint64)
                        sb = sb.view(np.uint64)
                    n_ = neq[:height, : sa.shape[1]]
                    np.not_equal(sa, sb, out=n_)
                    np.any(n_, axis=1, out=diffs[j, r0:r1])
                    oa, ob = ost[j + 1], ost[j]
                    if o_words:
                        oa = oa.view(np.uint64)
                        ob = ob.view(np.uint64)
                    n_ = neq[:height, : oa.shape[1]]
                    np.not_equal(oa, ob, out=n_)
                    np.any(n_, axis=1, out=odiffs[j, r0:r1])
            return diffs, odiffs
        for j, mk in enumerate(masks):
            if mk.ndim == 1:
                mk = np.broadcast_to(mk, (L, n))
            np.copyto(stack[j + 1], stack[j])
            np.copyto(ostack[j + 1], ostack[j])
            self._apply_groups(stack[j], stack[j + 1], ostack[j + 1], mk, live)
        return None

    def _window_diffs(self, frames, k: int, L: int):
        """``(k, L)`` change flags: did row ``r`` change during step ``j``."""
        if (
            self._kernel == "numba"
            and _kernels.HAVE_NUMBA
            and isinstance(frames, np.ndarray)
            and frames.flags["C_CONTIGUOUS"]
        ):
            return _kernels.window_changes(frames).astype(bool)
        out = np.empty((k, L), dtype=bool)
        for j in range(k):
            out[j] = (frames[j + 1] != frames[j]).any(axis=1)
        return out

    # -- runs --------------------------------------------------------------

    def _check_topology(self, labeling: Labeling) -> None:
        topology = labeling.topology
        if topology is not self._topology and (
            topology.n != self._topology.n
            or topology.edges != self._topology.edges
        ):
            raise ValidationError(
                "labeling topology does not match the protocol's topology"
            )

    def _materialize(self, value_codes, output_codes) -> Configuration:
        labeling = Labeling(
            self._topology, self._interner.decode_values(value_codes)
        )
        outputs = tuple(
            self._y_interners[i].decode(code)
            for i, code in enumerate(output_codes)
        )
        return Configuration(labeling, outputs)

    def _materialize_many(self, value_rows, output_rows) -> list[Configuration]:
        """Configurations for many rows at once (column-wise decode).

        Replaces one Python decode loop per row with per-column list lookups;
        at timeout (every surviving row materializes at once) this is the
        difference between the decode tail showing up in profiles or not.
        """
        value_rows = np.asarray(value_rows)
        output_rows = np.asarray(output_rows)
        interner = self._interner
        def object_lut(objects):
            # np.empty + slice assign, not asarray: sequence-valued labels
            # must stay single object elements, never expand a dimension.
            lut = np.empty(len(objects), dtype=object)
            lut[:] = objects
            return lut

        if interner.int_identity:
            values = list(map(tuple, value_rows.tolist()))
        else:
            values = list(
                map(tuple, object_lut(interner.objects)[value_rows].tolist())
            )
        # One object-dtype gather per node column beats a Python decode loop
        # per row; the column stack then rebuilds row tuples in C.  When all
        # nodes share one output universe (the usual uniform-reaction case)
        # the whole matrix decodes in a single gather.
        y_objects = [yi.objects for yi in self._y_interners]
        if all(objs == y_objects[0] for objs in y_objects[1:]):
            decoded = object_lut(y_objects[0])[output_rows]
        else:
            decoded = np.empty(output_rows.shape, dtype=object)
            for i in range(output_rows.shape[1]):
                decoded[:, i] = object_lut(y_objects[i])[output_rows[:, i]]
        outputs = list(map(tuple, decoded.tolist()))
        topology = self._topology
        trusted_labeling = Labeling._trusted
        trusted_config = Configuration._trusted
        return [
            trusted_config(trusted_labeling(topology, vals), outs)
            for vals, outs in zip(values, outputs, strict=True)
        ]

    def run_batch(
        self,
        labelings: Sequence[Labeling],
        schedules: Sequence[Schedule] | Schedule,
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Sequence[Any] | None] | None = None,
        fuse: int | str = "auto",
    ) -> list[RunReport]:
        """Run every row's case to a verdict; one ``RunReport`` per row.

        ``schedules`` is one schedule per row (a single schedule object is
        shared by every row — only sound for stateless-in-time schedules,
        which all of :mod:`repro.core.schedule` are).  ``fuse`` bounds the
        fused stepping window: ``"auto"`` (adaptive, the default), or a
        fixed positive step count (``1`` disables fusion; any value is
        serial-equivalent, the knob only exists for benchmarking and
        bisection).  Traces are not recorded; use the serial engine for
        ``record_trace`` runs.
        """
        reports = self._run_lockstep(
            labelings, schedules, None, max_steps, initial_outputs, fuse
        )
        return [report for report, _, _ in reports]

    def run_batch_with_faults(
        self,
        labelings: Sequence[Labeling],
        schedules: Sequence[Schedule] | Schedule,
        fault_plans: Sequence[Any],
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        initial_outputs: Sequence[Sequence[Any] | None] | None = None,
        fuse: int | str = "auto",
    ):
        """Injected batch runs; one ``FaultRunReport`` per row.

        The batch analog of :func:`repro.faults.injection.run_with_faults`,
        certified the same way: every round count is relative to the row's
        last fault.  Fault fire times split fused windows, so every model
        fires at exactly its serial time.
        """
        from repro.faults.injection import FaultRunReport

        reports = self._run_lockstep(
            labelings, schedules, fault_plans, max_steps, initial_outputs, fuse
        )
        out = []
        for report, fault_times, base in reports:
            out.append(
                FaultRunReport(
                    outcome=report.outcome,
                    recovery_rounds=report.label_rounds,
                    output_recovery_rounds=report.output_rounds,
                    cycle_start=report.cycle_start,
                    cycle_length=report.cycle_length,
                    faults_fired=len(fault_times),
                    fault_times=tuple(fault_times),
                    last_fault_time=fault_times[-1] if fault_times else None,
                    # Report rounds are local to the analysis tail; the whole
                    # run additionally executed the pre-fault window.
                    steps_executed=base + report.steps_executed,
                    final=report.final,
                )
            )
        return out

    def _run_lockstep(
        self, labelings, schedules, fault_plans, max_steps, initial_outputs,
        fuse="auto",
    ):
        B = self.batch_size
        n = self.protocol.n
        if isinstance(schedules, Schedule):
            schedules = [schedules] * B
        else:
            schedules = list(schedules)
        labelings = list(labelings)
        if len(labelings) != B or len(schedules) != B:
            raise ValidationError(
                f"need {B} labelings and schedules, got"
                f" {len(labelings)} and {len(schedules)}"
            )
        if initial_outputs is None:
            initial_outputs = [None] * B
        elif len(initial_outputs) != B:
            raise ValidationError("outputs must have one entry per row")
        if fuse != "auto" and (
            isinstance(fuse, bool) or not isinstance(fuse, int) or fuse < 1
        ):
            raise ValidationError(
                "fuse must be 'auto' or a positive step count"
            )
        adaptive = fuse == "auto"

        interner = self._interner
        y_interners = self._y_interners
        m = self.protocol.topology.m

        # -- encode the starting population.  Labels first, dtypes second:
        # the code arrays are allocated only after every starting label has
        # been interned, so an out-of-range code can never wrap into a
        # too-narrow packed array.
        for labeling in labelings:
            self._check_topology(labeling)
        bulk = interner.bulk_encode(
            [labeling.values for labeling in labelings]
        )
        if bulk is not None and bulk.shape != (B, m):
            bulk = None
        value_rows = None
        if bulk is None:
            value_rows = [
                interner.encode_values(labeling.values)
                for labeling in labelings
            ]
        output_rows = []
        none_row = None
        for b in range(B):
            outs = initial_outputs[b]
            if outs is None:
                if none_row is None:
                    none_row = [y_interners[i].encode(None) for i in range(n)]
                output_rows.append(none_row)
            else:
                outs = tuple(outs)
                if len(outs) != n:
                    raise ValidationError(
                        "outputs must have one entry per node"
                    )
                output_rows.append(
                    [y_interners[i].encode(outs[i]) for i in range(n)]
                )

        if self._space_size == 0:
            code_dt = np.dtype(np.int64)
        else:
            code_dt = np.dtype(
                packed_dtype(max(self._space_size, interner.size))
            )
        y_dt = np.dtype(
            packed_dtype(
                max([yi.size for yi in y_interners], default=1) or 1
            )
        )
        codes = (
            bulk.astype(code_dt, copy=False)
            if bulk is not None
            else np.asarray(value_rows, dtype=code_dt)
        )
        if codes.base is not None or codes.dtype != code_dt:
            codes = np.ascontiguousarray(codes, dtype=code_dt)
        ocodes = np.asarray(output_rows, dtype=y_dt)

        # Fault fire lists, validated by the serial injector's own check so
        # the two executors accept exactly the same fault plans.
        if fault_plans is not None:
            from repro.faults.injection import validate_fires

            fault_plans = list(fault_plans)
            if len(fault_plans) != B:
                raise ValidationError("need one fault plan per row")
            pending = []
            for plan in fault_plans:
                fires = plan.fires_within(max_steps)
                validate_fires(fires, max_steps)
                pending.append(fires)
        else:
            # Fault-free rows never append; sharing one immutable empty per
            # row skips 2B list allocations at sweep scale.
            pending = [()] * B
        fault_times: list = (
            [[] for _ in range(B)] if fault_plans is not None else [()] * B
        )

        # Per-row analysis state.
        t0 = np.zeros(B, dtype=np.int64)
        witnessed = np.zeros((B, n), dtype=bool)
        llc = np.full(B, -1, dtype=np.int64)  # last label change, local time
        loc = np.full(B, -1, dtype=np.int64)  # last output change, local time
        analysis: list[_RowAnalysis | None] = [None] * B
        is_periodic = np.zeros(B, dtype=bool)
        in_analysis = np.zeros(B, dtype=bool)
        results: list[Any] = [None] * B

        def start_analysis(slot: int, t: int) -> None:
            t0[slot] = t
            in_analysis[slot] = True
            schedule = schedules[slot]
            period = schedule.period
            if period is not None:
                is_periodic[slot] = True
                preperiod = max(0, schedule.preperiod - t)
                state = (codes[slot].tobytes(), ocodes[slot].tobytes())
                analysis[slot] = _RowAnalysis(preperiod, period, state)
            else:
                witnessed[slot] = False
                llc[slot] = -1
                loc[slot] = -1

        raw_rows = []
        if (
            fault_plans is None
            and all(s is schedules[0] for s in schedules)
            and schedules[0].period is None
        ):
            # The common sweep shape — one shared aperiodic schedule, no
            # faults: every row starts analysis at t=0 and the per-row state
            # arrays already hold exactly what start_analysis would write.
            in_analysis[:] = True
        else:
            for slot in range(B):
                if pending[slot]:
                    raw_rows.append(slot)
                else:
                    start_analysis(slot, 0)

        alive = np.ones(B, dtype=bool)
        live = np.arange(B)
        setvec_cache: dict[frozenset, Any] = {}
        topology = self._topology
        space = self.protocol.label_space

        # -- widening: re-code the byte-hashed cycle history when the code
        # arrays grow a dtype (packed runs demote or widen, never wrap).
        def recode_histories(part: int, old_dt, new_dt) -> None:
            for slot in range(B):
                if not alive[slot]:
                    continue
                state = analysis[slot]
                if state is None:
                    continue

                def recode(raw: bytes) -> bytes:
                    return (
                        np.frombuffer(raw, dtype=old_dt)
                        .astype(new_dt)
                        .tobytes()
                    )

                if part == 0:
                    state.history = [
                        (recode(vb), ob) for vb, ob in state.history
                    ]
                    state.seen = {
                        (recode(vb), ob, phase): when
                        for (vb, ob, phase), when in state.seen.items()
                    }
                else:
                    state.history = [
                        (vb, recode(ob)) for vb, ob in state.history
                    ]
                    state.seen = {
                        (vb, recode(ob), phase): when
                        for (vb, ob, phase), when in state.seen.items()
                    }

        def widen_codes_to(new_dt) -> None:
            nonlocal codes, code_dt
            new_dt = np.dtype(new_dt)
            if new_dt == code_dt:
                return
            recode_histories(0, code_dt, new_dt)
            codes = codes.astype(new_dt)
            code_dt = new_dt

        def widen_ocodes_to(new_dt) -> None:
            nonlocal ocodes, y_dt
            new_dt = np.dtype(new_dt)
            if new_dt == y_dt:
                return
            recode_histories(1, y_dt, new_dt)
            ocodes = ocodes.astype(new_dt)
            y_dt = new_dt

        # Group rows by schedule object: a schedule shared across rows (the
        # run_batch broadcast, or a factory returning one object) is queried
        # once per step and its activation vector assigned to all its rows.
        by_schedule: dict[int, tuple[Schedule, list[int]]] = {}
        for slot, schedule in enumerate(schedules):
            by_schedule.setdefault(id(schedule), (schedule, []))[1].append(slot)
        sched_groups = [
            (schedule, np.asarray(slots, dtype=np.int64))
            for schedule, slots in by_schedule.values()
        ]
        shared_schedule = len(sched_groups) == 1
        mask_full = np.zeros((B, n), dtype=bool)

        def activation_vector(active):
            vec = setvec_cache.get(active)
            if vec is None:
                vec = np.zeros(n, dtype=bool)
                vec[list(active)] = True
                setvec_cache[active] = vec
            return vec

        def build_masks(t: int, k: int):
            """Activation masks for window offsets ``0..k-1``.

            Returns ``(masks, k_eff, exhausted)``: the per-step masks (a
            shared ``(n,)`` vector per step, or a per-row ``(L, n)`` array
            when rows follow different schedules), the window truncated at
            the first offset whose schedule ran dry, and — only when that
            offset is 0 — the rows to conclude ``SCHEDULE_EXHAUSTED`` now.
            """
            masks = []
            exhausted: list[int] = []
            if shared_schedule:
                schedule, _ = sched_groups[0]
                for j in range(k):
                    try:
                        active = schedule.active(t + j)
                    except ScheduleError:
                        if j == 0:
                            exhausted = [int(s) for s in live]
                        return masks, j, exhausted
                    masks.append(activation_vector(active))
                return masks, k, exhausted
            for j in range(k):
                mask_full[live] = False
                failed = False
                for schedule, slots in sched_groups:
                    current = slots[alive[slots]]
                    if not current.size:
                        continue
                    try:
                        active = schedule.active(t + j)
                    except ScheduleError:
                        failed = True
                        if j == 0:
                            exhausted.extend(int(s) for s in current)
                        continue
                    mask_full[current] = activation_vector(active)
                if failed:
                    return masks, j, exhausted
                masks.append(mask_full[live].copy())
            return masks, k, exhausted

        # -- main loop, in fused windows of k >= 1 steps ------------------
        t = 0
        window = 1 if adaptive else int(fuse)
        stack_buf = None
        ostack_buf = None
        while t < max_steps and live.size:
            # 1. Fire faults scheduled for time t (before sigma(t) applies).
            if raw_rows:
                buckets: dict[tuple, tuple[list, list]] = {}
                started = []
                for slot in raw_rows:
                    fires = pending[slot]
                    count = 0
                    while count < len(fires) and fires[count][0] == t:
                        count += 1
                    if not count:
                        continue
                    now_models = [model for _, model in fires[:count]]
                    pending[slot] = fires[count:]
                    fault_times[slot].extend([t] * count)
                    signature = tuple(id(model) for model in now_models)
                    bucket = buckets.setdefault(signature, (now_models, []))
                    bucket[1].append(slot)
                    if not pending[slot]:
                        started.append(slot)
                for models, slots in buckets.values():
                    if code_dt.itemsize == 8:
                        for model in models:
                            model.fire_batch(
                                codes, slots, topology, space, interner, t
                            )
                    else:
                        # Fire into an int64 staging copy of just these rows:
                        # a model interning labels past the packed range then
                        # widens the master array before commit instead of
                        # wrapping inside it.
                        staging = codes[slots].astype(np.int64)
                        local = list(range(len(slots)))
                        for model in models:
                            model.fire_batch(
                                staging, local, topology, space, interner, t
                            )
                        if interner.size > dtype_capacity(code_dt):
                            widen_codes_to(
                                packed_dtype(
                                    max(self._space_size, interner.size)
                                )
                            )
                        codes[slots] = staging
                for slot in started:
                    raw_rows.remove(slot)
                    start_analysis(slot, t)

            # 2. Table soundness and packing gates (fault or prior-run
            # growth): demote when the interner left the enumerated space,
            # widen when it left the packed range.
            if self._groups and interner.size > self._space_size:
                self._demote_all()
            if interner.size > dtype_capacity(code_dt):
                widen_codes_to(
                    packed_dtype(max(self._space_size, interner.size))
                )

            # 3. Window length: fused only while every node is lifted; a
            # pending fault fire or the step budget truncates, and the stack
            # budget bounds residency.
            if self._fallback:
                k = 1
            else:
                k = min(window, max_steps - t)
                if raw_rows:
                    next_fire = min(
                        pending[slot][0][0] for slot in raw_rows
                    )
                    k = min(k, next_fire - t)
                if k > 1:
                    per_step = live.size * (
                        m * code_dt.itemsize + n * y_dt.itemsize
                    )
                    if not shared_schedule:
                        per_step += live.size * n
                    k = min(k, max(1, STACK_BUDGET_BYTES // per_step))
                k = max(int(k), 1)

            # 4. Activation masks (a finite schedule may run dry here).
            masks, k, exhausted = build_masks(t, k)
            if exhausted:
                finals = self._materialize_many(
                    codes[exhausted], ocodes[exhausted]
                )
                for slot, final in zip(exhausted, finals, strict=True):
                    results[slot] = (
                        RunReport(
                            outcome=RunOutcome.SCHEDULE_EXHAUSTED,
                            label_rounds=None,
                            output_rounds=None,
                            final=final,
                            steps_executed=t - int(t0[slot]),
                        ),
                        fault_times[slot],
                        int(t0[slot]),
                    )
                    alive[slot] = False
                    if slot in raw_rows:
                        raw_rows.remove(slot)
                live = live[alive[live]]
            if k == 0:
                # Offset-0 exhaustion: the window was concluded away, not
                # stepped.  Re-enter with the surviving rows, same t.
                continue

            # 5. k fused transitions over the live rows.
            L = live.size
            full = L == B
            if k == 1:
                sub = codes if full else codes[live]
                osub = ocodes if full else ocodes[live]
                mk = masks[0]
                mk2 = (
                    np.broadcast_to(mk, (L, n)) if mk.ndim == 1 else mk
                )
                new_sub, new_osub = self._step_rows(sub, osub, mk2, live)
                if new_sub.dtype != code_dt:
                    widen_codes_to(new_sub.dtype)
                if new_osub.dtype != y_dt:
                    widen_ocodes_to(new_osub.dtype)
                frames: Any = (sub, new_sub)
                oframes: Any = (osub, new_osub)
                window_diffs = None
            else:
                # Window stacks are reused across windows (first-axis slices
                # of the cached buffers stay contiguous); reallocating each
                # window would page-fault fresh memory every few steps.
                if (
                    stack_buf is None
                    or stack_buf.dtype != code_dt
                    or stack_buf.shape[1] != L
                    or stack_buf.shape[0] < k + 1
                ):
                    stack_buf = np.empty((k + 1, L, m), dtype=code_dt)
                if (
                    ostack_buf is None
                    or ostack_buf.dtype != y_dt
                    or ostack_buf.shape[1] != L
                    or ostack_buf.shape[0] < k + 1
                ):
                    ostack_buf = np.empty((k + 1, L, n), dtype=y_dt)
                stack = stack_buf[: k + 1]
                ostack = ostack_buf[: k + 1]
                stack[0] = codes if full else codes[live]
                ostack[0] = ocodes if full else ocodes[live]
                window_diffs = self._fill_stack(stack, ostack, masks, live)
                frames = stack
                oframes = ostack

            # 6. Convergence bookkeeping, replicated from Simulator.run and
            # evaluated per window step from the stored intermediate states
            # (rollback-free: a row settling at offset j concludes from
            # frames[j + 1], its later stepped states are discarded).
            dead = []
            finished_any = False
            aper = in_analysis[live] & ~is_periodic[live]
            if aper.any():
                rows = np.flatnonzero(aper)
                slots = live[rows]
                all_rows = rows.size == L
                if window_diffs is not None:
                    diffs, odiffs = window_diffs
                else:
                    diffs = self._window_diffs(frames, k, L)
                    odiffs = self._window_diffs(oframes, k, L)
                if not all_rows:
                    diffs = diffs[:, rows]
                    odiffs = odiffs[:, rows]
                wit = witnessed[slots]
                llc_local = llc[slots]
                loc_local = loc[slots]
                t0_local = t0[slots]
                open_ = np.ones(rows.size, dtype=bool)
                fin: list[tuple[int, int, int, int, int]] = []
                if all(mk.ndim == 1 for mk in masks):
                    # Shared-schedule windows: the witness evolution between
                    # two label changes depends only on the masks, not the
                    # row, so coverage is precomputed per window (tiny (k, n)
                    # scans) and the per-step work drops to O(rows) integer
                    # ops — a row finishes at step j exactly when j is its
                    # segment's precomputed full-coverage step.
                    mask_block = np.stack(masks)
                    prefix = np.logical_or.accumulate(mask_block, axis=0)
                    #: First window step covering each node (k = never).
                    first_cover = np.where(
                        prefix[-1], np.argmax(prefix, axis=0), k
                    ).astype(np.int16)  # shrinks the (rows, n) temp below 4x
                    suffix = np.zeros((k + 1, n), dtype=bool)
                    for s in range(k - 1, -1, -1):
                        suffix[s] = suffix[s + 1] | mask_block[s]
                    #: nextfull[s] = first j >= s with mk[s..j] covering every
                    #: node (k = not in this window).
                    nextfull = np.full(k + 1, k, dtype=np.int64)
                    for s in range(k):
                        if not suffix[s].all():
                            break
                        acc = mask_block[s].copy()
                        j2 = s
                        while not acc.all():
                            j2 += 1
                            acc |= mask_block[j2]
                        nextfull[s] = j2
                    # A row's pending finish step: while it has not changed
                    # in-window, the first step whose mask prefix covers
                    # everything its carried witness set is missing.
                    pending = np.maximum(
                        np.where(~wit, first_cover, -1).max(axis=1), 0
                    )
                    lastc = np.full(rows.size, -1, dtype=np.int64)
                    olastc = np.full(rows.size, -1, dtype=np.int64)
                    for j in range(k):
                        ch = diffs[j] & open_
                        if ch.any():
                            lastc[ch] = j
                            pending[ch] = nextfull[j + 1]
                        och = odiffs[j] & open_
                        if och.any():
                            olastc[och] = j
                        done = open_ & (pending == j) & ~diffs[j]
                        if done.any():
                            finished_any = True
                            for ii in np.flatnonzero(done).tolist():
                                lc = int(lastc[ii])
                                label_last = (
                                    t + lc - int(t0_local[ii])
                                    if lc >= 0
                                    else int(llc_local[ii])
                                )
                                oc = int(olastc[ii])
                                output_last = (
                                    t + oc - int(t0_local[ii])
                                    if oc >= 0
                                    else int(loc_local[ii])
                                )
                                fin.append(
                                    (
                                        int(slots[ii]),
                                        int(rows[ii]),
                                        j,
                                        label_last + 1,
                                        output_last + 1,
                                    )
                                )
                            open_[done] = False
                    np.copyto(llc_local, t + lastc - t0_local, where=lastc >= 0)
                    np.copyto(
                        loc_local, t + olastc - t0_local, where=olastc >= 0
                    )
                    # Witness at window exit: the mask union since the last
                    # change, plus the carried set for never-changed rows.
                    wit_out = suffix[lastc + 1]
                    first_seg = lastc < 0
                    wit_out[first_seg] |= wit[first_seg]
                    wit = wit_out
                else:
                    for j in range(k):
                        changed = diffs[j] & open_
                        if changed.any():
                            llc_local[changed] = (t + j) - t0_local[changed]
                            wit[changed] = False
                        unchanged = open_ & ~diffs[j]
                        ochanged = odiffs[j] & open_
                        if ochanged.any():
                            loc_local[ochanged] = (t + j) - t0_local[ochanged]
                        if unchanged.any():
                            mk = masks[j]
                            wit[unchanged] |= mk[rows[unchanged]]
                            candidates = np.flatnonzero(unchanged)
                            done = candidates[wit[candidates].all(axis=1)]
                            if done.size:
                                finished_any = True
                                for ii in done.tolist():
                                    fin.append(
                                        (
                                            int(slots[ii]),
                                            int(rows[ii]),
                                            j,
                                            int(llc_local[ii]) + 1,
                                            int(loc_local[ii]) + 1,
                                        )
                                    )
                                open_[done] = False
                witnessed[slots] = wit
                llc[slots] = llc_local
                loc[slots] = loc_local
                if fin:
                    finals = self._materialize_many(
                        np.stack([frames[j + 1][row] for _, row, j, _, _ in fin]),
                        np.stack([oframes[j + 1][row] for _, row, j, _, _ in fin]),
                    )
                    for (slot, _, j, label_rounds, output_rounds), final in zip(
                        fin, finals
                    , strict=True):
                        results[slot] = (
                            RunReport(
                                outcome=RunOutcome.LABEL_STABLE,
                                label_rounds=label_rounds,
                                output_rounds=output_rounds,
                                final=final,
                                steps_executed=(t + j) - int(t0[slot]) + 1,
                            ),
                            fault_times[slot],
                            int(t0[slot]),
                        )
                        dead.append(slot)
            per = in_analysis[live] & is_periodic[live]
            if per.any():
                for row in np.flatnonzero(per):
                    slot = int(live[row])
                    state = analysis[slot]
                    t0_slot = int(t0[slot])
                    for j in range(k):
                        vb = frames[j + 1][row].tobytes()
                        ob = oframes[j + 1][row].tobytes()
                        local_now = (t + j) - t0_slot + 1
                        if local_now >= state.preperiod:
                            key = (
                                vb,
                                ob,
                                (local_now - state.preperiod) % state.period,
                            )
                            cycle_start = state.seen.get(key)
                            if cycle_start is not None:
                                outcome, label_rounds, output_rounds, final = (
                                    classify_cycle(
                                        state.history, cycle_start, local_now
                                    )
                                )
                                final_values = np.frombuffer(
                                    final[0], dtype=code_dt
                                )
                                final_outputs = np.frombuffer(
                                    final[1], dtype=y_dt
                                )
                                results[slot] = (
                                    RunReport(
                                        outcome=outcome,
                                        label_rounds=label_rounds,
                                        output_rounds=output_rounds,
                                        final=self._materialize(
                                            final_values, final_outputs
                                        ),
                                        steps_executed=local_now,
                                        cycle_start=cycle_start,
                                        cycle_length=max(
                                            local_now - cycle_start, 1
                                        ),
                                    ),
                                    fault_times[slot],
                                    t0_slot,
                                )
                                dead.append(slot)
                                finished_any = True
                                break
                            state.seen[key] = local_now
                        state.history.append((vb, ob))

            # 7. Commit the post-window state and drop finished rows.
            if full:
                if k == 1:
                    codes = frames[1]
                    ocodes = oframes[1]
                else:
                    # Aliasing the reused stack buffer is safe: the next
                    # window copies ``codes`` into slice 0 before the fill
                    # touches slices 1..k, and any L/dtype change reallocates
                    # the buffer (the alias keeps the old one alive).
                    codes = frames[k]
                    ocodes = oframes[k]
            else:
                codes[live] = frames[k]
                ocodes[live] = oframes[k]
            if dead:
                for slot in dead:
                    alive[slot] = False
                live = live[alive[live]]
            t += k
            if adaptive:
                # Grow while the window is event-free, shrink to single
                # steps the moment rows settle: conclusions cluster, and a
                # short window wastes no speculative stepping near them.
                window = (
                    1 if finished_any else min(window * 2, MAX_FUSE_WINDOW)
                )

        if live.size:
            finals = self._materialize_many(codes[live], ocodes[live])
            for slot, final in zip(live.tolist(), finals, strict=True):
                results[slot] = (
                    RunReport(
                        outcome=RunOutcome.TIMEOUT,
                        label_rounds=None,
                        output_rounds=None,
                        final=final,
                        steps_executed=max_steps - int(t0[slot]),
                    ),
                    fault_times[slot],
                    int(t0[slot]),
                )
        return results
