"""Reaction functions: the delta_i of the paper.

A node's reaction function deterministically maps the labels on its incoming
edges together with its private input ``x_i`` to (1) labels for all of its
outgoing edges and (2) an output value ``y_i`` (Section 2.1):

    delta_i : Sigma^{-i} x {0,1} -> Sigma^{+i} x {0,1}

The library also models *stateful* reactions (used only by the PSPACE
reduction machinery of Appendix B, Theorems B.11/B.14) where the reaction may
additionally read the node's own current outgoing labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.core.labels import Label
from repro.exceptions import ValidationError

Edge = tuple[int, int]
#: The value pair a reaction produces: per-edge outgoing labels and an output.
ReactionResult = tuple[Mapping[Edge, Label], Any]


class ReactionFunction(ABC):
    """A deterministic stateless reaction ``(incoming, x) -> (outgoing, y)``."""

    @abstractmethod
    def react(self, incoming: Mapping[Edge, Label], x: Any) -> ReactionResult:
        """Apply the reaction.

        ``incoming`` maps each incoming edge ``(u, i)`` to its current label.
        Returns a mapping assigning a label to *every* outgoing edge of the
        node, plus the node's output value.
        """

    def __call__(self, incoming: Mapping[Edge, Label], x: Any) -> ReactionResult:
        return self.react(incoming, x)

    def compile_fast_path(self, in_edges, in_positions, out_edges, out_positions):
        """Hook for the compiled engine (:mod:`repro.core.compiled`).

        Return an adapter ``(values, new_values, x) -> y`` that reads incoming
        labels straight from the flat label tuple ``values`` (via the
        precomputed ``in_positions``), writes this node's outgoing labels into
        the mutable list ``new_values`` at ``out_positions``, and returns the
        node's output — or ``None`` to fall back to the generic dict-based
        adapter.  An implementation must be observationally identical to
        :meth:`react` and may only skip the per-step out-edge validation when
        its outgoing edge set is statically known.
        """
        return None


class LambdaReaction(ReactionFunction):
    """Wrap a plain function ``fn(incoming, x) -> (outgoing, y)``."""

    def __init__(self, fn: Callable[[Mapping[Edge, Label], Any], ReactionResult]):
        self._fn = fn

    def react(self, incoming: Mapping[Edge, Label], x: Any) -> ReactionResult:
        return self._fn(incoming, x)


class UniformReaction(ReactionFunction):
    """Send the *same* label on every outgoing edge.

    This is the idiom used by every clique construction in the paper
    ("we define reaction functions that map the same outgoing label to all
    neighbors", Appendix B): the reaction computes one label and broadcasts it.
    """

    def __init__(
        self,
        out_edges: Sequence[Edge],
        fn: Callable[[Mapping[Edge, Label], Any], tuple[Label, Any]],
    ):
        self._out_edges = tuple(out_edges)
        self._fn = fn

    def react(self, incoming: Mapping[Edge, Label], x: Any) -> ReactionResult:
        label, output = self._fn(incoming, x)
        return {edge: label for edge in self._out_edges}, output

    def compile_fast_path(self, in_edges, in_positions, out_edges, out_positions):
        # Only safe when react() is ours and we provably label exactly the
        # node's outgoing edges (so the per-step check can be skipped).
        if type(self).react is not UniformReaction.react:
            return None
        if set(self._out_edges) != set(out_edges):
            return None
        fn = self._fn

        if len(in_edges) == 1 and len(out_positions) == 1:
            (e0,) = in_edges
            (p0,) = in_positions
            (q0,) = out_positions

            def adapter(values, new_values, x):
                label, y = fn({e0: values[p0]}, x)
                new_values[q0] = label
                return y

        elif len(in_edges) == 2:
            e0, e1 = in_edges
            p0, p1 = in_positions

            def adapter(values, new_values, x):
                label, y = fn({e0: values[p0], e1: values[p1]}, x)
                for q in out_positions:
                    new_values[q] = label
                return y

        else:

            def adapter(values, new_values, x):
                label, y = fn(
                    {e: values[p] for e, p in zip(in_edges, in_positions, strict=True)},
                    x,
                )
                for q in out_positions:
                    new_values[q] = label
                return y

        return adapter


class TabularReaction(ReactionFunction):
    """A reaction given explicitly as a lookup table.

    Keys are ``(incoming_labels, x)`` where ``incoming_labels`` is the tuple
    of labels in the fixed order of ``in_edges``; values are
    ``(outgoing_labels, y)`` with ``outgoing_labels`` in the order of
    ``out_edges``.  Tabular reactions are what the exhaustive protocol census
    (Theorem 5.10 experiments) enumerates.
    """

    def __init__(
        self,
        in_edges: Sequence[Edge],
        out_edges: Sequence[Edge],
        table: Mapping[tuple[tuple, Any], tuple[tuple, Any]],
    ):
        self.in_edges = tuple(in_edges)
        self.out_edges = tuple(out_edges)
        self.table = dict(table)
        for (_, __), (out_labels, _y) in self.table.items():
            if len(out_labels) != len(self.out_edges):
                raise ValidationError(
                    "table rows must assign a label to every outgoing edge"
                )

    def react(self, incoming: Mapping[Edge, Label], x: Any) -> ReactionResult:
        key = (tuple(incoming[edge] for edge in self.in_edges), x)
        try:
            out_labels, output = self.table[key]
        except KeyError as exc:
            raise ValidationError(f"tabular reaction has no row for {key!r}") from exc
        return dict(zip(self.out_edges, out_labels, strict=True)), output

    def compile_fast_path(self, in_edges, in_positions, out_edges, out_positions):
        if type(self).react is not TabularReaction.react:
            return None
        if set(self.in_edges) != set(in_edges) or set(self.out_edges) != set(out_edges):
            return None
        position_of = dict(zip(in_edges, in_positions, strict=True))
        key_positions = tuple(position_of[e] for e in self.in_edges)
        #: (flat-tuple position, row column) pairs for the scatter.
        scatter = tuple(
            (q, self.out_edges.index(e))
            for e, q in zip(out_edges, out_positions, strict=True)
        )
        table = self.table

        def adapter(values, new_values, x):
            key = (tuple(values[p] for p in key_positions), x)
            row = table.get(key)
            if row is None:
                raise ValidationError(f"tabular reaction has no row for {key!r}")
            out_labels, y = row
            for q, j in scatter:
                new_values[q] = out_labels[j]
            return y

        return adapter


class ConstantReaction(ReactionFunction):
    """Always emit the same labels and output, ignoring everything."""

    def __init__(self, out_edges: Sequence[Edge], label: Label, output: Any = 0):
        self._out_edges = tuple(out_edges)
        self._label = label
        self._output = output

    def react(self, incoming: Mapping[Edge, Label], x: Any) -> ReactionResult:
        return {edge: self._label for edge in self._out_edges}, self._output

    def compile_fast_path(self, in_edges, in_positions, out_edges, out_positions):
        if type(self).react is not ConstantReaction.react:
            return None
        if set(self._out_edges) != set(out_edges):
            return None
        label = self._label
        output = self._output

        def adapter(values, new_values, x):
            for q in out_positions:
                new_values[q] = label
            return output

        return adapter


class StatefulReactionFunction(ABC):
    """A reaction that may also read the node's own outgoing labels.

    This is the *stateful* protocol model of Theorem B.11; Theorem B.14's
    metanode compiler turns these back into stateless protocols.
    """

    @abstractmethod
    def react(
        self,
        incoming: Mapping[Edge, Label],
        own_outgoing: Mapping[Edge, Label],
        x: Any,
    ) -> ReactionResult: ...

    def __call__(
        self,
        incoming: Mapping[Edge, Label],
        own_outgoing: Mapping[Edge, Label],
        x: Any,
    ) -> ReactionResult:
        return self.react(incoming, own_outgoing, x)

    def compile_fast_path(self, in_edges, in_positions, out_edges, out_positions):
        """See :meth:`ReactionFunction.compile_fast_path`; stateful adapters
        additionally read the node's own outgoing labels from ``values``."""
        return None


class LambdaStatefulReaction(StatefulReactionFunction):
    """Wrap a plain function ``fn(incoming, own_outgoing, x) -> (outgoing, y)``."""

    def __init__(self, fn: Callable[..., ReactionResult]):
        self._fn = fn

    def react(
        self,
        incoming: Mapping[Edge, Label],
        own_outgoing: Mapping[Edge, Label],
        x: Any,
    ) -> ReactionResult:
        return self._fn(incoming, own_outgoing, x)
