"""Core model: labels, reactions, protocols, schedules, engine."""

from repro.core.batch import (
    BatchCompiledProtocol,
    BatchSimulator,
    LabelInterner,
    batch_compile,
)
from repro.core.compiled import CompiledProtocol, compile_protocol
from repro.core.configuration import Configuration, Labeling
from repro.core.convergence import RunOutcome, RunReport
from repro.core.engine import DEFAULT_MAX_STEPS, Simulator, synchronous_run
from repro.core.labels import (
    BitStrings,
    ExplicitLabelSpace,
    IntegerRange,
    Label,
    LabelSpace,
    ProductSpace,
    binary,
)
from repro.core.protocol import (
    Protocol,
    StatefulProtocol,
    StatelessProtocol,
    default_inputs,
)
from repro.core.reaction import (
    ConstantReaction,
    Edge,
    LambdaReaction,
    LambdaStatefulReaction,
    ReactionFunction,
    StatefulReactionFunction,
    TabularReaction,
    UniformReaction,
)
from repro.core.schedule import (
    ExplicitSchedule,
    LassoSchedule,
    RandomRFairSchedule,
    RoundRobinSchedule,
    Schedule,
    SynchronousSchedule,
    is_r_fair,
    minimal_fairness,
)

__all__ = [
    "BatchCompiledProtocol",
    "BatchSimulator",
    "BitStrings",
    "CompiledProtocol",
    "LabelInterner",
    "batch_compile",
    "Configuration",
    "compile_protocol",
    "ConstantReaction",
    "DEFAULT_MAX_STEPS",
    "Edge",
    "ExplicitLabelSpace",
    "ExplicitSchedule",
    "IntegerRange",
    "Label",
    "LabelSpace",
    "Labeling",
    "LambdaReaction",
    "LassoSchedule",
    "LambdaStatefulReaction",
    "ProductSpace",
    "Protocol",
    "RandomRFairSchedule",
    "ReactionFunction",
    "RoundRobinSchedule",
    "RunOutcome",
    "RunReport",
    "Schedule",
    "Simulator",
    "StatefulProtocol",
    "StatefulReactionFunction",
    "StatelessProtocol",
    "SynchronousSchedule",
    "TabularReaction",
    "UniformReaction",
    "binary",
    "default_inputs",
    "is_r_fair",
    "minimal_fairness",
    "synchronous_run",
]
