"""Randomized reaction functions (future-work item 4 of Section 7).

The paper asks what randomization buys for self-stabilization.  This module
provides a randomized-protocol model plus the classic answer on Example 1:
the adversarial (n-1)-fair schedule of Theorem 3.1 defeats every
*deterministic* tie-breaking, but a node that flips a coin between "join the
ones" and "stay zero" breaks the token rotation with probability 1/2 per
revolution — so the protocol converges against that schedule almost surely,
with geometrically decaying survival probability (measured in the tests).

Randomized reactions receive a ``random.Random`` alongside their inputs;
the simulator owns a seeded master generator, so runs stay reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.core.configuration import Configuration, Labeling
from repro.core.labels import LabelSpace, binary
from repro.core.schedule import Schedule
from repro.exceptions import ValidationError
from repro.graphs.standard import clique
from repro.graphs.topology import Topology

#: reaction(incoming, x, rng) -> (outgoing, y)
RandomizedReaction = Callable[[Mapping, Any, random.Random], tuple[Mapping, Any]]


class RandomizedProtocol:
    """A protocol whose reactions may flip coins."""

    def __init__(
        self,
        topology: Topology,
        label_space: LabelSpace,
        reactions: Sequence[RandomizedReaction],
        name: str = "",
    ):
        if len(reactions) != topology.n:
            raise ValidationError(f"need {topology.n} reactions")
        self.topology = topology
        self.label_space = label_space
        self.reactions = tuple(reactions)
        self.name = name or "randomized-protocol"

    @property
    def n(self) -> int:
        return self.topology.n


class RandomizedSimulator:
    """Seeded execution of randomized protocols."""

    def __init__(self, protocol: RandomizedProtocol, inputs: Sequence, seed: int = 0):
        if len(inputs) != protocol.n:
            raise ValidationError(f"need {protocol.n} inputs")
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self._rng = random.Random(seed)

    def step(self, config: Configuration, active) -> Configuration:
        labeling = config.labeling
        updates: dict = {}
        outputs = list(config.outputs)
        for i in active:
            incoming = labeling.incoming(i)
            outgoing, y = self.protocol.reactions[i](
                incoming, self.inputs[i], self._rng
            )
            updates.update(outgoing)
            outputs[i] = y
        return Configuration(labeling.replace(updates), tuple(outputs))

    def run_until_label_constant(
        self,
        labeling: Labeling,
        schedule: Schedule,
        max_steps: int,
        quiet_window: int,
    ) -> tuple[bool, int]:
        """Run until the labeling stays constant for ``quiet_window`` steps.

        Returns (converged_within_budget, steps_of_last_change + 1).
        Randomized runs cannot be certified by fixed-point witnessing (a coin
        may flip later), so this is a statistical criterion — exactly what
        the future-work question is about.
        """
        config = Configuration(labeling, (None,) * self.protocol.n)
        last_change = 0
        for t in range(max_steps):
            nxt = self.step(config, schedule.active(t))
            if nxt.labeling != config.labeling:
                last_change = t + 1
            config = nxt
            if t + 1 - last_change >= quiet_window:
                return True, last_change
        return False, last_change


def randomized_example1(n: int, join_probability: float = 0.5) -> RandomizedProtocol:
    """Example 1 with randomized tie-breaking.

    A node seeing at least one 1 joins the ones only with probability
    ``join_probability`` (instead of always) — which breaks the adversarial
    token rotation of Theorem 3.1's tight schedule.  Both all-0 and all-1
    remain absorbing.
    """
    if n < 3:
        raise ValidationError("Example 1 needs n >= 3")
    if not 0 < join_probability <= 1:
        raise ValidationError("join probability must be in (0, 1]")
    topology = clique(n)

    def make_reaction(i: int):
        def react(incoming, _x, rng):
            sees_one = any(value == 1 for value in incoming.values())
            all_ones = all(value == 1 for value in incoming.values())
            if all_ones:
                bit = 1  # keep all-1 absorbing
            elif sees_one:
                bit = 1 if rng.random() < join_probability else 0
            else:
                bit = 0
            labels = {edge: bit for edge in topology.out_edges(i)}
            return labels, bit

        return react

    return RandomizedProtocol(
        topology,
        binary(),
        [make_reaction(i) for i in range(n)],
        name=f"randomized-example1({n})",
    )
