"""Almost-stateless computation (future-work item 2 of Section 7).

The paper asks: what does "computation with a constant number of internal
memory bits" buy over pure statelessness?  This module makes the question
executable:

* :class:`MemoryProtocol` — the *almost-stateless* model: a reaction
  additionally reads and writes a private memory value drawn from a finite
  ``memory_space``.  (A stateful protocol in the sense of Appendix B reads
  its own outgoing labels; memory is the cleaner abstraction of the same
  power.)
* :func:`compile_to_stateless` — memory is *compilable away* at the cost of
  one helper node per memory-carrying node and one extra label field: the
  node keeps its memory in the label it sends to a dedicated **mirror**
  node, which echoes it back — the ping-pong idiom of Theorem 5.4's gate
  memory, promoted to a general-purpose compiler.  The compiled protocol is
  strictly stateless and, under schedules that activate a node together with
  its mirror, reproduces the memory protocol step for step (machine-checked
  in the tests).

This both answers the paper's question for constant memory ("no more power,
up to a linear blowup in nodes and one label field") and documents the
construction's cost model.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.core.labels import ExplicitLabelSpace, LabelSpace, ProductSpace
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import Edge, LambdaReaction
from repro.core.schedule import Schedule
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology

#: reaction(incoming_labels, memory, x) -> (outgoing_labels, new_memory, y)
MemoryReaction = Callable[
    [Mapping[Edge, Any], Any, Any], tuple[Mapping[Edge, Any], Any, Any]
]


class MemoryProtocol:
    """The almost-stateless model: reactions carry private bounded memory."""

    def __init__(
        self,
        topology: Topology,
        label_space: LabelSpace,
        memory_space: LabelSpace,
        reactions: Sequence[MemoryReaction],
        name: str = "",
    ):
        if len(reactions) != topology.n:
            raise ValidationError(f"need {topology.n} reactions")
        self.topology = topology
        self.label_space = label_space
        self.memory_space = memory_space
        self.reactions = tuple(reactions)
        self.name = name or "memory-protocol"

    @property
    def n(self) -> int:
        return self.topology.n

    def run_trace(
        self, labeling_values, memories, inputs, schedule: Schedule, steps: int
    ):
        """Reference semantics: direct execution with explicit memory."""
        values = dict(zip(self.topology.edges, labeling_values, strict=True))
        memories = list(memories)
        trace = [(dict(values), tuple(memories))]
        for t in range(steps):
            new_values = dict(values)
            for i in schedule.active(t):
                incoming = {e: values[e] for e in self.topology.in_edges(i)}
                outgoing, memory, _y = self.reactions[i](
                    incoming, memories[i], inputs[i]
                )
                for edge, label in outgoing.items():
                    new_values[edge] = label
                memories[i] = memory
            values = new_values
            trace.append((dict(values), tuple(memories)))
        return trace


def mirror_topology(topology: Topology) -> Topology:
    """Original nodes 0..n-1 plus mirror node ``n + i`` for each node i.

    Mirrors connect bidirectionally to their principal only.
    """
    n = topology.n
    edges = list(topology.edges)
    for i in range(n):
        edges.append((i, n + i))
        edges.append((n + i, i))
    return Topology(2 * n, edges, name=f"mirrored({topology.name})")


def compile_to_stateless(protocol: MemoryProtocol) -> StatelessProtocol:
    """Compile an almost-stateless protocol to a pure stateless one.

    Labels become ``(payload, memory)`` pairs; a node writes its new memory
    into every outgoing label, its mirror echoes the memory component back,
    and the node reads its "own" memory from the mirror's echo.  Mirror
    nodes output ``None``; principals output the original protocol's output.

    Faithful simulation is **two-phase**: each source activation set lifts to
    a principal phase followed by a mirror phase
    (:func:`mirror_schedule_steps`), so the echo carrying the new memory is
    back before the next principal activation.  One source step therefore
    costs two compiled steps — the compiler's price alongside the doubled
    node count and the extra label field.
    """
    source = protocol.topology
    n = source.n
    big = mirror_topology(source)
    label_space = ProductSpace(
        (protocol.label_space, protocol.memory_space), name="payload x memory"
    )

    def make_principal(i: int):
        reaction = protocol.reactions[i]

        def react(incoming, x):
            mirror_edge = (n + i, i)
            _, memory = incoming[mirror_edge]
            source_incoming = {
                e: incoming[e][0] for e in source.in_edges(i)
            }
            outgoing, new_memory, y = reaction(source_incoming, memory, x)
            labels = {
                edge: (outgoing[edge], new_memory) for edge in source.out_edges(i)
            }
            # The mirror edge only transports memory; its payload component
            # reuses an arbitrary valid label (the first outgoing one).
            first_payload = outgoing[source.out_edges(i)[0]]
            labels[(i, n + i)] = (first_payload, new_memory)
            return labels, y

        return LambdaReaction(react)

    def make_mirror(i: int):
        def react(incoming, _x):
            label = incoming[(i, n + i)]
            return {(n + i, i): label}, None

        return LambdaReaction(react)

    reactions = [make_principal(i) for i in range(n)] + [
        make_mirror(i) for i in range(n)
    ]
    return StatelessProtocol(
        big, label_space, reactions, name=f"stateless({protocol.name})"
    )


def mirror_schedule_steps(steps: Sequence, n: int) -> list[set[int]]:
    """Two-phase lift: each source step becomes (principals, then mirrors)."""
    lifted: list[set[int]] = []
    for step in steps:
        lifted.append(set(step))
        lifted.append({n + i for i in step})
    return lifted


def expand_memory_inputs(inputs: Sequence) -> tuple:
    """Inputs for the compiled protocol: mirrors take input 0."""
    return tuple(inputs) + (0,) * len(inputs)


def counter_with_memory(topology_n: int, modulus: int) -> MemoryProtocol:
    """A one-node-memory demonstration: each node counts its own activations
    mod ``modulus`` in private memory and broadcasts the count.

    Statelessly impossible on the unidirectional ring without extra label
    structure; with one memory cell it is trivial — the gap the paper's
    future-work question points at.
    """
    from repro.graphs.standard import unidirectional_ring

    topology = unidirectional_ring(topology_n)
    space = ExplicitLabelSpace(tuple(range(modulus)), name=f"count({modulus})")

    def make_reaction(i: int):
        def react(_incoming, memory, _x):
            new_memory = (memory + 1) % modulus
            outgoing = {edge: new_memory for edge in topology.out_edges(i)}
            return outgoing, new_memory, new_memory

        return react

    return MemoryProtocol(
        topology,
        space,
        space,
        [make_reaction(i) for i in range(topology_n)],
        name=f"activation-counter({topology_n},{modulus})",
    )
