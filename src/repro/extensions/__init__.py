"""Executable versions of the paper's future-work directions (Section 7)."""

from repro.extensions.almost_stateless import (
    MemoryProtocol,
    compile_to_stateless,
    counter_with_memory,
    expand_memory_inputs,
    mirror_schedule_steps,
    mirror_topology,
)
from repro.extensions.randomized import (
    RandomizedProtocol,
    RandomizedSimulator,
    randomized_example1,
)

__all__ = [
    "MemoryProtocol",
    "RandomizedProtocol",
    "RandomizedSimulator",
    "compile_to_stateless",
    "counter_with_memory",
    "expand_memory_inputs",
    "mirror_schedule_steps",
    "mirror_topology",
    "randomized_example1",
]
