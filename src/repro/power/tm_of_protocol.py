"""Simulating unidirectional-ring protocols in logarithmic space
(Theorem 5.2, the other direction: ``OS^u_log subset L/poly``).

The proof's key observation: on the unidirectional ring, run from a *uniform*
initial labeling under the synchronous schedule, the diagonal sequence

    l_t = outgoing label of node (t mod n) at time t

satisfies the one-dimensional recurrence ``l_t = delta_{t mod n}(l_{t-1},
x_{t mod n})`` — so a machine holding a *single* label (plus two counters)
can compute any node's output at any time.  Since the protocol
output-stabilizes within ``n |Sigma|`` rounds (Lemma C.2(1)), running the
recurrence for ``n |Sigma|`` iterations lands on the converged output.

:func:`simulate_unidirectional` is that machine, word for word; it uses
O(log) working state (one label, one node index, one step counter) and is
differentially tested against the full engine.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.labels import Label
from repro.core.protocol import StatelessProtocol
from repro.exceptions import ValidationError


def _check_unidirectional_ring(protocol: StatelessProtocol) -> int:
    topology = protocol.topology
    n = topology.n
    for i in range(n):
        if topology.out_neighbors(i) != ((i + 1) % n,):
            raise ValidationError("protocol does not run on the unidirectional ring")
    return n


def simulate_unidirectional(
    protocol: StatelessProtocol,
    inputs: Sequence[Any],
    initial_label: Label,
    steps: int | None = None,
) -> Any:
    """The paper's logspace-style simulation loop.

    Equivalent to running the protocol synchronously from the uniform
    ``initial_label`` labeling for ``steps`` rounds (default ``n |Sigma|``)
    and reporting the output of node ``steps mod n`` — which, past
    convergence, is every node's output.
    """
    n = _check_unidirectional_ring(protocol)
    if len(inputs) != n:
        raise ValidationError(f"need {n} inputs")
    if steps is None:
        steps = n * protocol.label_space.size
    label = initial_label
    output = None
    j = 0  # the node whose reaction is applied next
    for _ in range(steps):
        in_edge = ((j - 1) % n, j)
        out_edge = (j, (j + 1) % n)
        outgoing, output = protocol.reaction(j)({in_edge: label}, inputs[j])
        label = outgoing[out_edge]
        j = (j + 1) % n
    return output


def diagonal_labels(
    protocol: StatelessProtocol,
    inputs: Sequence[Any],
    initial_label: Label,
    steps: int,
) -> list[Label]:
    """The sequence l_1 .. l_steps of diagonal labels (for testing)."""
    n = _check_unidirectional_ring(protocol)
    label = initial_label
    labels = []
    j = 0
    for _ in range(steps):
        in_edge = ((j - 1) % n, j)
        out_edge = (j, (j + 1) % n)
        outgoing, _ = protocol.reaction(j)({in_edge: label}, inputs[j])
        label = outgoing[out_edge]
        labels.append(label)
        j = (j + 1) % n
    return labels
