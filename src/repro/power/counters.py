"""Self-stabilizing synchronous counters on odd bidirectional rings.

Claims 5.5 and 5.6 of the paper: on every odd-sized bidirectional ring there
are stateless protocols that, regardless of the initial labeling, converge to
a regime where **all nodes simultaneously hold the same counter value**, which
then cycles ``0, 1, ..., D-1`` forever.  The counter is the clock that drives
the circuit simulation of Theorem 5.4.

Construction (paper indices shifted to 0-based; "clockwise" = increasing
index; every node broadcasts the same label in both directions):

* **2-counter** (Claim 5.5) — labels ``(b1, b2)``:
  node 0 negates node 1's ``b1`` and copies node n-1's ``b1`` into ``b2``;
  node n-1 XORs the ``b1`` of nodes 0 and n-2; middle nodes copy ``b1`` from
  their predecessor and copy (j even) or negate (j odd) its ``b2``.  Node 0's
  ``b1`` walks the 4-cycle 00,10,11,01, so its square wave XORed with its own
  odd shift (n odd!) makes node n-1 emit an alternating bit, which the chain
  distributes: after O(n) rounds every node's ``b2`` alternates every step
  with the spatial pattern ``b2_j(t) = phi(t) XOR s_j``, ``s_j = floor(j/2)
  mod 2`` (verified empirically and frozen in the tests).

* **D-counter** (Claim 5.6) — labels ``(b1, b2, z, g, c)``:
  the ``z`` field increments clockwise (``z_j(t+1) = z_{j-1}(t) + 1 mod D``)
  except that node 0 reads node 1, so the pair (0,1) forms the two-node
  incrementing core of the paper's n=2 intuition.  In the stabilized regime
  ``z_j(t) = A + t`` when ``t = j (mod 2)`` and ``B + t`` otherwise: two
  interleaved arithmetic sequences.  Node 0 sees both sequences at once (its
  neighbors 1 and n-1 have opposite position parity — odd n again) and
  publishes the gap ``g`` which converts one sequence into the other; the
  2-counter phase bit tells each node which sequence its ``z`` currently
  rides, so every node simultaneously computes ``c = C + t (mod D)``.

  Two global sign conventions (which subsequence to count on, and the
  phase-bit polarity) are free; we fix SIGMA = 1, KAPPA = 0 — both
  consistent choices were confirmed by calibration, see DESIGN.md.

Label complexity: 2 bits for the 2-counter; ``2 + 3*log2(D)`` bits for the
D-counter (the paper's figure).  Round complexity: O(n) to stabilize
(paper: 4n); the tests measure it exactly.

These protocols never *label*-stabilize — their labels are supposed to cycle
forever; the stabilization statement is about reaching the synchronized
counting regime.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.labels import BitStrings, ExplicitLabelSpace, IntegerRange, ProductSpace
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import bidirectional_ring

#: Frozen calibration constants (see module docstring and DESIGN.md).
SIGMA = 1
KAPPA = 0


class CounterFields(NamedTuple):
    """The counter-carrying part of a label."""

    b1: int
    b2: int
    z: int
    g: int


def spatial_phase(j: int) -> int:
    """The stabilized spatial pattern of the b2 field: s_j = floor(j/2) mod 2."""
    return (j // 2) % 2


class RingCounterSpec:
    """Field-update rules for the D-counter, reusable by the circuit compiler.

    All methods are pure: they map the *previous* labels of the two ring
    neighbors to the node's new counter fields and current counter value,
    which is exactly the information a stateless reaction has.
    """

    def __init__(self, n: int, modulus: int, sigma: int = SIGMA, kappa: int = KAPPA):
        if n < 3 or n % 2 == 0:
            raise ValidationError("the counter needs an odd ring of size >= 3")
        if modulus < 2:
            raise ValidationError("counter modulus must be >= 2")
        if sigma not in (0, 1) or kappa not in (0, 1):
            raise ValidationError("calibration constants are bits")
        self.n = n
        self.modulus = modulus
        self.sigma = sigma
        self.kappa = kappa

    def update(
        self, j: int, pred: CounterFields, succ: CounterFields
    ) -> CounterFields:
        """New counter fields of node j.

        ``pred`` is the previous label of node ``j-1 mod n`` (counterclockwise
        neighbor), ``succ`` of node ``j+1 mod n``.
        """
        n, modulus = self.n, self.modulus
        if j == 0:
            b1 = 1 - succ.b1  # negate node 1's b1
            b2 = pred.b1  # copy node n-1's b1
            z = (succ.z + 1) % modulus  # read node 1 (two-node core)
            phase = pred.b2 ^ spatial_phase(n - 1)
            if phase == self.sigma:
                g = (succ.z - pred.z) % modulus
            else:
                g = (pred.z - succ.z) % modulus
        elif j == n - 1:
            b1 = succ.b1 ^ pred.b1  # XOR of nodes 0 and n-2
            b2 = pred.b2
            z = (pred.z + 1) % modulus
            g = pred.g
        else:
            b1 = pred.b1
            b2 = (1 - pred.b2) if j % 2 == 1 else pred.b2
            z = (pred.z + 1) % modulus
            g = pred.g
        return CounterFields(b1, b2, z, g)

    def counter_value(self, j: int, pred: CounterFields, new: CounterFields) -> int:
        """The node's counter value at this activation.

        In the stabilized regime every node computes the same value, and it
        increments by 1 (mod D) at every synchronous step.
        """
        predicate = (
            pred.b2
            ^ spatial_phase((j - 1) % self.n)
            ^ ((j + 1) % 2)
            ^ self.kappa
        )
        if predicate:
            return (new.z + new.g) % self.modulus
        return new.z

    def stabilization_bound(self) -> int:
        """The paper's R_n = 4n bound for reaching the counting regime."""
        return 4 * self.n


def two_counter_protocol(n: int) -> StatelessProtocol:
    """Claim 5.5: the 2-counter on the odd bidirectional n-ring.

    Each node outputs its freshly computed ``b2`` bit; once stabilized,
    outputs alternate every round with the fixed spatial pattern
    ``phi(t) XOR s_j``.
    """
    if n < 3 or n % 2 == 0:
        raise ValidationError("the 2-counter needs an odd ring of size >= 3")
    topology = bidirectional_ring(n)

    def make_reaction(j: int):
        pred_edge = ((j - 1) % n, j)
        succ_edge = ((j + 1) % n, j)

        def react(incoming, _x):
            pred = CounterFields(*incoming[pred_edge], 0, 0)
            succ = CounterFields(*incoming[succ_edge], 0, 0)
            spec = RingCounterSpec(n, 2)
            fields = spec.update(j, pred, succ)
            return (fields.b1, fields.b2), fields.b2

        return UniformReaction(topology.out_edges(j), react)

    return StatelessProtocol(
        topology,
        BitStrings(2),
        [make_reaction(j) for j in range(n)],
        name=f"2-counter({n})",
    )


def d_counter_protocol(n: int, modulus: int) -> StatelessProtocol:
    """Claim 5.6: the D-counter on the odd bidirectional n-ring.

    Labels are ``(b1, b2, z, g, c)`` — the paper's layout, with label
    complexity ``2 + 3*log2(D)``.  Each node outputs its counter value; once
    stabilized, all outputs agree and increment by 1 mod D every round.
    """
    spec = RingCounterSpec(n, modulus)
    topology = bidirectional_ring(n)
    label_space = ProductSpace(
        (
            ExplicitLabelSpace((0, 1), name="b1"),
            ExplicitLabelSpace((0, 1), name="b2"),
            IntegerRange(modulus, name="z"),
            IntegerRange(modulus, name="g"),
            IntegerRange(modulus, name="c"),
        ),
        name=f"d-counter({modulus})",
    )

    def make_reaction(j: int):
        pred_edge = ((j - 1) % n, j)
        succ_edge = ((j + 1) % n, j)

        def react(incoming, _x):
            pred = CounterFields(*incoming[pred_edge][:4])
            succ = CounterFields(*incoming[succ_edge][:4])
            fields = spec.update(j, pred, succ)
            value = spec.counter_value(j, pred, fields)
            return (*fields, value), value

        return UniformReaction(topology.out_edges(j), react)

    return StatelessProtocol(
        topology,
        label_space,
        [make_reaction(j) for j in range(n)],
        name=f"d-counter({n},{modulus})",
    )


def d_counter_label_complexity(modulus: int) -> float:
    """The paper's L_n = 2 + 3 log2(D)."""
    import math

    return 2 + 3 * math.log2(modulus)
