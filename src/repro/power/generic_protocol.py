"""The generic computation protocol of Proposition 2.3.

For any strongly connected digraph ``G`` and any Boolean function
``f : {0,1}^n -> {0,1}`` there is a *label-stabilizing* protocol computing f
with label complexity ``L_n = n + 1`` and round complexity ``R_n <= 2n``.

Construction (Appendix A): fix two spanning trees rooted at node 0 — ``T1``
with a path from the root to every node (broadcast) and ``T2`` with a path
from every node to the root (convergecast).  Labels are pairs ``(z, b)``:

* ``z in {0,1}^n`` accumulates input bits: node i sends, toward its T2
  parent, ``w_i OR (bitwise-OR of the z's received from its T2 children)``,
  where ``w_i`` is all-zeros except coordinate i which carries ``x_i``.
  Garbage in z flushes bottom-up: after depth(T2) synchronous rounds the
  root's children deliver the exact input vector.
* ``b`` carries the answer: the root evaluates ``f`` on the assembled vector
  and floods the bit down ``T1``; every node outputs the ``b`` received from
  its T1 parent.

Edges in neither tree carry the all-zero label, so the final labeling is a
global fixed point: the protocol is label-stabilizing, not merely
output-stabilizing.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.labels import BitStrings, ProductSpace, binary
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import LambdaReaction
from repro.graphs.spanning import broadcast_tree, convergecast_tree
from repro.graphs.topology import Topology

BooleanFunction = Callable[[Sequence[int]], int]


def generic_protocol(
    topology: Topology, f: BooleanFunction, root: int = 0
) -> StatelessProtocol:
    """Build the Proposition 2.3 protocol for ``f`` on ``topology``."""
    n = topology.n
    t1 = broadcast_tree(topology, root)  # root -> everyone
    t2 = convergecast_tree(topology, root)  # everyone -> root
    zeros = (0,) * n
    label_space = ProductSpace((BitStrings(n), binary()), name=f"bits^{n} x bit")

    def or_vectors(vectors):
        result = list(zeros)
        for vector in vectors:
            for coordinate, bit in enumerate(vector):
                if bit:
                    result[coordinate] = 1
        return tuple(result)

    def gather(i, incoming, x):
        """w_i OR the z-components received from i's T2 children."""
        child_vectors = []
        for child in t2.children[i]:
            z, _ = incoming[(child, i)]
            child_vectors.append(z)
        combined = list(or_vectors(child_vectors))
        if x:
            combined[i] = 1
        return tuple(combined)

    def make_root_reaction():
        def react(incoming, x):
            answer = f(gather(root, incoming, x)) & 1
            outgoing = {}
            for edge in topology.out_edges(root):
                _, j = edge
                if j in t1.children[root]:
                    outgoing[edge] = (zeros, answer)
                else:
                    outgoing[edge] = (zeros, 0)
            return outgoing, answer

        return LambdaReaction(react)

    def make_reaction(i):
        parent1 = t1.parent[i]  # receives the answer bit from this node
        parent2 = t2.parent[i]  # forwards the gathered vector to this node

        def react(incoming, x):
            _, answer = incoming[(parent1, i)]
            vector = gather(i, incoming, x)
            outgoing = {}
            for edge in topology.out_edges(i):
                _, j = edge
                to_child1 = j in t1.children[i]
                if j == parent2 and to_child1:
                    outgoing[edge] = (vector, answer)
                elif to_child1:
                    outgoing[edge] = (zeros, answer)
                elif j == parent2:
                    outgoing[edge] = (vector, 0)
                else:
                    outgoing[edge] = (zeros, 0)
            return outgoing, answer

        return LambdaReaction(react)

    reactions = [
        make_root_reaction() if i == root else make_reaction(i) for i in range(n)
    ]
    return StatelessProtocol(
        topology, label_space, reactions, name=f"generic-f on {topology.name}"
    )


def generic_round_bound(n: int) -> int:
    """The paper's R_n <= 2n for the generic protocol."""
    return 2 * n


def label_complexity(n: int) -> int:
    """The paper's L_n = n + 1 for the generic protocol."""
    return n + 1
