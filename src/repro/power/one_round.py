"""One-round computation on highly connected topologies (Section 5, opening).

"Consider the clique topology K_n.  Note that every Boolean function can be
computed using a 1-bit label and within one round."  Each node broadcasts its
input bit; after one synchronous round every node sees the full input vector
(its own bit plus n-1 incoming labels) and evaluates f directly.

This is the baseline against which the ring results of Sections 5 and 6 are
interesting: the *same* functions need linear labels on the ring (equality,
Corollary 6.3) but only one bit here.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.labels import binary
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import clique

BooleanFunction = Callable[[Sequence[int]], int]


def one_round_clique_protocol(n: int, f: BooleanFunction) -> StatelessProtocol:
    """The 1-bit-label, 1-round protocol computing ``f`` on K_n.

    Node i broadcasts ``x_i`` and outputs ``f`` applied to the incoming bits
    with its own input spliced in at position i.  The labeling is stable
    after every node has been activated once, and outputs are correct from
    then on — under the synchronous schedule that is one round.
    """
    if n < 2:
        raise ValidationError("need at least two nodes")
    topology = clique(n)

    def make_reaction(i: int):
        def react(incoming, x):
            assembled = []
            for j in range(n):
                if j == i:
                    assembled.append(x & 1)
                else:
                    assembled.append(incoming[(j, i)])
            return x & 1, f(tuple(assembled)) & 1

        return UniformReaction(topology.out_edges(i), react)

    return StatelessProtocol(
        topology,
        binary(),
        [make_reaction(i) for i in range(n)],
        name=f"one-round-clique({n})",
    )
