"""Simulating machines on the unidirectional ring (Theorem 5.2, one direction).

``L/poly subset OS^u_log``: any logspace Turing machine with advice can be
simulated by a stateless protocol on the unidirectional n-ring with labels of
length logarithmic in the number of machine configurations.

The paper's construction: labels are ``(z, b, c, o)`` where ``z`` is a machine
configuration, ``b`` an input bit, ``c`` an epoch counter and ``o`` the
current answer.  Node 0 runs n interleaved simulations: every label
circulating the ring is one simulation token; as a token passes node i, node
i overwrites ``b`` with ``x_i`` whenever ``z``'s input head sits on position
i, so by the time the token returns to node 0 it carries the bit the machine
is about to read, and node 0 applies the transition ``pi(z, b)``.  Every
``|Z|`` transitions node 0 publishes the accept bit ``F(z)`` in ``o`` and
restarts the token from the initial configuration — which is what makes the
protocol self-stabilizing: arbitrary junk tokens are flushed within one epoch.

The same idea simulates **branching programs** directly (polynomial-size BPs
are an equivalent presentation of L/poly): the token carries a BP node id;
ring node i advances the token through every BP node that queries ``x_i``.

Both protocols *output*-stabilize (the labels cycle forever by design).
"""

from __future__ import annotations

from repro.core.labels import (
    ExplicitLabelSpace,
    IntegerRange,
    ProductSpace,
    binary,
)
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import unidirectional_ring
from repro.substrates.branching_programs import BranchingProgram
from repro.substrates.turing import ConfigurationGraph


def machine_ring_protocol(graph: ConfigurationGraph) -> StatelessProtocol:
    """The Theorem 5.2 protocol simulating ``graph.machine`` on input length n.

    The returned protocol runs on the unidirectional ring of ``graph.n``
    nodes; with input ``x`` it output-stabilizes to ``M(x)`` at every node.
    """
    n = graph.n
    if n < 2:
        raise ValidationError("the ring simulation needs n >= 2")
    topology = unidirectional_ring(n)
    epoch = graph.size  # number of pi-applications per simulation epoch
    label_space = ProductSpace(
        (
            ExplicitLabelSpace(tuple(graph.configs), name="Z"),
            binary(),
            IntegerRange(epoch + 1, name="epoch"),
            binary(),
        ),
        name=f"tm-ring({graph.machine.name})",
    )

    def head_reaction(incoming, x):
        ((z, b, c, o),) = incoming.values()
        if c < epoch:
            label = (graph.pi(z, b), x & 1, c + 1, o)
            return label, o
        answer = 1 if graph.accepting(z) else 0
        return (graph.initial, x & 1, 0, answer), answer

    def make_relay(i: int):
        def relay(incoming, x):
            ((z, b, c, o),) = incoming.values()
            if graph.input_head(z) == i:
                return (z, x & 1, c, o), o
            return (z, b, c, o), o

        return relay

    reactions = [
        UniformReaction(
            topology.out_edges(i), head_reaction if i == 0 else make_relay(i)
        )
        for i in range(n)
    ]
    return StatelessProtocol(
        topology,
        label_space,
        reactions,
        name=f"ring-sim({graph.machine.name}, n={n})",
    )


def machine_ring_round_bound(graph: ConfigurationGraph) -> int:
    """Convergence bound: one junk epoch + one honest epoch + propagation.

    Every token is reset within ``(|Z|+1) n`` steps, completes an honest
    epoch in another ``(|Z|+1) n``, and the answer reaches all nodes within n
    more steps.
    """
    return (2 * (graph.size + 1) + 1) * graph.n


def bp_ring_protocol(bp: BranchingProgram) -> StatelessProtocol:
    """A stateless unidirectional-ring protocol evaluating a branching program.

    Labels are ``(node_id, lap, o)``: the token's current BP node, an epoch
    lap counter, and the published answer.  Ring node i advances the token
    through every BP node querying ``x_i``; node 0 additionally counts laps
    and restarts the token every ``bp.size + 1`` laps (a lap always either
    finishes at a sink or advances the token at the node holding its queried
    variable, so ``size + 1`` laps complete any honest evaluation).
    """
    n = bp.n_inputs
    if n < 2:
        raise ValidationError("the ring simulation needs n >= 2")
    topology = unidirectional_ring(n)
    laps = bp.size + 1
    label_space = ProductSpace(
        (
            IntegerRange(bp.size + 2, name="bp-node"),
            IntegerRange(laps + 1, name="lap"),
            binary(),
        ),
        name="bp-ring",
    )

    def advance(node_id: int, i: int, bit: int) -> int:
        while not bp.is_sink(node_id) and bp.nodes[node_id].var == i:
            node_id = bp.step(node_id, bit)
        return node_id

    def head_reaction(incoming, x):
        ((node_id, lap, o),) = incoming.values()
        node_id = advance(node_id, 0, x & 1)
        if lap < laps:
            return (node_id, lap + 1, o), o
        answer = bp.sink_value(node_id) if bp.is_sink(node_id) else 0
        return (bp.root, 0, answer), answer

    def make_relay(i: int):
        def relay(incoming, x):
            ((node_id, lap, o),) = incoming.values()
            return (advance(node_id, i, x & 1), lap, o), o

        return relay

    reactions = [
        UniformReaction(
            topology.out_edges(i), head_reaction if i == 0 else make_relay(i)
        )
        for i in range(n)
    ]
    return StatelessProtocol(
        topology, label_space, reactions, name=f"bp-ring(size={bp.size}, n={n})"
    )


def bp_ring_round_bound(bp: BranchingProgram) -> int:
    """Junk epoch + honest epoch + propagation, in ring steps."""
    return (2 * (bp.size + 2) + 1) * bp.n_inputs
