"""Computational power of stateless protocols (Sections 2 and 5)."""

from repro.power.circuit_of_protocol import unroll_protocol
from repro.power.counters import (
    CounterFields,
    RingCounterSpec,
    d_counter_label_complexity,
    d_counter_protocol,
    spatial_phase,
    two_counter_protocol,
)
from repro.power.counting_bound import (
    counting_lower_bound,
    functions_count,
    protocol_count_upper_bound,
    smallest_sufficient_label_bits,
    two_ring_census,
)
from repro.power.generic_protocol import generic_protocol, generic_round_bound
from repro.power.one_round import one_round_clique_protocol
from repro.power.ring_circuit import (
    RingCircuitLayout,
    circuit_ring_protocol,
    ring_inputs,
    trivial_flood_protocol,
)
from repro.power.ring_tm import (
    bp_ring_protocol,
    bp_ring_round_bound,
    machine_ring_protocol,
    machine_ring_round_bound,
)
from repro.power.tm_of_protocol import diagonal_labels, simulate_unidirectional
from repro.power.unidirectional import (
    unidirectional_round_bound,
    worst_case_protocol,
    worst_case_round_complexity,
)

__all__ = [
    "CounterFields",
    "RingCircuitLayout",
    "RingCounterSpec",
    "bp_ring_protocol",
    "bp_ring_round_bound",
    "circuit_ring_protocol",
    "counting_lower_bound",
    "d_counter_label_complexity",
    "d_counter_protocol",
    "diagonal_labels",
    "functions_count",
    "generic_protocol",
    "machine_ring_protocol",
    "machine_ring_round_bound",
    "one_round_clique_protocol",
    "protocol_count_upper_bound",
    "ring_inputs",
    "generic_round_bound",
    "unidirectional_round_bound",
    "simulate_unidirectional",
    "smallest_sufficient_label_bits",
    "spatial_phase",
    "trivial_flood_protocol",
    "two_counter_protocol",
    "two_ring_census",
    "unroll_protocol",
    "worst_case_protocol",
    "worst_case_round_complexity",
]
