"""Simulating Boolean circuits on the bidirectional ring (Theorem 5.4).

``P/poly subset OS~^b_log``: every polynomial-size circuit is evaluated by a
stateless protocol on a (polynomially larger, odd) bidirectional ring with
logarithmic labels and polynomial round complexity.

Layout.  For a fan-in-2 circuit with inputs ``x_0..x_{n-1}`` and ``m`` real
(non-INPUT, non-CONST) gates in topological order, the ring has

    N = n + 2m   nodes (plus one idle padding node if that is even):
    ring node i < n        holds input x_i;
    ring node n + 2q       computes gate q        ("compute node" p_q);
    ring node n + 2q + 1   remembers gate q's value ("memory node").

Clock.  All nodes run the Claim 5.6 D-counter with ``D = m * P``,
``P = N + 4``; once the counter synchronizes, counter value ``c`` decomposes
as ``c = q * P + phase``: the ring is globally inside *interval* q, dedicated
to computing gate q.

Data movement inside interval q (everything flows clockwise, one hop/step):

* the *injector* of each non-constant operand (an input node, or the memory
  node of an earlier gate) writes the operand's value into the ``i1``/``i2``
  stream fields for two consecutive phases; injection phases are staggered by
  the clockwise distances so that both operands arrive at the compute node
  **together**, at phases ``{d_far, d_far + 1}``;
* at exactly those phases the compute node latches ``v := op(i1, i2)``
  (constants folded at compile time); writing in two consecutive steps makes
  both directions of the compute/memory pair carry the value — the paper's
  ping-pong memory idiom — after which the pair broadcasts the gate value
  forever;
* the memory node of the circuit's output gate continuously copies its held
  value into the ``o`` field, which floods clockwise; every node outputs
  ``o``.

The paper packs interval q into ``d_q + 1`` phases; we use the uniform
``P = N + 4`` (same asymptotics, simpler invariants — documented in
DESIGN.md).  Labels are ``(b1, b2, z, g, i1, i2, v, o)``:
``2 + 2 log2(D) + 4`` bits, i.e. O(log) in the circuit size.  Round
complexity: counter stabilization (4N) + at most two counter cycles (2D) +
one output lap (N).

Self-stabilization: every cycle re-injects, re-latches and re-floods, so any
garbage laid down while the counter was converging is overwritten during the
first synchronized cycle and the outputs never change again — the protocol
output-stabilizes to the circuit value from *every* initial labeling.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.labels import ExplicitLabelSpace, IntegerRange, ProductSpace, binary
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import bidirectional_ring
from repro.power.counters import CounterFields, RingCounterSpec
from repro.substrates.circuits import Circuit

# Label field indices.
_B1, _B2, _Z, _G, _I1, _I2, _V, _O = range(8)


@dataclass(frozen=True)
class _GatePlan:
    """Compile-time schedule for one real gate."""

    interval: int  # q: which counter interval computes this gate
    latch_phases: tuple[int, int]
    compute: Callable[[int, int], int]  # (i1, i2) -> gate value


@dataclass(frozen=True)
class _Injection:
    """One injection duty: write ``stream`` from ``source`` at this phase."""

    stream: int  # _I1 or _I2
    source: str  # "x" (own input) or "pred_v" (held gate value)


class RingCircuitLayout:
    """Static layout + schedule shared by the protocol and its tests."""

    def __init__(self, circuit: Circuit):
        if circuit.n_inputs < 1:
            raise ValidationError("the ring compiler needs at least one input")
        self.circuit = circuit
        self.n_inputs = circuit.n_inputs
        #: wire index -> real gate index (topological), for non-trivial gates.
        self.real_index: dict[int, int] = {}
        for wire, gate in enumerate(circuit.gates):
            if gate.op not in ("INPUT", "CONST"):
                self.real_index[wire] = len(self.real_index)
        self.m = len(self.real_index)
        if self.m == 0:
            raise ValidationError(
                "trivial circuit (output is an input/constant): "
                "use trivial_flood_protocol instead"
            )
        if circuit.gates[circuit.output].op in ("INPUT", "CONST"):
            raise ValidationError(
                "output wire is an input/constant: use trivial_flood_protocol"
            )
        base = self.n_inputs + 2 * self.m
        self.ring_size = base if base % 2 == 1 else base + 1
        self.interval_length = self.ring_size + 4  # P
        self.modulus = self.m * self.interval_length  # D
        self.output_memory = self.memory_node(self.real_index[circuit.output])
        self._plan()

    def compute_node(self, q: int) -> int:
        return self.n_inputs + 2 * q

    def memory_node(self, q: int) -> int:
        return self.n_inputs + 2 * q + 1

    def _source_of(self, wire: int):
        """Resolve an argument wire to ('node', ring_node) or ('const', bit)."""
        gate = self.circuit.gates[wire]
        if gate.op == "INPUT":
            return ("node", gate.payload)
        if gate.op == "CONST":
            return ("const", gate.payload)
        return ("node", self.memory_node(self.real_index[wire]))

    def _plan(self) -> None:
        n_ring = self.ring_size
        #: node -> {(interval, phase): [Injection, ...]}
        self.injections: dict[int, dict[tuple[int, int], list[_Injection]]] = {}
        #: compute node -> _GatePlan
        self.gate_plans: dict[int, _GatePlan] = {}

        def add_injection(node: int, q: int, phase: int, stream: int):
            source = "x" if node < self.n_inputs else "pred_v"
            table = self.injections.setdefault(node, {})
            for offset in (0, 1):
                table.setdefault((q, phase + offset), []).append(
                    _Injection(stream, source)
                )

        for wire, q in self.real_index.items():
            gate = self.circuit.gates[wire]
            p_q = self.compute_node(q)
            sources = [self._source_of(a) for a in gate.args]
            node_sources = [
                (k, src[1]) for k, src in enumerate(sources) if src[0] == "node"
            ]
            consts = {
                k: src[1] for k, src in enumerate(sources) if src[0] == "const"
            }

            def distance(node: int) -> int:
                return (p_q - node) % n_ring

            if not node_sources:
                latch = (0, 1)
                stream_of_arg: dict[int, int] = {}
            elif len(node_sources) == 1:
                (arg_k, node) = node_sources[0]
                d = distance(node)
                add_injection(node, q, 0, _I1)
                latch = (d, d + 1)
                stream_of_arg = {arg_k: _I1}
            else:
                (ka, na), (kb, nb) = node_sources
                da, db = distance(na), distance(nb)
                if da >= db:
                    far_arg, far_node, d_far = ka, na, da
                    near_arg, near_node, d_near = kb, nb, db
                else:
                    far_arg, far_node, d_far = kb, nb, db
                    near_arg, near_node, d_near = ka, na, da
                add_injection(far_node, q, 0, _I1)
                add_injection(near_node, q, d_far - d_near, _I2)
                latch = (d_far, d_far + 1)
                stream_of_arg = {far_arg: _I1, near_arg: _I2}

            op = gate.op

            def make_compute(op=op, stream_of_arg=stream_of_arg, consts=consts):
                def operand(k: int, i1: int, i2: int) -> int:
                    if k in consts:
                        return consts[k]
                    return i1 if stream_of_arg[k] == _I1 else i2

                def compute(i1: int, i2: int) -> int:
                    if op == "NOT":
                        return 1 - operand(0, i1, i2)
                    a = operand(0, i1, i2)
                    b = operand(1, i1, i2)
                    if op == "AND":
                        return a & b
                    if op == "OR":
                        return a | b
                    return a ^ b  # XOR

                return compute

            self.gate_plans[p_q] = _GatePlan(q, latch, make_compute())

    def round_bound(self) -> int:
        """Counter stabilization + two full cycles + one output lap."""
        return 4 * self.ring_size + 2 * self.modulus + self.ring_size


def circuit_ring_protocol(circuit: Circuit) -> StatelessProtocol:
    """Compile a circuit into the Theorem 5.4 bidirectional-ring protocol.

    Inputs of the returned protocol: ring node ``i < circuit.n_inputs`` takes
    ``x_i``; all other nodes ignore their input (pass 0).  Under the
    synchronous schedule, from any initial labeling, all outputs converge to
    ``circuit.evaluate(x)``.
    """
    layout = RingCircuitLayout(circuit)
    n_ring = layout.ring_size
    spec = RingCounterSpec(n_ring, layout.modulus)
    topology = bidirectional_ring(n_ring)
    interval_length = layout.interval_length
    bit = binary()
    label_space = ProductSpace(
        (
            bit,
            ExplicitLabelSpace((0, 1), name="b2"),
            IntegerRange(layout.modulus, name="z"),
            IntegerRange(layout.modulus, name="g"),
            ExplicitLabelSpace((0, 1), name="i1"),
            ExplicitLabelSpace((0, 1), name="i2"),
            ExplicitLabelSpace((0, 1), name="v"),
            ExplicitLabelSpace((0, 1), name="o"),
        ),
        name=f"circuit-ring(D={layout.modulus})",
    )

    def make_reaction(j: int):
        pred_edge = ((j - 1) % n_ring, j)
        succ_edge = ((j + 1) % n_ring, j)
        my_injections = layout.injections.get(j, {})
        my_plan = layout.gate_plans.get(j)
        is_output_memory = j == layout.output_memory

        def react(incoming, x):
            pred = incoming[pred_edge]
            succ = incoming[succ_edge]
            fields = spec.update(
                j, CounterFields(*pred[:4]), CounterFields(*succ[:4])
            )
            counter = spec.counter_value(j, CounterFields(*pred[:4]), fields)
            interval, phase = divmod(counter, interval_length)

            i1, i2 = pred[_I1], pred[_I2]
            for injection in my_injections.get((interval, phase), ()):
                value = (x & 1) if injection.source == "x" else pred[_V]
                if injection.stream == _I1:
                    i1 = value
                else:
                    i2 = value

            if my_plan is not None:
                if interval == my_plan.interval and phase in my_plan.latch_phases:
                    v = my_plan.compute(pred[_I1], pred[_I2])
                else:
                    v = succ[_V]
            else:
                v = pred[_V]

            o = pred[_V] if is_output_memory else pred[_O]
            label = (fields.b1, fields.b2, fields.z, fields.g, i1, i2, v, o)
            return label, o

        return UniformReaction(topology.out_edges(j), react)

    return StatelessProtocol(
        topology,
        label_space,
        [make_reaction(j) for j in range(n_ring)],
        name=f"circuit-ring(size={circuit.size}, N={n_ring})",
    )


def ring_inputs(layout_or_protocol, x) -> tuple[int, ...]:
    """Pad circuit inputs ``x`` with zeros for the helper ring nodes."""
    if isinstance(layout_or_protocol, RingCircuitLayout):
        n_ring = layout_or_protocol.ring_size
        n_inputs = layout_or_protocol.n_inputs
    else:
        n_ring = layout_or_protocol.topology.n
        n_inputs = len(x)
    if len(x) > n_ring:
        raise ValidationError("more inputs than ring nodes")
    padded = list(x) + [0] * (n_ring - len(x))
    return tuple(padded[:n_ring])


def trivial_flood_protocol(circuit: Circuit) -> StatelessProtocol:
    """Handle circuits whose output wire is an INPUT or CONST gate.

    A one-bit flood on an odd ring: the node holding the value writes it into
    ``o``; everyone else copies clockwise and outputs ``o``.
    """
    gate = circuit.gates[circuit.output]
    if gate.op not in ("INPUT", "CONST"):
        raise ValidationError("circuit is not trivial; use circuit_ring_protocol")
    base = max(circuit.n_inputs, 3)
    n_ring = base if base % 2 == 1 else base + 1
    topology = bidirectional_ring(n_ring)
    holder = gate.payload if gate.op == "INPUT" else 0
    constant = gate.payload if gate.op == "CONST" else None

    def make_reaction(j: int):
        pred_edge = ((j - 1) % n_ring, j)

        def react(incoming, x):
            if j == holder:
                o = constant if constant is not None else (x & 1)
            else:
                o = incoming[pred_edge]
            return o, o

        return UniformReaction(topology.out_edges(j), react)

    return StatelessProtocol(
        topology,
        binary(),
        [make_reaction(j) for j in range(n_ring)],
        name=f"trivial-flood(N={n_ring})",
    )
