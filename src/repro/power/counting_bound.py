"""The counting lower bound of Theorem 5.10 and an exact tiny-case census.

Theorem 5.10: on any constant-max-degree-k graph family, for every ``n > 8``
some function ``f : {0,1}^n -> {0,1}`` cannot be computed by any protocol
with label complexity below ``n / (4k)``.  The proof counts protocols
(at most ``(2 |Sigma|^k)^(2 n |Sigma|^k)``) against functions (``2^(2^n)``).

Alongside the arithmetic, this module performs an *exact census* for the
smallest interesting system — the 2-node unidirectional ring — enumerating
every protocol over a given label space and deciding exactly which of the 16
two-bit Boolean functions each computes (output stabilization under the
synchronous schedule, from every initial labeling).  This exhibits the
counting phenomenon concretely: with ``|Sigma| = 1`` only the two constant
functions are computable; ``|Sigma| = 2`` unlocks the rest.
"""

from __future__ import annotations

import math
from itertools import product

from repro.exceptions import ValidationError


def counting_lower_bound(n: int, k: int) -> float:
    """Theorem 5.10: some f needs L_n >= n / (4k) (stated for n > 8)."""
    if n <= 0 or k <= 0:
        raise ValidationError("n and k must be positive")
    return n / (4 * k)


def protocol_count_upper_bound(n: int, k: int, sigma_size: int) -> int:
    """The proof's bound on the number of distinct protocols.

    Each node's reaction maps ``Sigma^k x {0,1}`` to ``Sigma^k x {0,1}``:
    at most ``(2 |Sigma|^k)^(2 |Sigma|^k)`` choices per node, i.e.
    ``(2 |Sigma|^k)^(2 n |Sigma|^k)`` protocols overall.
    """
    base = 2 * sigma_size**k
    exponent = 2 * n * sigma_size**k
    return base**exponent


def functions_count(n: int) -> int:
    """Number of Boolean functions on n bits: 2^(2^n)."""
    return 2 ** (2**n)


def smallest_sufficient_label_bits(n: int, k: int, max_bits: int = 4096) -> int:
    """Smallest L with (2 * 2^(Lk))^(2n * 2^(Lk)) >= 2^(2^n).

    Computed in doubly-logarithmic space: the condition is equivalent to
    ``log2(2n) + Lk + log2(Lk + 1) >= n``, which never overflows.
    """
    for bits in range(max_bits + 1):
        lk = bits * k
        log2_of_protocols_log2 = math.log2(2 * n) + lk + math.log2(lk + 1)
        if log2_of_protocols_log2 >= n:
            return bits
    raise ValidationError("max_bits too small for this n")


# -- exact census on the 2-ring ----------------------------------------------


def two_ring_census(sigma_size: int) -> dict[tuple[int, int, int, int], bool]:
    """Which 2-bit functions are computable on the 2-node unidirectional ring.

    Enumerates *every* protocol with the given label space (each node's
    reaction is a table ``(incoming label, x) -> (outgoing label, y)``) and
    every truth table ``f = (f(0,0), f(0,1), f(1,0), f(1,1))``; the result
    maps each truth table to whether some protocol computes it, in the sense
    of Section 2.2: under the synchronous schedule, from every initial
    labeling and for every input, every node's output converges to ``f(x)``.
    """
    if sigma_size < 1:
        raise ValidationError("label space must be nonempty")
    labels = range(sigma_size)
    # A node's reaction table: maps (incoming, x) -> (outgoing, y).
    entries = [(lbl, x) for lbl in labels for x in (0, 1)]
    outcomes = [(lbl, y) for lbl in labels for y in (0, 1)]
    tables = [
        dict(zip(entries, choice, strict=True))
        for choice in product(outcomes, repeat=len(entries))
    ]

    inputs = [(0, 0), (0, 1), (1, 0), (1, 1)]
    computable: dict[tuple[int, int, int, int], bool] = {}
    candidate_functions = set(product((0, 1), repeat=4))

    found: set[tuple[int, int, int, int]] = set()
    for table0 in tables:
        for table1 in tables:
            truth = _computed_function(table0, table1, labels, inputs)
            if truth is not None:
                found.add(truth)
        if len(found) == len(candidate_functions):
            break
    for truth in sorted(candidate_functions):
        computable[truth] = truth in found
    return computable


def _computed_function(table0, table1, labels, inputs):
    """The function this 2-ring protocol computes, or None.

    State is ``(l01, l10)``; the synchronous update is
    ``l01', y0 = table0[l10, x0]`` and ``l10', y1 = table1[l01, x1]``.
    The protocol computes f iff for every input and every initial labeling
    the run's eventual outputs are constant and both equal f(x).
    """
    truth = []
    for x in inputs:
        value = None
        for init in product(labels, repeat=2):
            result = _eventual_output(table0, table1, init, x, len(labels))
            if result is None:
                return None
            if value is None:
                value = result
            elif value != result:
                return None
        truth.append(value)
    return tuple(truth)


def _eventual_output(table0, table1, init, x, sigma_size):
    """Stable common output of a synchronous run, or None."""
    l01, l10 = init
    seen = {}
    trace = []
    state = (l01, l10)
    while state not in seen:
        seen[state] = len(trace)
        trace.append(state)
        l01_next, y0 = table0[(state[1], x[0])]
        l10_next, y1 = table1[(state[0], x[1])]
        state = (l01_next, l10_next)
    cycle = trace[seen[state]:]
    outputs = set()
    for (a, b) in cycle:
        _, y0 = table0[(b, x[0])]
        _, y1 = table1[(a, x[1])]
        outputs.add((y0, y1))
    if len(outputs) != 1:
        return None
    y0, y1 = outputs.pop()
    if y0 != y1:
        return None
    return y0
