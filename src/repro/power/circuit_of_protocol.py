"""Unrolling protocols into Boolean circuits (Theorem 5.4, converse direction).

``OS~^b_log subset P/poly``: a synchronous run of any stateless protocol with
round complexity T can be written as a T-layer Boolean circuit — one
sub-circuit per (node, round) computing the node's reaction from the previous
layer's labels and the global input bits.  The circuit's size is
``T * n * poly(2^{label bits})``, polynomial whenever the label complexity is
logarithmic and T polynomial.

The construction here is the proof's, literally: labels are binary-encoded,
every reaction output bit is synthesized as a DNF over the (few) incoming
label bits plus the node's input bit, layer t's wires feed layer t+1
according to the topology, and the output gate is the designated node's
output wire after the last layer.
"""

from __future__ import annotations

import math

from repro.core.configuration import Labeling
from repro.core.protocol import StatelessProtocol
from repro.exceptions import SearchBudgetExceeded, ValidationError
from repro.substrates.circuits import Circuit, CircuitBuilder

MAX_LABEL_SPACE = 64
MAX_TABLE_BITS = 16


def unroll_protocol(
    protocol: StatelessProtocol,
    rounds: int,
    node: int = 0,
    initial_labeling: Labeling | None = None,
) -> Circuit:
    """Build a circuit computing node ``node``'s output after ``rounds``
    synchronous rounds on binary inputs, from ``initial_labeling`` (default:
    every edge carries the label space's first label — the proof's constant
    initialization circuit C0).
    """
    if rounds < 1:
        raise ValidationError("need at least one round")
    if protocol.is_stateful:
        raise ValidationError("only stateless protocols can be unrolled")
    topology = protocol.topology
    n = topology.n
    if not 0 <= node < n:
        raise ValidationError("unknown output node")
    labels = tuple(protocol.label_space)
    if len(labels) > MAX_LABEL_SPACE:
        raise SearchBudgetExceeded(
            f"label space of size {len(labels)} too large to binary-encode"
        )
    index_of = {label: k for k, label in enumerate(labels)}
    bits = max(1, math.ceil(math.log2(len(labels))))

    if initial_labeling is None:
        initial_labeling = Labeling.uniform(topology, labels[0])

    builder = CircuitBuilder(n)
    input_wires = [builder.input(i) for i in range(n)]

    def encode_const(label) -> list[int]:
        value = index_of[label]
        return [builder.const((value >> b) & 1) for b in range(bits)]

    # wires per edge, in topology edge order
    label_wires: dict = {
        edge: encode_const(initial_labeling[edge]) for edge in topology.edges
    }
    output_wires = [builder.const(0) for _ in range(n)]

    # Precompute each node's reaction truth table over its incoming labels + x.
    def reaction_table(i: int):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        arity = len(in_edges) * bits + 1
        if arity > MAX_TABLE_BITS:
            raise SearchBudgetExceeded(
                f"node {i} reaction table needs 2^{arity} rows"
            )
        table: dict[tuple[int, ...], tuple[dict, int]] = {}
        for row in range(1 << arity):
            bits_tuple = tuple((row >> k) & 1 for k in range(arity))
            incoming = {}
            for e_index, edge in enumerate(in_edges):
                chunk = bits_tuple[e_index * bits : (e_index + 1) * bits]
                value = sum(bit << k for k, bit in enumerate(chunk)) % len(labels)
                incoming[edge] = labels[value]
            x = bits_tuple[-1]
            outgoing, y = protocol.reaction(i)(incoming, x)
            encoded = {edge: index_of[outgoing[edge]] for edge in out_edges}
            table[bits_tuple] = (encoded, (1 if y else 0))
        return in_edges, out_edges, arity, table

    reaction_tables = [reaction_table(i) for i in range(n)]

    for _ in range(rounds):
        new_label_wires: dict = {}
        new_output_wires = list(output_wires)
        for i in range(n):
            in_edges, out_edges, arity, table = reaction_tables[i]
            arg_wires = []
            for edge in in_edges:
                arg_wires.extend(label_wires[edge])
            arg_wires.append(input_wires[i])
            for edge in out_edges:
                new_label_wires[edge] = [
                    builder.table(
                        arg_wires,
                        lambda *row, edge=edge, b=b: (table[row][0][edge] >> b) & 1,
                    )
                    for b in range(bits)
                ]
            new_output_wires[i] = builder.table(
                arg_wires, lambda *row: table[row][1]
            )
        label_wires = new_label_wires
        output_wires = new_output_wires

    return builder.build(output_wires[node])
