"""Round complexity on the unidirectional ring (Lemma C.2).

Lemma C.2 proves two facts about unidirectional-ring protocols:

1. ``R_n <= n * |Sigma|`` for every protocol (the incoming-label history of a
   node becomes periodic within ``|Sigma|`` laps of the ring);
2. the bound is near-tight: there is a protocol with
   ``R_n = n * (|Sigma| - 1)``.

The worst-case protocol: labels are ``0 .. q-1``; node 0 increments the value
circulating around the ring and pins it at ``q-1``; other nodes forward.
Starting from the all-zero labeling, the circulating value steps up once per
lap until saturation, so the labels change for exactly ``n (q-1)`` steps.
"""

from __future__ import annotations

from repro.core.labels import IntegerRange
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import unidirectional_ring


def unidirectional_round_bound(n: int, sigma_size: int) -> int:
    """Lemma C.2(1): R_n <= n * |Sigma| on the unidirectional ring."""
    return n * sigma_size


def worst_case_protocol(n: int, q: int) -> StatelessProtocol:
    """The Lemma C.2(2) protocol with R_n = n(q-1) from the all-zero labeling.

    Node 0: on incoming ``q-1`` emit ``q-1`` and output 1, else emit
    ``incoming + 1`` and output 0.  Node i != 0: forward the incoming label,
    outputting 1 exactly on ``q-1``.
    """
    if q < 2:
        raise ValidationError("need a label space of size >= 2")
    topology = unidirectional_ring(n)

    def head(incoming, _x):
        (value,) = incoming.values()
        if value == q - 1:
            return q - 1, 1
        return value + 1, 0

    def forward(incoming, _x):
        (value,) = incoming.values()
        if value == q - 1:
            return q - 1, 1
        return value, 0

    reactions = [
        UniformReaction(topology.out_edges(i), head if i == 0 else forward)
        for i in range(n)
    ]
    return StatelessProtocol(
        topology, IntegerRange(q), reactions, name=f"worst-case-ring({n},{q})"
    )


def worst_case_round_complexity(n: int, q: int) -> int:
    """Lemma C.2(2): the protocol's label convergence time from all-zeros."""
    return n * (q - 1)
