"""Snake-in-the-box: induced cycles in the hypercube (Definition B.2).

The communication-complexity reductions of Theorem 4.1 embed the two parties'
inputs along a *snake* — an induced simple cycle of the hypercube graph
``Q_d`` (consecutive vertices adjacent, non-consecutive vertices
non-adjacent).  Abbott-Katchalski (Theorem B.3): the longest snake s(d)
satisfies ``lambda * 2^d <= s(d) <= 2^(d-1)`` with ``lambda >= 0.3``.

Maximal snakes are hard to find; the gadgets only need *a valid* snake, so we
provide an exact DFS for small d, a budgeted best-effort search for larger d,
and the table of known maxima for reporting.
"""

from __future__ import annotations

from repro.exceptions import SearchBudgetExceeded, ValidationError

#: Known maximal snake lengths (OEIS A099155).
KNOWN_MAX_SNAKE_LENGTH = {2: 4, 3: 6, 4: 8, 5: 14, 6: 26, 7: 48}

#: Abbott-Katchalski constant.
LAMBDA = 0.3


def abbott_katchalski_bounds(d: int) -> tuple[float, int]:
    """(lower, upper) bounds on s(d) for d >= 8: lambda*2^d <= s(d) <= 2^(d-1)."""
    return LAMBDA * 2**d, 2 ** (d - 1)


def is_snake(cycle: list[int], d: int) -> bool:
    """Verify that ``cycle`` is an induced simple cycle in Q_d.

    Vertices are integers in [0, 2^d); consecutive vertices (cyclically) must
    differ in exactly one bit; all vertices distinct; non-consecutive
    vertices must not be adjacent (no chords).
    """
    length = len(cycle)
    if length < 4:
        return False
    if any(not 0 <= v < (1 << d) for v in cycle):
        return False
    if len(set(cycle)) != length:
        return False
    for k in range(length):
        if bin(cycle[k] ^ cycle[(k + 1) % length]).count("1") != 1:
            return False
    for i in range(length):
        for j in range(i + 2, length):
            if i == 0 and j == length - 1:
                continue  # the closing edge of the cycle
            if bin(cycle[i] ^ cycle[j]).count("1") == 1:
                return False
    return True


def find_snake(d: int, budget: int = 2_000_000) -> list[int]:
    """Longest snake found by DFS within the node budget.

    Exhaustive (hence maximal) for d <= 4 under the default budget; a valid
    but possibly sub-maximal snake for larger d.  Raises if no snake exists
    (d < 2).
    """
    if d < 2:
        raise ValidationError("Q_d has no induced cycle for d < 2")
    n = 1 << d
    neighbors = [[v ^ (1 << bit) for bit in range(d)] for v in range(n)]
    best: list[int] = []
    visited_budget = [budget]

    # Path-based DFS: grow an induced path from 0, try to close it into a
    # cycle.  "Induced path" means internal vertices have no chords; the
    # closing edge is allowed between the endpoints only.
    def forbidden(path_set, path, candidate):
        # A candidate may touch only the last path vertex (its predecessor)
        # and the first (the potential cycle-closing edge); any other contact
        # would be a chord.
        first, last = path[0], path[-1]
        for u in neighbors[candidate]:
            if u in path_set and u != last and u != first:
                return True
        return False

    def close_if_cycle(path):
        nonlocal best
        if len(path) < 4:
            return
        if bin(path[0] ^ path[-1]).count("1") == 1 and len(path) > len(best):
            # check path[0]'s other neighbors: induced cycle allows only
            # path[1] and path[-1] adjacent to path[0]
            candidate = list(path)
            if is_snake(candidate, d):
                best = candidate

    def dfs(path, path_set):
        if visited_budget[0] <= 0:
            return
        visited_budget[0] -= 1
        close_if_cycle(path)
        for nxt in neighbors[path[-1]]:
            if nxt in path_set or forbidden(path_set, path, nxt):
                continue
            path.append(nxt)
            path_set.add(nxt)
            dfs(path, path_set)
            path_set.remove(nxt)
            path.pop()

    # fix the first edge 0 -> 1 (WLOG by symmetry)
    dfs([0, 1], {0, 1})
    if not best:
        raise SearchBudgetExceeded(f"no snake found in Q_{d} within budget")
    return best


def translate_snake(cycle: list[int], offset: int) -> list[int]:
    """XOR-translate a snake (hypercube automorphism): stays a snake."""
    return [v ^ offset for v in cycle]


def normalized_snake(d: int, budget: int = 2_000_000) -> list[int]:
    """A snake positioned for the Theorem B.4 gadget: the all-zeros vertex is
    **off** the snake (the gadget's orientation routes off-snake dynamics
    toward 0^d).

    Needs d >= 3: in Q_2 the only snake is the whole square, leaving no
    off-snake vertices.
    """
    if d < 3:
        raise ValidationError("the gadget snake needs d >= 3")
    cycle = find_snake(d, budget)
    n = 1 << d
    snake_set = set(cycle)
    for offset in range(n):
        if 0 not in {v ^ offset for v in snake_set}:
            return translate_snake(cycle, offset)
    raise ValidationError(f"no valid translation for the Q_{d} snake")
