"""The PSPACE-hardness reduction machinery of Theorem 4.2.

Two executable pieces:

* **Theorem B.11** — from a String-Oscillation instance ``g`` build a
  *stateful* protocol (reactions may read their own outgoing labels) on the
  clique ``K_{m+1}``: workers 0..m-1 hold the string symbols, the controller
  (node m) drives the procedure by commanding one write at a time and
  advancing once it observes the write executed.  The protocol is label
  r-stabilizing (for every r) iff the procedure halts from every string.

* **Theorem B.14** — the metanode compiler: any stateful protocol ``A`` on
  ``K_n`` becomes a *stateless* protocol on ``K_{3n}`` with the same
  stabilization behavior.  Each node is triplicated; a node reads its own
  label from its two metanode partners (that is how statelessness is
  recovered), a corrupted view collapses to the sentinel label ω, and a
  simulated labeling that is already stable for ``A`` also collapses to ω —
  making the all-ω labeling the compiled protocol's unique stable point.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.labels import ExplicitLabelSpace
from repro.core.protocol import StatefulProtocol, StatelessProtocol
from repro.core.reaction import LambdaStatefulReaction, UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import clique
from repro.core.configuration import Labeling
from repro.hardness.string_oscillation import HALT, GFunction

#: The sentinel label of the metanode compiler.
OMEGA = "omega"


# ---------------------------------------------------------------------------
# Theorem B.11: stateful protocol from a String-Oscillation instance.
# ---------------------------------------------------------------------------


def stateful_protocol_from_g(
    g: GFunction, alphabet: Sequence, m: int
) -> StatefulProtocol:
    """Build the Theorem B.11 stateful protocol on ``K_{m+1}``.

    Labels are pairs ``(position, symbol)`` with symbol in Gamma u {halt};
    workers only use the symbol part, the controller uses both.
    """
    if m < 2:
        raise ValidationError("need at least 2 worker nodes")
    alphabet = tuple(alphabet)
    n = m + 1
    controller = m
    topology = clique(n)
    symbols = alphabet + (HALT,)
    label_space = ExplicitLabelSpace(
        tuple((j, s) for j in range(m) for s in symbols),
        name=f"string-osc(m={m})",
    )

    def make_worker(i: int):
        def react(incoming, own_outgoing, _x):
            j, gamma = incoming[(controller, i)]
            own = next(iter(own_outgoing.values()))
            if gamma == HALT:
                label = (0, HALT)
            elif j == i:
                label = (0, gamma)
            else:
                label = (0, own[1])
            return {edge: label for edge in topology.out_edges(i)}, label[1]

        return LambdaStatefulReaction(react)

    def controller_react(incoming, own_outgoing, _x):
        own = next(iter(own_outgoing.values()))
        j, gamma = own
        worker_symbols = tuple(
            incoming[(i, controller)][1] for i in range(m)
        )
        if gamma == HALT:
            label = (0, HALT)
        elif worker_symbols[j] == gamma:
            label = ((j + 1) % m, g(worker_symbols))
        else:
            label = (j, gamma)
        return {edge: label for edge in topology.out_edges(controller)}, label[1]

    reactions = [make_worker(i) for i in range(m)] + [
        LambdaStatefulReaction(controller_react)
    ]
    return StatefulProtocol(
        topology, label_space, reactions, name=f"string-osc-protocol(m={m})"
    )


def procedure_labeling(
    protocol: StatefulProtocol, g: GFunction, start: tuple
) -> Labeling:
    """The initial labeling that makes the protocol simulate the procedure
    from string ``start``: workers broadcast (0, T_i), the controller
    broadcasts (0, g(T))."""
    m = protocol.n - 1
    if len(start) != m:
        raise ValidationError(f"need a string of length {m}")
    per_node = [(0, symbol) for symbol in start] + [(0, g(tuple(start)))]
    topology = protocol.topology
    values = tuple(per_node[u] for (u, _) in topology.edges)
    return Labeling(topology, values)


# ---------------------------------------------------------------------------
# Theorem B.14: the metanode compiler (stateful -> stateless).
# ---------------------------------------------------------------------------


def metanode_compile(protocol: StatefulProtocol) -> StatelessProtocol:
    """Compile a stateful clique protocol to a stateless one on ``K_{3n}``."""
    n = protocol.n
    source = protocol.topology
    if source != clique(n):
        raise ValidationError("the metanode compiler expects a clique protocol")
    big = clique(3 * n)
    label_space = ExplicitLabelSpace(
        tuple(protocol.label_space) + (OMEGA,), name="metanode"
    )

    def simulate_reaction(i: int, corresponding: list, x):
        """delta_i of A on the corresponding labeling (broadcast form)."""
        incoming = {(k, i): corresponding[k] for k in range(n) if k != i}
        own = {(i, k): corresponding[i] for k in range(n) if k != i}
        outgoing, _y = protocol.reaction(i)(incoming, own, x)
        return next(iter(outgoing.values()))

    def corresponding_is_stable(corresponding: list, inputs_hint) -> bool:
        for k in range(n):
            if simulate_reaction(k, corresponding, inputs_hint[k]) != corresponding[k]:
                return False
        return True

    def make_reaction(u: int):
        i, _member = divmod(u, 3)

        def react(incoming, x):
            # labels by source node (broadcast protocol: any edge works)
            by_node = {v: incoming[(v, u)] for v in range(3 * n) if v != u}
            corresponding: list = [None] * n
            consistent = True
            for k in range(n):
                members = [by_node[3 * k + c] for c in range(3) if 3 * k + c != u]
                if any(lbl == OMEGA for lbl in members):
                    consistent = False
                    break
                if len(set(members)) != 1:
                    consistent = False
                    break
                corresponding[k] = members[0]
            if not consistent:
                label = OMEGA
            else:
                # All metanodes share the input of their source node; the
                # compiled protocol's caller passes x_i to all of 3i..3i+2,
                # so this node's own x stands in for its metanode.
                inputs_hint = [x] * n
                if corresponding_is_stable(corresponding, inputs_hint):
                    label = OMEGA
                else:
                    label = simulate_reaction(i, corresponding, x)
            return label, label

        return UniformReaction(big.out_edges(u), react)

    return StatelessProtocol(
        big,
        label_space,
        [make_reaction(u) for u in range(3 * n)],
        name=f"metanode({protocol.name})",
    )


def expand_inputs(inputs: Sequence) -> tuple:
    """Triple each input for the compiled protocol's metanodes."""
    expanded = []
    for value in inputs:
        expanded.extend([value] * 3)
    return tuple(expanded)


def expand_labeling(protocol: StatefulProtocol, labeling: Labeling) -> Labeling:
    """Lift a broadcast labeling of A to the strongly consistent labeling of
    the compiled protocol (every metanode member broadcasts i's label)."""
    n = protocol.n
    per_node = [labeling[(i, (i + 1) % n)] for i in range(n)]
    big = clique(3 * n)
    values = tuple(per_node[u // 3] for (u, _) in big.edges)
    return Labeling(big, values)


def expand_schedule_steps(steps: Sequence[frozenset[int]]) -> list[set[int]]:
    """Lift activation sets of A to whole-metanode activations of A'."""
    return [
        {3 * i + c for i in step for c in range(3)} for step in steps
    ]
