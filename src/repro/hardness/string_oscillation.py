"""The String-Oscillation problem (source of the PSPACE reduction, Thm 4.2).

Given ``g : Gamma^m -> Gamma u {halt}``, decide whether some initial string
makes the following procedure run forever:

    i <- 1
    while g(T) != halt:
        T_i <- g(T)
        i <- 1 + (i mod m)

This module provides the brute-force decider (exact for small ``Gamma^m``;
the problem is PSPACE-complete in general, which is the whole point of the
reduction) plus a small library of instances with known answers.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from itertools import product

from repro.exceptions import ValidationError

HALT = "halt"

#: g maps a tuple of symbols to a symbol or HALT.
GFunction = Callable[[tuple], object]


def run_procedure(
    g: GFunction, start: tuple, max_steps: int
) -> tuple[bool, int]:
    """Run the procedure; returns (halted, steps) — steps capped."""
    state = (tuple(start), 0)
    for step in range(max_steps):
        symbols, i = state
        value = g(symbols)
        if value == HALT:
            return True, step
        updated = list(symbols)
        updated[i] = value
        state = (tuple(updated), (i + 1) % len(symbols))
    return False, max_steps


def oscillating_start(
    g: GFunction, alphabet: Sequence, m: int
) -> tuple | None:
    """The brute-force decider: a non-halting initial string, or None.

    The procedure's state is ``(T, i)``; there are ``|Gamma|^m * m`` states,
    so a run either halts or revisits a state within that many steps.
    """
    if m < 1:
        raise ValidationError("string length must be >= 1")
    alphabet = tuple(alphabet)
    if not alphabet:
        raise ValidationError("alphabet must be nonempty")
    horizon = (len(alphabet) ** m) * m + 1
    for start in product(alphabet, repeat=m):
        halted, _ = run_procedure(g, start, horizon)
        if not halted:
            return start
    return None


# -- instance library ----------------------------------------------------------


def always_halt(_symbols: tuple):
    """Halts immediately from every string."""
    return HALT


def never_halt_rotate(symbols: tuple):
    """Never halts: keeps writing the first symbol."""
    return symbols[0]


def halt_when_uniform(symbols: tuple):
    """Halt once all symbols agree, else write the majority-breaking symbol.

    With a binary alphabet this always halts: writing symbols[0] into
    successive positions makes the string uniform within m steps.
    """
    if all(s == symbols[0] for s in symbols):
        return HALT
    return symbols[0]


def toggle_forever(symbols: tuple):
    """Never halts on binary strings: always writes the complement of T_1."""
    return "b" if symbols[0] == "a" else "a"


def halt_unless_all_b(symbols: tuple):
    """Halts from every string except the all-'b' fixed point."""
    if all(s == "b" for s in symbols):
        return "b"
    return HALT
