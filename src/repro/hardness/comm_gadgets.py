"""The communication-complexity gadget protocols of Theorem 4.1.

Deciding whether a protocol is label r-stabilizing requires exchanging
exponentially many bits between parties that each know one reaction function.
The proof embeds an EQUALITY instance (Theorem B.4, small r) or a
SET-DISJOINTNESS instance (Theorem B.7, large r) into a clique protocol built
around a snake-in-the-box:

* nodes 0 and 1 are Alice and Bob; their reactions hard-code the private
  inputs x and y;
* the remaining nodes carry one hypercube coordinate each; while Alice's and
  Bob's labels agree, the joint hypercube vertex walks along the snake
  (orientation function phi), reading one input bit per snake vertex;
* disagreement collapses the system into a unique stable labeling.

The executable dichotomies (machine-checked in the tests):

* EQ gadget: ``x == y``  => the synchronous run from a snake state cycles
  forever;   ``x != y`` => the protocol is label 1-stabilizing (exact model
  check over all broadcast labelings).
* EQ latch gadget (general r): adds the paper's two-node one-way latch
  (nodes 2, 3) so that a transient disagreement is remembered and forces
  convergence under every r-fair schedule.
* DISJ gadget: intersecting inputs admit an explicitly constructed r-fair
  oscillating schedule (Claim B.8); disjoint inputs are label r-stabilizing
  (Claim B.9).

Faithfulness note (see DESIGN.md): the paper's orientation "orient all other
edges towards S" is under-specified for simultaneous activations; we use a
concrete coordinate-wise orientation: on-snake vertices follow the cycle;
off-snake vertices fall back toward the all-zeros vertex, whose special
outgoing edge points at an off-snake neighbor.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.configuration import Labeling
from repro.core.labels import binary
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.core.schedule import ExplicitSchedule
from repro.exceptions import ValidationError
from repro.graphs.standard import clique
from repro.hardness.snake import is_snake, normalized_snake


class SnakeOrientation:
    """The coordinate-wise orientation phi over a normalized snake in Q_d.

    ``special_edge=True`` re-enables the paper's extra rule orienting the
    all-zeros vertex toward an off-snake neighbor; it is **known to break**
    the convergence dichotomy under simultaneous activations (kept only for
    the ablation experiment, see DESIGN.md).
    """

    def __init__(self, snake: Sequence[int], d: int, special_edge: bool = False):
        snake = list(snake)
        if not is_snake(snake, d):
            raise ValidationError("not a valid snake")
        if 0 in snake:
            raise ValidationError("the gadget snake must avoid the all-zeros vertex")
        self.snake = snake
        self.d = d
        self.on_snake = set(snake)
        self.successor = {
            snake[k]: snake[(k + 1) % len(snake)] for k in range(len(snake))
        }
        self.position = {v: k for k, v in enumerate(snake)}
        self.special_coord: int | None = None
        if special_edge:
            for bit in range(d):
                if (1 << bit) not in self.on_snake:
                    self.special_coord = bit
                    break
            if self.special_coord is None:
                raise ValidationError("no off-snake neighbor of the origin")

    def phi(self, coord: int, others: int) -> int:
        """Node ``coord``'s next bit given the other coordinates' bits.

        ``others`` is the full vertex with coordinate ``coord`` cleared.

        The first three cases are forced by consistency with the snake walk
        (a node cannot see its own bit, so both completions of its view must
        agree on its next bit).  For doubly-off-snake views we orient toward
        the all-zeros vertex: together with the forced pulls this makes
        off-snake excursions collapse — the paper's "orient all other edges
        towards S" made concrete.  (The paper additionally orients a special
        edge out of 0^d; under simultaneous activations that rule can combine
        with a forced pull into a 2-cycle, so we omit it — the model checker
        validates the resulting dichotomies, see DESIGN.md.)
        """
        w0 = others
        w1 = others | (1 << coord)
        on0 = w0 in self.on_snake
        on1 = w1 in self.on_snake
        if on0 and on1:
            return 1 if self.successor[w0] == w1 else 0
        if on0:
            return 0
        if on1:
            return 1
        if self.special_coord == coord and others == 0:
            return 1  # the paper's special edge (ablation only)
        return 0


def _hypercube_vertex(incoming, cube_nodes) -> int:
    vertex = 0
    for bit, node in enumerate(cube_nodes):
        if incoming[node]:
            vertex |= 1 << bit
    return vertex


def eq_gadget_protocol(
    n: int,
    x: Sequence[int],
    y: Sequence[int],
    snake: Sequence[int] | None = None,
    special_edge: bool = False,
) -> StatelessProtocol:
    """The Theorem B.4 (r = 1) EQUALITY gadget on K_n.

    ``x`` and ``y`` are indexed by snake position; the protocol is label
    1-stabilizing iff ``x != y``.  ``special_edge`` re-enables the paper's
    origin-orientation rule for the ablation experiment.
    """
    d = n - 2
    if d < 3:
        raise ValidationError("the EQ gadget needs n >= 5")
    snake = list(snake) if snake is not None else normalized_snake(d)
    orientation = SnakeOrientation(snake, d, special_edge=special_edge)
    if len(x) != len(snake) or len(y) != len(snake):
        raise ValidationError("inputs must have one bit per snake vertex")
    topology = clique(n)
    cube_nodes = tuple(range(2, n))

    def alice(incoming, _input):
        by_node = {u: incoming[(u, 0)] for u in range(1, n)}
        vertex = _hypercube_vertex(by_node, cube_nodes)
        if vertex in orientation.on_snake:
            bit = x[orientation.position[vertex]]
        else:
            bit = 1
        return bit, bit

    def bob(incoming, _input):
        by_node = {u: incoming[(u, 1)] for u in range(n) if u != 1}
        vertex = _hypercube_vertex(by_node, cube_nodes)
        if vertex in orientation.on_snake:
            bit = y[orientation.position[vertex]]
        else:
            bit = 0
        return bit, bit

    def make_cube_reaction(k: int):
        coord = k - 2

        def react(incoming, _input):
            by_node = {u: incoming[(u, k)] for u in range(n) if u != k}
            if by_node[0] != by_node[1]:
                return 0, 0
            others = 0
            for bit, node in enumerate(cube_nodes):
                if node != k and by_node[node]:
                    others |= 1 << bit
            value = orientation.phi(coord, others)
            return value, value

        return react

    reactions = []
    for i in range(n):
        if i == 0:
            fn = alice
        elif i == 1:
            fn = bob
        else:
            fn = make_cube_reaction(i)
        reactions.append(UniformReaction(topology.out_edges(i), fn))
    return StatelessProtocol(
        topology, binary(), reactions, name=f"eq-gadget(n={n}, |S|={len(snake)})"
    )


def eq_snake_labeling(n: int, snake: Sequence[int], index: int, flag: int) -> Labeling:
    """The broadcast labeling (flag, flag, s_index) of Claim B.6."""
    topology = clique(n)
    vertex = list(snake)[index]
    per_node = [flag, flag] + [(vertex >> bit) & 1 for bit in range(n - 2)]
    values = tuple(per_node[u] for (u, _) in topology.edges)
    return Labeling(topology, values)


# ---------------------------------------------------------------------------
# The general-r EQ gadget with the (l2, l3) one-way latch.
# ---------------------------------------------------------------------------


def eq_latch_gadget_protocol(
    n: int,
    x: Sequence[int],
    y: Sequence[int],
    r: int,
    snake: Sequence[int] | None = None,
) -> StatelessProtocol:
    """The Theorem B.4 general-r gadget on K_n (hypercube on nodes 4..n-1).

    The snake is partitioned into segments of length 3r; ``x`` and ``y`` are
    indexed by *segment*.  Nodes 2 and 3 form a one-way latch: node 3 raises
    on any Alice/Bob disagreement, node 2 copies node 3, and once both are
    raised the hypercube freezes and the system converges.
    """
    d = n - 4
    if d < 3:
        raise ValidationError("the latch gadget needs n >= 7")
    if r < 1:
        raise ValidationError("r must be >= 1")
    snake = list(snake) if snake is not None else normalized_snake(d)
    orientation = SnakeOrientation(snake, d)
    segment_length = 3 * r
    segments = (len(snake) + segment_length - 1) // segment_length
    if len(x) != segments or len(y) != segments:
        raise ValidationError(f"inputs must have {segments} bits (one per segment)")
    topology = clique(n)
    cube_nodes = tuple(range(4, n))

    def segment_of(vertex: int) -> int:
        return orientation.position[vertex] // segment_length

    def alice(incoming, _input):
        by_node = {u: incoming[(u, 0)] for u in range(1, n)}
        vertex = _hypercube_vertex(by_node, cube_nodes)
        latched = by_node[2] == 1 and by_node[3] == 1
        if not latched and vertex in orientation.on_snake:
            bit = x[segment_of(vertex)]
        else:
            bit = 1
        return bit, bit

    def bob(incoming, _input):
        by_node = {u: incoming[(u, 1)] for u in range(n) if u != 1}
        vertex = _hypercube_vertex(by_node, cube_nodes)
        latched = by_node[2] == 1 and by_node[3] == 1
        if not latched and vertex in orientation.on_snake:
            bit = y[segment_of(vertex)]
        else:
            bit = 0
        return bit, bit

    def latch_copy(incoming, _input):
        bit = incoming[(3, 2)]
        return bit, bit

    def latch_raise(incoming, _input):
        by_node = {u: incoming[(u, 3)] for u in range(n) if u != 3}
        bit = 1 if (by_node[2] == 1 or by_node[0] != by_node[1]) else 0
        return bit, bit

    def make_cube_reaction(k: int):
        coord = k - 4

        def react(incoming, _input):
            by_node = {u: incoming[(u, k)] for u in range(n) if u != k}
            if by_node[2] == 1 and by_node[3] == 1:
                return 0, 0
            others = 0
            for bit, node in enumerate(cube_nodes):
                if node != k and by_node[node]:
                    others |= 1 << bit
            value = orientation.phi(coord, others)
            return value, value

        return react

    reactions = []
    for i in range(n):
        if i == 0:
            fn = alice
        elif i == 1:
            fn = bob
        elif i == 2:
            fn = latch_copy
        elif i == 3:
            fn = latch_raise
        else:
            fn = make_cube_reaction(i)
        reactions.append(UniformReaction(topology.out_edges(i), fn))
    return StatelessProtocol(
        topology,
        binary(),
        reactions,
        name=f"eq-latch-gadget(n={n}, r={r})",
    )


def eq_latch_snake_labeling(
    n: int, snake: Sequence[int], index: int, flag: int
) -> Labeling:
    """The broadcast labeling (flag, flag, 0, 0, s_index)."""
    topology = clique(n)
    vertex = list(snake)[index]
    per_node = [flag, flag, 0, 0] + [(vertex >> bit) & 1 for bit in range(n - 4)]
    values = tuple(per_node[u] for (u, _) in topology.edges)
    return Labeling(topology, values)


# ---------------------------------------------------------------------------
# The DISJOINTNESS gadget (Theorem B.7).
# ---------------------------------------------------------------------------


def disj_gadget_protocol(
    n: int,
    x: Sequence[int],
    y: Sequence[int],
    snake: Sequence[int] | None = None,
) -> StatelessProtocol:
    """The Theorem B.7 gadget on K_n.

    ``x`` and ``y`` are characteristic vectors of subsets of [q]; snake
    position j carries element ``I(j) = j mod q``.  The hypercube walks only
    while both flags are up; Alice and Bob can only *re-raise* their flags
    together at a position whose element both sets contain — so an
    oscillation exists iff the sets intersect.
    """
    d = n - 2
    if d < 3:
        raise ValidationError("the DISJ gadget needs n >= 5")
    if len(x) != len(y) or not x:
        raise ValidationError("x and y must be nonempty equal-length vectors")
    q = len(x)
    snake = list(snake) if snake is not None else normalized_snake(d)
    orientation = SnakeOrientation(snake, d)
    topology = clique(n)
    cube_nodes = tuple(range(2, n))

    def element_of(vertex: int) -> int:
        return orientation.position[vertex] % q

    def alice(incoming, _input):
        by_node = {u: incoming[(u, 0)] for u in range(1, n)}
        vertex = _hypercube_vertex(by_node, cube_nodes)
        if by_node[1] == 0 and vertex in orientation.on_snake:
            bit = x[element_of(vertex)]
        else:
            bit = 0
        return bit, bit

    def bob(incoming, _input):
        by_node = {u: incoming[(u, 1)] for u in range(n) if u != 1}
        vertex = _hypercube_vertex(by_node, cube_nodes)
        if by_node[0] == 0 and vertex in orientation.on_snake:
            bit = y[element_of(vertex)]
        else:
            bit = 0
        return bit, bit

    def make_cube_reaction(k: int):
        coord = k - 2

        def react(incoming, _input):
            by_node = {u: incoming[(u, k)] for u in range(n) if u != k}
            if not (by_node[0] == 1 and by_node[1] == 1):
                return 0, 0
            others = 0
            for bit, node in enumerate(cube_nodes):
                if node != k and by_node[node]:
                    others |= 1 << bit
            value = orientation.phi(coord, others)
            return value, value

        return react

    reactions = []
    for i in range(n):
        if i == 0:
            fn = alice
        elif i == 1:
            fn = bob
        else:
            fn = make_cube_reaction(i)
        reactions.append(UniformReaction(topology.out_edges(i), fn))
    return StatelessProtocol(
        topology, binary(), reactions, name=f"disj-gadget(n={n}, q={q})"
    )


def disj_snake_labeling(n: int, snake: Sequence[int], index: int) -> Labeling:
    """The broadcast labeling (1, 1, s_index) that seeds the oscillation."""
    topology = clique(n)
    vertex = list(snake)[index]
    per_node = [1, 1] + [(vertex >> bit) & 1 for bit in range(n - 2)]
    values = tuple(per_node[u] for (u, _) in topology.edges)
    return Labeling(topology, values)


def disj_oscillating_schedule(
    n: int, snake: Sequence[int], q: int, element: int
) -> ExplicitSchedule:
    """Claim B.8's r-fair schedule: walk the snake, pausing at every position
    carrying ``element`` to let Alice and Bob re-raise their flags.

    One period walks the whole snake; pauses activate {0, 1} twice (the flags
    drop together, then rise together); walk steps activate the hypercube
    nodes {2..n-1}.
    """
    cube = set(range(2, n))
    flags = {0, 1}
    steps: list[set[int]] = []
    for j in range(len(snake)):
        if j % q == element:
            steps.append(set(flags))
            steps.append(set(flags))
        steps.append(set(cube))
    return ExplicitSchedule(n, steps, cycle=True)
