"""Classical computation substrates: circuits, branching programs, TMs."""

from repro.substrates import branching_programs, circuits, turing
from repro.substrates.branching_programs import BPNode, BranchingProgram
from repro.substrates.circuits import Circuit, CircuitBuilder, Gate
from repro.substrates.turing import (
    Config,
    ConfigurationGraph,
    LogspaceMachine,
    Transition,
)

__all__ = [
    "BPNode",
    "BranchingProgram",
    "Circuit",
    "CircuitBuilder",
    "Config",
    "ConfigurationGraph",
    "Gate",
    "LogspaceMachine",
    "Transition",
    "branching_programs",
    "circuits",
    "turing",
]
