"""Logspace Turing machines with advice (the L/poly substrate of Theorem 5.2).

Theorem 5.2 simulates a logspace machine ``M`` with advice ``a(n)`` on the
unidirectional ring.  The proof works with the machine's explicit
*configuration space*

    Z = Q x Gamma^s x [s] x [n] (x advice-head position)

and the induced partial transition ``pi : Z x {0,1} -> Z`` ("if M is in
configuration z and reads input bit b, its next configuration is pi(z, b)").

This module provides a concrete machine model whose configuration graph is
materialized exactly, plus a library of small machines (parity, mod-k,
contains-one, first-equals-last, advice-equality) used by the ring-simulation
experiments.

Machine model:
* binary input tape of length n, read-only; the head is clamped to
  ``[0, n-1]`` and the transition function is told when it sits on the last
  cell (the standard end-marker convention);
* work tape of fixed length ``s`` over a finite alphabet, read/write, head
  clamped similarly — a genuinely logspace machine for constant/log ``s``;
* optional read-only advice string with its own clamped head;
* the transition sees ``(state, input bit, work symbol, advice symbol,
  at_end)``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from itertools import product

from repro.exceptions import ValidationError

#: Head movements.
LEFT, STAY, RIGHT = -1, 0, 1

#: A machine configuration: (state, work tape, work head, input head,
#: advice head).  Input bits are *not* part of the configuration — they are
#: read from outside, which is exactly what lets the ring protocol supply
#: them on the fly.
Config = tuple[str, tuple[str, ...], int, int, int]


@dataclass(frozen=True)
class Transition:
    """Result of one machine step."""

    state: str
    work_write: str
    work_move: int
    input_move: int
    advice_move: int = STAY


#: delta(state, input_bit, work_symbol, advice_symbol, at_end) -> Transition
DeltaFunction = Callable[[str, int, str, str, bool], Transition]


class LogspaceMachine:
    """A deterministic machine with bounded work tape and optional advice.

    Halting states (accept/reject) make their configurations fixed points of
    the configuration graph (``pi`` self-loops), matching the paper's
    requirement that the ring simulation can idle after halting.
    """

    def __init__(
        self,
        states: Sequence[str],
        initial_state: str,
        accept_states: Sequence[str],
        reject_states: Sequence[str],
        work_alphabet: Sequence[str],
        work_length: int,
        delta: DeltaFunction,
        blank: str = "#",
        name: str = "",
    ):
        self.states = tuple(states)
        if initial_state not in self.states:
            raise ValidationError("initial state unknown")
        self.initial_state = initial_state
        self.accept_states = frozenset(accept_states)
        self.reject_states = frozenset(reject_states)
        if not (self.accept_states <= set(self.states)):
            raise ValidationError("accept states unknown")
        if not (self.reject_states <= set(self.states)):
            raise ValidationError("reject states unknown")
        self.work_alphabet = tuple(work_alphabet)
        if blank not in self.work_alphabet:
            raise ValidationError("blank symbol must be in the work alphabet")
        if work_length < 1:
            raise ValidationError("work tape needs at least one cell")
        self.work_length = work_length
        self.delta = delta
        self.blank = blank
        self.name = name or "logspace-machine"

    def is_halting(self, state: str) -> bool:
        return state in self.accept_states or state in self.reject_states

    def initial_config(self) -> Config:
        return (self.initial_state, (self.blank,) * self.work_length, 0, 0, 0)

    def run(
        self, x: Sequence[int], advice: str = "", max_steps: int = 1_000_000
    ) -> int:
        """Direct execution; returns 1 on accept, 0 on reject."""
        graph = ConfigurationGraph(self, len(x), advice)
        config = self.initial_config()
        for _ in range(max_steps):
            state = config[0]
            if state in self.accept_states:
                return 1
            if state in self.reject_states:
                return 0
            config = graph.pi(config, x[config[3]])
        raise ValidationError(f"{self.name} did not halt within {max_steps} steps")


class ConfigurationGraph:
    """The explicit configuration space Z and transition pi of Theorem 5.2."""

    def __init__(self, machine: LogspaceMachine, n: int, advice: str = ""):
        if n < 1:
            raise ValidationError("input length must be >= 1")
        self.machine = machine
        self.n = n
        self.advice = advice
        advice_positions = max(len(advice), 1)
        self.configs: list[Config] = [
            (state, work, wh, ih, ah)
            for state in machine.states
            for work in product(machine.work_alphabet, repeat=machine.work_length)
            for wh in range(machine.work_length)
            for ih in range(n)
            for ah in range(advice_positions)
        ]
        self.index: dict[Config, int] = {
            config: k for k, config in enumerate(self.configs)
        }
        self.initial = machine.initial_config()

    @property
    def size(self) -> int:
        """|Z| — the counter bound used by the ring protocol."""
        return len(self.configs)

    def input_head(self, config: Config) -> int:
        """The input position this configuration is about to read."""
        return config[3]

    def accepting(self, config: Config) -> bool:
        """The F(z) of the proof of Theorem 5.2."""
        return config[0] in self.machine.accept_states

    def pi(self, config: Config, input_bit: int) -> Config:
        """One step of the machine; halting configurations self-loop."""
        state, work, wh, ih, ah = config
        if self.machine.is_halting(state):
            return config
        advice_symbol = self.advice[ah] if self.advice else "#"
        transition = self.machine.delta(
            state, input_bit, work[wh], advice_symbol, ih == self.n - 1
        )
        if transition.state not in self.machine.states:
            raise ValidationError(f"transition to unknown state {transition.state!r}")
        if transition.work_write not in self.machine.work_alphabet:
            raise ValidationError("transition writes a foreign work symbol")
        new_work = list(work)
        new_work[wh] = transition.work_write

        def clamp(value: int, bound: int) -> int:
            return max(0, min(bound - 1, value))

        return (
            transition.state,
            tuple(new_work),
            clamp(wh + transition.work_move, self.machine.work_length),
            clamp(ih + transition.input_move, self.n),
            clamp(ah + transition.advice_move, max(len(self.advice), 1)),
        )


# -- concrete machines --------------------------------------------------------


def mod_machine(
    modulus: int, accept_residues: Sequence[int], name: str = ""
) -> LogspaceMachine:
    """Accept iff (number of ones mod ``modulus``) is in ``accept_residues``."""
    if modulus < 2:
        raise ValidationError("modulus must be >= 2")
    states = tuple(f"r{k}" for k in range(modulus)) + ("accept", "reject")
    accept_set = frozenset(accept_residues)

    def delta(state, bit, work, _advice, at_end):
        residue = int(state[1:])
        new_residue = (residue + bit) % modulus
        if at_end:
            target = "accept" if new_residue in accept_set else "reject"
            return Transition(target, work, STAY, STAY)
        return Transition(f"r{new_residue}", work, STAY, RIGHT)

    return LogspaceMachine(
        states=states,
        initial_state="r0",
        accept_states=("accept",),
        reject_states=("reject",),
        work_alphabet=("#",),
        work_length=1,
        delta=delta,
        name=name or f"mod{modulus}",
    )


def parity_machine() -> LogspaceMachine:
    """Accept iff the input has an odd number of ones."""
    return mod_machine(2, accept_residues=(1,), name="parity")


def contains_one_machine() -> LogspaceMachine:
    """Accept iff some input bit is 1 (left-to-right scan)."""
    states = ("scan", "accept", "reject")

    def delta(state, bit, work, _advice, at_end):
        if bit == 1:
            return Transition("accept", work, STAY, STAY)
        if at_end:
            return Transition("reject", work, STAY, STAY)
        return Transition("scan", work, STAY, RIGHT)

    return LogspaceMachine(
        states=states,
        initial_state="scan",
        accept_states=("accept",),
        reject_states=("reject",),
        work_alphabet=("#",),
        work_length=1,
        delta=delta,
        name="contains-one",
    )


def first_equals_last_machine() -> LogspaceMachine:
    """Accept iff x_0 == x_{n-1}; stores x_0 on the work tape.

    Exercises a machine that genuinely writes to its work tape.
    """
    states = ("start", "scan", "accept", "reject")

    def delta(state, bit, work, _advice, at_end):
        if state == "start":
            stored = "1" if bit else "0"
            if at_end:  # n == 1: first and last coincide
                return Transition("accept", stored, STAY, STAY)
            return Transition("scan", stored, STAY, RIGHT)
        # scanning: work holds x_0
        if at_end:
            matches = (work == "1") == (bit == 1)
            return Transition("accept" if matches else "reject", work, STAY, STAY)
        return Transition("scan", work, STAY, RIGHT)

    return LogspaceMachine(
        states=states,
        initial_state="start",
        accept_states=("accept",),
        reject_states=("reject",),
        work_alphabet=("#", "0", "1"),
        work_length=1,
        delta=delta,
        name="first-equals-last",
    )


def advice_equality_machine() -> LogspaceMachine:
    """Accept iff the input equals the advice string (bitwise).

    A genuinely nonuniform machine: the advice carries an arbitrary target
    word per input length, demonstrating the "/poly" in L/poly.  The advice
    string must have length exactly n.
    """
    states = ("cmp", "accept", "reject")

    def delta(state, bit, work, advice_symbol, at_end):
        if advice_symbol not in ("0", "1") or int(advice_symbol) != bit:
            return Transition("reject", work, STAY, STAY)
        if at_end:
            return Transition("accept", work, STAY, STAY)
        return Transition("cmp", work, STAY, RIGHT, advice_move=RIGHT)

    return LogspaceMachine(
        states=states,
        initial_state="cmp",
        accept_states=("accept",),
        reject_states=("reject",),
        work_alphabet=("#",),
        work_length=1,
        delta=delta,
        name="advice-equality",
    )
