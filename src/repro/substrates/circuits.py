"""Boolean circuits (the P/poly substrate of Theorem 5.4).

A circuit is a DAG of fan-in-<=2 gates over inputs ``x_0 .. x_{n-1}``.  Gates
are stored in topological order (arguments always refer to earlier gates),
which is exactly the order the bidirectional-ring compiler schedules them in.

The module provides evaluation, a builder, synthesis from truth tables
(DNF — exponential, used for small reaction functions by the protocol
unroller), standard circuits (majority, parity, equality, threshold) and
seeded random circuits for property-based testing.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from itertools import product

from repro.exceptions import ValidationError

#: Gate operations and their arities.
OPS: dict[str, int] = {
    "INPUT": 0,
    "CONST": 0,
    "NOT": 1,
    "AND": 2,
    "OR": 2,
    "XOR": 2,
}


@dataclass(frozen=True)
class Gate:
    """One gate: an operation plus argument wire ids (earlier gate indices).

    ``INPUT`` gates use ``payload`` as the input index; ``CONST`` gates use it
    as the constant bit.
    """

    op: str
    args: tuple[int, ...] = ()
    payload: int = 0

    def __post_init__(self):
        if self.op not in OPS:
            raise ValidationError(f"unknown gate op {self.op!r}")
        if len(self.args) != OPS[self.op]:
            raise ValidationError(
                f"{self.op} takes {OPS[self.op]} args, got {len(self.args)}"
            )


class Circuit:
    """An immutable fan-in-2 Boolean circuit."""

    def __init__(self, n_inputs: int, gates: Sequence[Gate], output: int):
        if n_inputs < 0:
            raise ValidationError("n_inputs must be nonnegative")
        gates = tuple(gates)
        for k, gate in enumerate(gates):
            for arg in gate.args:
                if not 0 <= arg < k:
                    raise ValidationError(
                        f"gate {k} argument {arg} is not an earlier gate"
                    )
            if gate.op == "INPUT" and not 0 <= gate.payload < n_inputs:
                raise ValidationError(f"gate {k} reads input {gate.payload}")
            if gate.op == "CONST" and gate.payload not in (0, 1):
                raise ValidationError("CONST payload must be a bit")
        if not gates or not 0 <= output < len(gates):
            raise ValidationError("output must name a gate")
        self.n_inputs = n_inputs
        self.gates = gates
        self.output = output

    @property
    def size(self) -> int:
        return len(self.gates)

    def evaluate_all(self, x: Sequence[int]) -> list[int]:
        """Value of every gate on input ``x``."""
        if len(x) != self.n_inputs:
            raise ValidationError(f"expected {self.n_inputs} input bits")
        values: list[int] = []
        for gate in self.gates:
            if gate.op == "INPUT":
                value = x[gate.payload] & 1
            elif gate.op == "CONST":
                value = gate.payload
            elif gate.op == "NOT":
                value = 1 - values[gate.args[0]]
            elif gate.op == "AND":
                value = values[gate.args[0]] & values[gate.args[1]]
            elif gate.op == "OR":
                value = values[gate.args[0]] | values[gate.args[1]]
            else:  # XOR
                value = values[gate.args[0]] ^ values[gate.args[1]]
            values.append(value)
        return values

    def evaluate(self, x: Sequence[int]) -> int:
        return self.evaluate_all(x)[self.output]

    def depth(self) -> int:
        depths = []
        for gate in self.gates:
            if gate.op in ("INPUT", "CONST"):
                depths.append(0)
            else:
                depths.append(1 + max(depths[a] for a in gate.args))
        return depths[self.output]

    def __repr__(self) -> str:
        return f"<Circuit inputs={self.n_inputs} size={self.size}>"


class CircuitBuilder:
    """Incremental circuit construction with wire handles."""

    def __init__(self, n_inputs: int):
        self.n_inputs = n_inputs
        self._gates: list[Gate] = []
        self._input_wires: dict[int, int] = {}
        self._const_wires: dict[int, int] = {}

    def _add(self, gate: Gate) -> int:
        self._gates.append(gate)
        return len(self._gates) - 1

    def input(self, i: int) -> int:
        if i not in self._input_wires:
            self._input_wires[i] = self._add(Gate("INPUT", payload=i))
        return self._input_wires[i]

    def const(self, bit: int) -> int:
        bit = bit & 1
        if bit not in self._const_wires:
            self._const_wires[bit] = self._add(Gate("CONST", payload=bit))
        return self._const_wires[bit]

    def not_(self, a: int) -> int:
        return self._add(Gate("NOT", (a,)))

    def and_(self, a: int, b: int) -> int:
        return self._add(Gate("AND", (a, b)))

    def or_(self, a: int, b: int) -> int:
        return self._add(Gate("OR", (a, b)))

    def xor(self, a: int, b: int) -> int:
        return self._add(Gate("XOR", (a, b)))

    def and_all(self, wires: Sequence[int]) -> int:
        if not wires:
            return self.const(1)
        result = wires[0]
        for wire in wires[1:]:
            result = self.and_(result, wire)
        return result

    def or_all(self, wires: Sequence[int]) -> int:
        if not wires:
            return self.const(0)
        result = wires[0]
        for wire in wires[1:]:
            result = self.or_(result, wire)
        return result

    def table(self, arg_wires: Sequence[int], fn: Callable[..., int]) -> int:
        """Synthesize an arbitrary function of the given wires as a DNF.

        ``fn`` receives one bit per wire; the builder enumerates all 2^k
        assignments (so keep k small — this is used for reaction-function
        truth tables in the protocol unroller).
        """
        minterms: list[int] = []
        for assignment in product((0, 1), repeat=len(arg_wires)):
            if fn(*assignment):
                literals = [
                    wire if bit else self.not_(wire)
                    for wire, bit in zip(arg_wires, assignment, strict=True)
                ]
                minterms.append(self.and_all(literals))
        return self.or_all(minterms)

    def build(self, output: int) -> Circuit:
        return Circuit(self.n_inputs, self._gates, output)


# -- standard circuits -------------------------------------------------------


def and_circuit(n: int) -> Circuit:
    builder = CircuitBuilder(n)
    out = builder.and_all([builder.input(i) for i in range(n)])
    return builder.build(out)


def or_circuit(n: int) -> Circuit:
    builder = CircuitBuilder(n)
    out = builder.or_all([builder.input(i) for i in range(n)])
    return builder.build(out)


def parity_circuit(n: int) -> Circuit:
    builder = CircuitBuilder(n)
    out = builder.input(0)
    for i in range(1, n):
        out = builder.xor(out, builder.input(i))
    if n == 1:
        out = builder.input(0)
    return builder.build(out)


def threshold_circuit(n: int, k: int) -> Circuit:
    """1 iff at least ``k`` of the n inputs are 1 (dynamic-programming adder).

    Wire ``at_least[j]`` after processing input i means "at least j ones among
    the first i inputs"; each input updates the running thresholds.
    """
    builder = CircuitBuilder(n)
    if k <= 0:
        return builder.build(builder.const(1))
    if k > n:
        return builder.build(builder.const(0))
    at_least: list[int] = [builder.const(1)]  # at_least[0] is trivially true
    for i in range(n):
        xi = builder.input(i)
        new: list[int] = [at_least[0]]
        for j in range(1, min(i + 1, k) + 1):
            carry = at_least[j] if j < len(at_least) else builder.const(0)
            step = (
                builder.and_(at_least[j - 1], xi)
                if j - 1 < len(at_least)
                else builder.const(0)
            )
            new.append(builder.or_(carry, step))
        at_least = new
    return builder.build(at_least[k])


def majority_circuit(n: int) -> Circuit:
    """The paper's Maj_n: 1 iff sum(x) >= n/2, i.e. at least ceil(n/2) ones."""
    return threshold_circuit(n, (n + 1) // 2)


def equality_circuit(n: int) -> Circuit:
    """The paper's Eq_n: 1 iff n is even and the two input halves agree."""
    builder = CircuitBuilder(n)
    if n % 2 == 1:
        return builder.build(builder.const(0))
    half = n // 2
    bits = [
        builder.not_(builder.xor(builder.input(i), builder.input(i + half)))
        for i in range(half)
    ]
    return builder.build(builder.and_all(bits))


def from_function(fn: Callable[..., int], n: int) -> Circuit:
    """DNF synthesis of an arbitrary n-bit function (exponential in n)."""
    builder = CircuitBuilder(n)
    wires = [builder.input(i) for i in range(n)]
    return builder.build(builder.table(wires, fn))


def random_circuit(n_inputs: int, n_gates: int, seed: int = 0) -> Circuit:
    """A seeded random circuit for differential testing."""
    if n_gates < 1:
        raise ValidationError("need at least one gate")
    rng = random.Random(seed)
    builder = CircuitBuilder(n_inputs)
    wires = [builder.input(i) for i in range(n_inputs)]
    for _ in range(n_gates):
        op = rng.choice(("NOT", "AND", "OR", "XOR"))
        if op == "NOT":
            wire = builder.not_(rng.choice(wires))
        else:
            a, b = rng.choice(wires), rng.choice(wires)
            wire = getattr(builder, {"AND": "and_", "OR": "or_", "XOR": "xor"}[op])(
                a, b
            )
        wires.append(wire)
    return builder.build(wires[-1])
