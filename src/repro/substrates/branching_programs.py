"""Branching programs (the L/poly substrate of Theorem 5.2).

A branching program is a DAG of decision nodes; node ``v`` queries one input
variable and branches to its ``low``/``high`` successor; two terminal sinks
carry the answers 0 and 1.  Polynomial-size branching programs decide exactly
L/poly, the class Theorem 5.2 proves equal to ``OS^u_log`` (unidirectional-
ring protocols with logarithmic labels).

Nodes are stored topologically (successors have larger ids), with the two
sinks at the end; evaluation walks from the root.  The ring compiler in
``repro.power.ring_tm`` walks the same structure with a circulating token.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class BPNode:
    """A decision node: query ``var``; go to ``low`` on 0, ``high`` on 1."""

    var: int
    low: int
    high: int


class BranchingProgram:
    """An immutable branching program with topologically ordered nodes.

    Ids ``0 .. len(nodes)-1`` are decision nodes; id ``len(nodes)`` is the
    0-sink and ``len(nodes)+1`` the 1-sink.
    """

    def __init__(self, n_inputs: int, nodes: Sequence[BPNode], root: int = 0):
        nodes = tuple(nodes)
        sink0 = len(nodes)
        sink1 = len(nodes) + 1
        for k, node in enumerate(nodes):
            if not 0 <= node.var < n_inputs:
                raise ValidationError(f"node {k} queries unknown variable {node.var}")
            for succ in (node.low, node.high):
                if not (k < succ <= sink1):
                    raise ValidationError(
                        f"node {k} successor {succ} is not a later node or sink"
                    )
        if nodes and not 0 <= root < len(nodes):
            raise ValidationError("root must be a decision node")
        self.n_inputs = n_inputs
        self.nodes = nodes
        self.root = root
        self.sink0 = sink0
        self.sink1 = sink1

    @property
    def size(self) -> int:
        """Number of decision nodes (sinks excluded)."""
        return len(self.nodes)

    def is_sink(self, node_id: int) -> bool:
        return node_id >= len(self.nodes)

    def sink_value(self, node_id: int) -> int:
        if not self.is_sink(node_id):
            raise ValidationError(f"{node_id} is not a sink")
        return node_id - self.sink0

    def step(self, node_id: int, bit: int) -> int:
        """One decision step from a non-sink node."""
        node = self.nodes[node_id]
        return node.high if bit else node.low

    def evaluate(self, x: Sequence[int]) -> int:
        if len(x) != self.n_inputs:
            raise ValidationError(f"expected {self.n_inputs} input bits")
        current = self.root
        while not self.is_sink(current):
            current = self.step(current, x[self.nodes[current].var])
        return self.sink_value(current)

    def __repr__(self) -> str:
        return f"<BranchingProgram inputs={self.n_inputs} size={self.size}>"


# -- standard branching programs ---------------------------------------------


def parity_bp(n: int) -> BranchingProgram:
    """Width-2 parity: layer i tracks the running parity."""
    if n < 1:
        raise ValidationError("parity needs at least one input")
    nodes: list[BPNode] = []
    # layer i has nodes for parity 0 and parity 1 (layer n are the sinks)
    # id of (layer, parity): layer*2 + parity for layer < n
    sink0 = 2 * n
    sink1 = 2 * n + 1

    def node_id(layer: int, parity: int) -> int:
        if layer == n:
            return sink1 if parity else sink0
        return 2 * layer + parity

    for layer in range(n):
        for parity in (0, 1):
            nodes.append(
                BPNode(
                    var=layer,
                    low=node_id(layer + 1, parity),
                    high=node_id(layer + 1, 1 - parity),
                )
            )
    bp = BranchingProgram(n, nodes, root=0)
    # drop the unreachable (layer 0, parity 1) node? keep for simplicity
    return bp


def threshold_bp(n: int, k: int) -> BranchingProgram:
    """Width-(k+1) counting program: 1 iff at least k inputs are 1."""
    if n < 1:
        raise ValidationError("threshold needs at least one input")
    if k <= 0:
        # trivially true: a single node whose both branches accept
        return BranchingProgram(
            n, [BPNode(var=0, low=2, high=2)], root=0
        )
    if k > n:
        return BranchingProgram(n, [BPNode(var=0, low=1, high=1)], root=0)
    width = k + 1  # counts 0..k (k is absorbing)
    layers = n
    nodes: list[BPNode] = []
    sink0 = layers * width
    sink1 = layers * width + 1

    def node_id(layer: int, count: int) -> int:
        count = min(count, k)
        if layer == layers:
            return sink1 if count >= k else sink0
        return layer * width + count

    for layer in range(layers):
        for count in range(width):
            nodes.append(
                BPNode(
                    var=layer,
                    low=node_id(layer + 1, count),
                    high=node_id(layer + 1, count + 1),
                )
            )
    return BranchingProgram(n, nodes, root=0)


def majority_bp(n: int) -> BranchingProgram:
    """The paper's Maj_n as a counting branching program."""
    return threshold_bp(n, (n + 1) // 2)


def equality_bp(n: int) -> BranchingProgram:
    """The paper's Eq_n: first half equals second half (n even), else 0.

    Variables are queried in the order x_0, x_{n/2}, x_1, x_{n/2+1}, ...; the
    program checks each pair with two nodes, giving width 2 and size ~2n.
    """
    if n % 2 == 1 or n == 0:
        return BranchingProgram(
            max(n, 1), [BPNode(var=0, low=1, high=1)], root=0
        )
    half = n // 2
    nodes: list[BPNode] = []
    sink0 = 3 * half
    sink1 = 3 * half + 1
    # per pair i: node a (query x_i), then nodes b0/b1 (query x_{i+half})
    for i in range(half):
        base = 3 * i
        next_pair = 3 * (i + 1) if i + 1 < half else sink1
        nodes.append(BPNode(var=i, low=base + 1, high=base + 2))  # a
        nodes.append(BPNode(var=i + half, low=next_pair, high=sink0))  # b0
        nodes.append(BPNode(var=i + half, low=sink0, high=next_pair))  # b1
    return BranchingProgram(n, nodes, root=0)


def from_function(fn: Callable[..., int], n: int) -> BranchingProgram:
    """Complete decision tree over x_0..x_{n-1} (exponential; small n only)."""
    if n < 1:
        raise ValidationError("need at least one input")
    # tree node for each prefix assignment; laid out level by level
    nodes: list[BPNode] = []
    level_start = [0]
    for level in range(n):
        level_start.append(level_start[-1] + (1 << level))
    total = level_start[n]
    sink0 = total
    sink1 = total + 1

    def tree_id(level: int, prefix: int) -> int:
        return level_start[level] + prefix

    for level in range(n):
        for prefix in range(1 << level):
            if level + 1 < n:
                low = tree_id(level + 1, prefix << 1)
                high = tree_id(level + 1, (prefix << 1) | 1)
            else:
                low_bits = _prefix_bits(prefix << 1, n)
                high_bits = _prefix_bits((prefix << 1) | 1, n)
                low = sink1 if fn(*low_bits) else sink0
                high = sink1 if fn(*high_bits) else sink0
            nodes.append(BPNode(var=level, low=low, high=high))
    return BranchingProgram(n, nodes, root=0)


def _prefix_bits(prefix: int, n: int) -> tuple[int, ...]:
    return tuple((prefix >> (n - 1 - i)) & 1 for i in range(n))


def random_bp(n_inputs: int, n_nodes: int, seed: int = 0) -> BranchingProgram:
    """A seeded random (topological) branching program."""
    if n_nodes < 1:
        raise ValidationError("need at least one node")
    rng = random.Random(seed)
    sink0 = n_nodes
    sink1 = n_nodes + 1
    nodes = []
    for k in range(n_nodes):
        low = rng.randrange(k + 1, sink1 + 1)
        high = rng.randrange(k + 1, sink1 + 1)
        nodes.append(BPNode(var=rng.randrange(n_inputs), low=low, high=high))
    return BranchingProgram(n_inputs, nodes, root=0)
