"""Asynchronous circuits with feedback loops as stateless protocols.

A gate network with feedback is a stateless computation: the labels are wire
values, a gate's reaction recomputes its output from its fan-in wires, and
the schedule models gate delays.  The classics:

* **SR latch** (two cross-coupled NOR gates): with S = R = 0 both
  ``(Q, Q') = (1, 0)`` and ``(0, 1)`` are stable — two stable labelings, so
  by Theorem 3.1 the latch is not label (n-1)-stabilizing; the synchronous
  schedule exhibits the textbook metastable oscillation ``00 <-> 11``.
* **Ring oscillator** (odd cycle of inverters): no stable labeling at all —
  a *structurally* non-stabilizing circuit that oscillates under every fair
  schedule.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.core.labels import binary
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.standard import unidirectional_ring
from repro.graphs.topology import Topology

#: gate(input_bit, incoming wire values) -> output bit
GateFunction = Callable[[int, Mapping[int, int]], int]


def feedback_circuit_protocol(
    topology: Topology, gates: Sequence[GateFunction], name: str = ""
) -> StatelessProtocol:
    """A gate per node; edge (u, v) wires u's output into gate v.

    The node's private input ``x_i`` models an external circuit input pin.
    """
    if len(gates) != topology.n:
        raise ValidationError("need one gate per node")

    def make_reaction(i: int):
        gate = gates[i]

        def react(incoming, x):
            by_node = {u: incoming[(u, i)] for u in topology.in_neighbors(i)}
            value = gate(x, by_node) & 1
            return value, value

        return UniformReaction(topology.out_edges(i), react)

    return StatelessProtocol(
        topology,
        binary(),
        [make_reaction(i) for i in range(topology.n)],
        name=name or "feedback-circuit",
    )


def sr_latch() -> StatelessProtocol:
    """Two cross-coupled NOR gates; node 0 takes S, node 1 takes R.

    Run with inputs (S, R): ``(0, 0)`` holds state (two stable labelings),
    ``(1, 0)`` resets Q to 0 / Q' to 1, etc.
    """
    topology = Topology(2, [(0, 1), (1, 0)], name="sr-latch")

    def nor(x, by_node):
        other = next(iter(by_node.values()))
        return 0 if (x or other) else 1

    return feedback_circuit_protocol(topology, [nor, nor], name="sr-latch")


def ring_oscillator(n_inverters: int) -> StatelessProtocol:
    """An odd cycle of NOT gates: no stable labeling exists."""
    if n_inverters < 3 or n_inverters % 2 == 0:
        raise ValidationError("a ring oscillator needs an odd number >= 3")
    topology = unidirectional_ring(n_inverters)

    def inverter(_x, by_node):
        value = next(iter(by_node.values()))
        return 1 - value

    return feedback_circuit_protocol(
        topology, [inverter] * n_inverters, name=f"ring-oscillator({n_inverters})"
    )
