"""Congestion dynamics: selfish load balancing over parallel links.

Every player repeatedly moves to the link that is least loaded by the
*other* players (deterministic tie-break toward lower link index).  Balanced
splits are equilibria; since several balanced splits exist, Theorem 3.1's
corollary applies and the dynamics are not (n-1)-stabilizing — players can
chase each other between links forever under fair-but-adversarial timing.
"""

from __future__ import annotations

from repro.core.protocol import StatelessProtocol
from repro.dynamics.best_response import GraphicalGame, best_response_protocol
from repro.exceptions import ValidationError
from repro.graphs.standard import clique
from repro.graphs.topology import Topology


def congestion_game(n_players: int, n_links: int = 2) -> GraphicalGame:
    """All players observe all others (clique); cost = load on own link."""
    if n_players < 2:
        raise ValidationError("need at least two players")
    if n_links < 2:
        raise ValidationError("need at least two links")
    topology: Topology = clique(n_players)
    links = tuple(range(n_links))

    def utility(_player, own, neighbors):
        load = 1 + sum(1 for choice in neighbors.values() if choice == own)
        return -load

    return GraphicalGame(
        topology,
        [links] * n_players,
        utility,
        name=f"congestion({n_players}x{n_links})",
    )


def congestion_protocol(n_players: int, n_links: int = 2) -> StatelessProtocol:
    """The stateless best-response protocol of the congestion game."""
    return best_response_protocol(congestion_game(n_players, n_links))


def link_loads(outputs, n_links: int = 2) -> list[int]:
    loads = [0] * n_links
    for choice in outputs:
        loads[choice] += 1
    return loads
