"""Best-response dynamics as stateless computation (Sections 1 and 3).

The paper observes that systems in which strategic nodes repeatedly best
respond to each other's most recent actions — BGP routing, congestion
control, diffusion of technologies, asynchronous circuits — are stateless
computations: a player's label is its current strategy and its reaction
function is its best-response map.  Theorem 3.1 then yields non-convergence
results for all of them: **two pure equilibria imply the dynamics are not
(n-1)-stabilizing**.

This module provides graphical games (utilities depend on graph neighbors),
the game-to-protocol compiler, and exhaustive equilibrium enumeration; the
correspondence *stable labeling <-> (tie-break-respecting) pure Nash
equilibrium* is machine-checked in the tests.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from itertools import product

from repro.core.labels import ExplicitLabelSpace
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology

#: utility(player, own_strategy, neighbor_strategies) -> comparable
UtilityFunction = Callable[[int, object, Mapping[int, object]], float]


class GraphicalGame:
    """A game on a digraph: player i observes its in-neighbors' strategies.

    ``strategies[i]`` lists player i's strategies in *tie-break order*: when
    several strategies maximize utility, the best response is the earliest
    maximizer, making the dynamics deterministic (the paper's model requires
    deterministic reaction functions).
    """

    def __init__(
        self,
        topology: Topology,
        strategies: Sequence[Sequence],
        utility: UtilityFunction,
        name: str = "",
    ):
        if len(strategies) != topology.n:
            raise ValidationError("need one strategy set per player")
        if any(len(options) == 0 for options in strategies):
            raise ValidationError("every player needs at least one strategy")
        self.topology = topology
        self.strategies = tuple(tuple(options) for options in strategies)
        self.utility = utility
        self.name = name or "graphical-game"

    @property
    def n(self) -> int:
        return self.topology.n

    def best_response(self, player: int, neighbor_strategies: Mapping[int, object]):
        """The earliest utility-maximizing strategy of ``player``."""
        best = None
        best_value = None
        for strategy in self.strategies[player]:
            value = self.utility(player, strategy, neighbor_strategies)
            if best_value is None or value > best_value:
                best = strategy
                best_value = value
        return best

    def profile_neighbors(self, player: int, profile: Sequence) -> dict[int, object]:
        return {u: profile[u] for u in self.topology.in_neighbors(player)}

    def is_pure_nash(self, profile: Sequence) -> bool:
        """No player can strictly improve by deviating."""
        for player in range(self.n):
            neighbors = self.profile_neighbors(player, profile)
            current = self.utility(player, profile[player], neighbors)
            for strategy in self.strategies[player]:
                if self.utility(player, strategy, neighbors) > current:
                    return False
        return True

    def pure_nash_equilibria(self) -> list[tuple]:
        """Exhaustive enumeration (small games only)."""
        return [
            profile
            for profile in product(*self.strategies)
            if self.is_pure_nash(profile)
        ]

    def best_response_equilibria(self) -> list[tuple]:
        """Profiles where every player's strategy equals its deterministic
        best response — exactly the stable labelings of the compiled
        protocol.  A subset of the pure Nash equilibria."""
        return [
            profile
            for profile in product(*self.strategies)
            if all(
                self.best_response(i, self.profile_neighbors(i, profile))
                == profile[i]
                for i in range(self.n)
            )
        ]


def best_response_protocol(game: GraphicalGame) -> StatelessProtocol:
    """Compile a game into the stateless protocol of its dynamics.

    Labels are strategies (broadcast to all out-neighbors); each activation
    replaces a player's strategy with its best response to the neighbors'
    most recent strategies; the output is the chosen strategy.
    """
    all_strategies: list = []
    for options in game.strategies:
        for strategy in options:
            if strategy not in all_strategies:
                all_strategies.append(strategy)
    label_space = ExplicitLabelSpace(all_strategies, name=f"{game.name}-strategies")
    topology = game.topology

    def make_reaction(i: int):
        def react(incoming, _x):
            neighbor_strategies = {
                u: incoming[(u, i)] for (u, _) in topology.in_edges(i)
            }
            choice = game.best_response(i, neighbor_strategies)
            return choice, choice

        return UniformReaction(topology.out_edges(i), react)

    return StatelessProtocol(
        topology,
        label_space,
        [make_reaction(i) for i in range(game.n)],
        name=f"best-response({game.name})",
    )


def coordination_game(topology: Topology, options: Sequence = (0, 1)) -> GraphicalGame:
    """Players want to match their neighbors: u_i = #agreeing neighbors.

    Has (at least) one pure equilibrium per option — the canonical
    multiple-equilibria instance for the Theorem 3.1 corollary.
    """

    def utility(_player, own, neighbors):
        return sum(1 for strategy in neighbors.values() if strategy == own)

    return GraphicalGame(
        topology,
        [tuple(options)] * topology.n,
        utility,
        name="coordination",
    )


def anti_coordination_game(
    topology: Topology, options: Sequence = (0, 1)
) -> GraphicalGame:
    """Players want to differ from their neighbors (graph-coloring flavor)."""

    def utility(_player, own, neighbors):
        return sum(1 for strategy in neighbors.values() if strategy != own)

    return GraphicalGame(
        topology,
        [tuple(options)] * topology.n,
        utility,
        name="anti-coordination",
    )
