"""BGP interdomain routing as stateless computation (Section 1.1).

The paper's headline motivation: a BGP router maps the most recent route
advertisements of its neighbors to a route choice and new advertisements —
no other state.  The classical formalization is the **Stable Paths Problem**
(Griffin, Shepherd, Wilfong [14]): every node has a ranked list of permitted
paths to a destination; the dynamics repeatedly let nodes pick their
best-ranked available path.

This module implements SPP instances, the BGP best-response protocol (labels
are advertised paths), and the canonical gadgets:

* ``disagree`` — two stable routing trees: by Theorem 3.1 the dynamics are
  not label (n-1)-stabilizing (BGP "route flapping" under fair activation);
* ``bad_gadget`` — no stable routing tree at all: every fair run oscillates;
* ``good_gadget`` — a unique stable tree, reached from every initial state.

Paths are tuples of nodes ending at the destination; the empty route is
``()``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from itertools import product

from repro.core.labels import ExplicitLabelSpace
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology

#: The "no route" label.
NO_ROUTE: tuple = ()

Path = tuple[int, ...]


class SPPInstance:
    """A Stable Paths Problem instance.

    ``permitted[i]`` lists node i's permitted paths to the destination in
    strictly decreasing preference (earlier = better).  Every path must start
    at i, end at the destination, be simple, and follow graph edges.
    """

    def __init__(
        self,
        topology: Topology,
        destination: int,
        permitted: Mapping[int, Sequence[Path]],
        name: str = "",
    ):
        self.topology = topology
        self.destination = destination
        self.name = name or "spp"
        self.permitted: dict[int, tuple[Path, ...]] = {}
        for i in range(topology.n):
            if i == destination:
                continue
            paths = tuple(tuple(p) for p in permitted.get(i, ()))
            for path in paths:
                self._validate_path(i, path)
            self.permitted[i] = paths

    def _validate_path(self, i: int, path: Path) -> None:
        if not path or path[0] != i or path[-1] != self.destination:
            raise ValidationError(f"path {path} must run from {i} to the destination")
        if len(set(path)) != len(path):
            raise ValidationError(f"path {path} is not simple")
        for u, v in zip(path, path[1:], strict=False):
            if not self.topology.has_edge(u, v):
                raise ValidationError(f"path {path} uses missing edge {(u, v)}")

    def rank(self, i: int, path: Path) -> int:
        """Smaller is better; permitted paths only."""
        return self.permitted[i].index(path)

    def best_choice(self, i: int, advertised: Mapping[int, Path]) -> Path:
        """Node i's BGP best response to its neighbors' advertisements."""
        best = NO_ROUTE
        best_rank = None
        for path in advertised.values():
            if path == NO_ROUTE or i in path:
                continue
            candidate = (i, *path)
            if candidate not in self.permitted[i]:
                continue
            rank = self.rank(i, candidate)
            if best_rank is None or rank < best_rank:
                best = candidate
                best_rank = rank
        return best

    def all_labels(self) -> tuple:
        labels = [NO_ROUTE, (self.destination,)]
        for paths in self.permitted.values():
            labels.extend(paths)
        seen: list = []
        for label in labels:
            if label not in seen:
                seen.append(label)
        return tuple(seen)

    def stable_solutions(self) -> list[dict[int, Path]]:
        """All assignments node -> path that are simultaneously best responses.

        Exhaustive over permitted paths (plus the empty route) — the SPP
        "stable solutions", in one-to-one correspondence with the stable
        labelings of the BGP protocol.
        """
        nodes = [i for i in range(self.topology.n) if i != self.destination]
        choice_sets = [
            (NO_ROUTE, *self.permitted[i]) for i in nodes
        ]
        solutions = []
        for combo in product(*choice_sets):
            assignment = dict(zip(nodes, combo, strict=True))
            assignment[self.destination] = (self.destination,)
            if all(
                self.best_choice(
                    i,
                    {
                        u: assignment[u]
                        for u in self.topology.in_neighbors(i)
                    },
                )
                == assignment[i]
                for i in nodes
            ):
                solutions.append(assignment)
        return solutions


def bgp_protocol(instance: SPPInstance) -> StatelessProtocol:
    """The stateless BGP protocol of an SPP instance.

    Every node broadcasts its currently selected path; the destination
    constantly advertises ``(destination,)``; outputs are the selected paths.
    """
    topology = instance.topology
    label_space = ExplicitLabelSpace(
        instance.all_labels(), name=f"{instance.name}-paths"
    )

    def make_reaction(i: int):
        if i == instance.destination:
            def react(_incoming, _x):
                path = (instance.destination,)
                return path, path

        else:
            def react(incoming, _x):
                advertised = {
                    u: incoming[(u, i)] for u in topology.in_neighbors(i)
                }
                choice = instance.best_choice(i, advertised)
                return choice, choice

        return UniformReaction(topology.out_edges(i), react)

    return StatelessProtocol(
        topology,
        label_space,
        [make_reaction(i) for i in range(topology.n)],
        name=f"bgp({instance.name})",
    )


# -- canonical gadgets ---------------------------------------------------------


def _triangle_with_destination() -> Topology:
    """Destination 0; nodes 1, 2, 3 mutually connected and connected to 0."""
    edges = []
    for u in (1, 2, 3):
        edges.append((u, 0))
        edges.append((0, u))
    for u, v in ((1, 2), (2, 3), (3, 1)):
        edges.append((u, v))
        edges.append((v, u))
    return Topology(4, edges, name="spp-triangle")


def disagree() -> SPPInstance:
    """The DISAGREE gadget: two nodes that each prefer routing via the other.

    Two stable solutions — the minimal BGP instance hit by Theorem 3.1.
    """
    edges = [(1, 0), (0, 1), (2, 0), (0, 2), (1, 2), (2, 1)]
    topology = Topology(3, edges, name="disagree-graph")
    permitted = {
        1: [(1, 2, 0), (1, 0)],
        2: [(2, 1, 0), (2, 0)],
    }
    return SPPInstance(topology, 0, permitted, name="disagree")


def bad_gadget() -> SPPInstance:
    """Griffin's BAD GADGET: no stable solution; BGP oscillates forever."""
    topology = _triangle_with_destination()
    permitted = {
        1: [(1, 2, 0), (1, 0)],
        2: [(2, 3, 0), (2, 0)],
        3: [(3, 1, 0), (3, 0)],
    }
    return SPPInstance(topology, 0, permitted, name="bad-gadget")


def good_gadget() -> SPPInstance:
    """A safe instance: unique stable solution, reached from anywhere.

    Nodes prefer the direct route; neighbor routes are fallbacks.
    """
    topology = _triangle_with_destination()
    permitted = {
        1: [(1, 0), (1, 2, 0)],
        2: [(2, 0), (2, 3, 0)],
        3: [(3, 0), (3, 1, 0)],
    }
    return SPPInstance(topology, 0, permitted, name="good-gadget")


def shortest_path_instance(topology: Topology, destination: int = 0) -> SPPInstance:
    """Permit every simple path, ranked by length (then lexicographically):
    classical shortest-path routing, always uniquely stable."""
    n = topology.n
    paths_from: dict[int, list[Path]] = {i: [] for i in range(n)}

    def extend(path: tuple[int, ...]):
        for u in topology.in_neighbors(path[0]):
            if u in path:
                continue
            new_path = (u, *path)
            paths_from[u].append(new_path)
            extend(new_path)

    extend((destination,))
    permitted = {
        i: sorted(paths_from[i], key=lambda p: (len(p), p))
        for i in range(n)
        if i != destination
    }
    return SPPInstance(topology, destination, permitted, name="shortest-path")
