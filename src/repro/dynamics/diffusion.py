"""Diffusion of technologies in social networks (Morris contagion [23]).

Each agent repeatedly best-responds to its neighbors' technology choices:
adopt technology A iff at least a fraction ``theta`` of neighbors use A.
Both the all-A and all-B profiles are equilibria, so Theorem 3.1 applies:
the dynamics cannot be label (n-1)-stabilizing — a network-wide technology
war can flap forever under fair activation.

The module also exposes the classical *contagion* phenomenon: for
``theta <= 1/2`` a small seed set of adopters can take over a ring.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.configuration import Labeling
from repro.core.protocol import StatelessProtocol
from repro.dynamics.best_response import GraphicalGame, best_response_protocol
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology

TECH_A = 1
TECH_B = 0


def contagion_game(topology: Topology, theta: float) -> GraphicalGame:
    """The threshold-adoption game: utility favors A iff the adopting
    fraction of in-neighbors is at least ``theta`` (ties prefer A —
    strategies are listed A-first)."""
    if not 0 < theta <= 1:
        raise ValidationError("threshold must be in (0, 1]")

    def utility(player, own, neighbors):
        if not neighbors:
            return 0.0
        fraction = sum(
            1 for strategy in neighbors.values() if strategy == TECH_A
        ) / len(neighbors)
        if own == TECH_A:
            return fraction - theta
        return theta - fraction

    return GraphicalGame(
        topology,
        [(TECH_A, TECH_B)] * topology.n,
        utility,
        name=f"contagion(theta={theta})",
    )


def contagion_protocol(topology: Topology, theta: float) -> StatelessProtocol:
    """The stateless protocol of the threshold-adoption dynamics."""
    return best_response_protocol(contagion_game(topology, theta))


def seeded_labeling(topology: Topology, adopters: Iterable[int]) -> Labeling:
    """Everyone broadcasts B except the seed set, which broadcasts A."""
    adopters = set(adopters)
    values = tuple(
        TECH_A if u in adopters else TECH_B for (u, _) in topology.edges
    )
    return Labeling(topology, values)


def adoption_counts(outputs) -> int:
    """Number of nodes currently using technology A."""
    return sum(1 for value in outputs if value == TECH_A)
