"""Best-response dynamics applications (Sections 1 and 3)."""

from repro.dynamics.async_circuits import (
    feedback_circuit_protocol,
    ring_oscillator,
    sr_latch,
)
from repro.dynamics.best_response import (
    GraphicalGame,
    anti_coordination_game,
    best_response_protocol,
    coordination_game,
)
from repro.dynamics.bgp import (
    NO_ROUTE,
    SPPInstance,
    bad_gadget,
    bgp_protocol,
    disagree,
    good_gadget,
    shortest_path_instance,
)
from repro.dynamics.congestion import (
    congestion_game,
    congestion_protocol,
    link_loads,
)
from repro.dynamics.diffusion import (
    TECH_A,
    TECH_B,
    adoption_counts,
    contagion_game,
    contagion_protocol,
    seeded_labeling,
)

__all__ = [
    "GraphicalGame",
    "NO_ROUTE",
    "SPPInstance",
    "TECH_A",
    "TECH_B",
    "adoption_counts",
    "anti_coordination_game",
    "bad_gadget",
    "best_response_protocol",
    "bgp_protocol",
    "congestion_game",
    "congestion_protocol",
    "contagion_game",
    "contagion_protocol",
    "coordination_game",
    "disagree",
    "feedback_circuit_protocol",
    "good_gadget",
    "link_loads",
    "ring_oscillator",
    "seeded_labeling",
    "shortest_path_instance",
    "sr_latch",
]
