"""One execution-policy object for every performance knob in the stack.

The repository grew three performance layers — the compiled engine, the
vectorized batch backend, and the frontier-parallel exploration core — and
each grew its own keyword spelling of "how should this run": ``executor=``
and ``kernel=`` and ``processes=`` on the sweep runners, ``frontier=`` /
``symmetry=`` / ``spill_dir=`` / ``batch_min_rows=`` on the exploration
graph.  :class:`ExecutionPolicy` unifies those into one frozen value object
accepted everywhere (:func:`repro.analysis.run_sweep`,
:func:`repro.analysis.run_resilience_sweep`, :func:`repro.service.plan_sweep`,
:func:`repro.service.execute_plan`, :meth:`repro.service.SweepService.submit`,
:class:`repro.stabilization.ExplorationGraph`) — and, just as importantly, it
is the input domain of the symbolic cost model
(:mod:`repro.analysis.costmodel`): estimation, planning, admission control,
and execution all describe *how a computation runs* with the same object.

A policy is strictly **cosmetic with respect to results and cache keys**:
every field changes how fast an answer is produced, never which answer.
Case fingerprints (:mod:`repro.service.fingerprint`) exclude it by
construction, so identical physics shares cache entries across executors,
kernels, and policy spellings.

Fields that a consumer does not use are ignored (a sweep does not read
``frontier``; an exploration graph does not read ``processes``), so one
policy value can drive a whole pipeline.

The legacy scattered keywords keep working on every entry point through
shims that emit :class:`DeprecationWarning`; internal call sites are already
migrated, and the shim test suite runs under
``-W error::DeprecationWarning`` to keep it that way.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields, replace

from repro.exceptions import ValidationError

#: Executors the sweep runners accept.
SWEEP_EXECUTORS = ("serial", "batch")
#: Batch compute kernels (``None`` defers to the batch backend's default).
BATCH_KERNELS = ("numpy", "numba", "auto")
#: Frontier-expansion engines for the exploration core.
FRONTIER_MODES = ("auto", "batch", "serial")
#: Below this many rows, frontier groups step serially (kernel dispatch
#: overhead would dominate).  Shared default with the exploration core.
DEFAULT_BATCH_MIN_ROWS = 32

#: Sentinel distinguishing "not passed" from any legitimate value, so the
#: deprecation shims can detect explicitly-passed legacy keywords even when
#: the passed value equals the default.
UNSET = type("_Unset", (), {"__repr__": lambda self: "<unset>"})()


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a computation should run — never what it computes.

    * ``executor`` — sweep case backend: ``"serial"`` (one compiled run
      loop per case) or ``"batch"`` (vectorized lockstep, requires numpy).
    * ``kernel`` — batch compute kernel: ``"numpy"``, ``"numba"``, or
      ``"auto"``; requires ``executor="batch"`` (``None`` defers).
    * ``processes`` — ``multiprocessing`` fan-out width for sweeps
      (``None``/``1`` means in-process).
    * ``chunk_rows`` — batch sub-batch size (rows per resident stack);
      ``None`` uses the backend default
      (:data:`repro.core.batch.SWEEP_CHUNK_ROWS`); requires
      ``executor="batch"``.
    * ``frontier`` — exploration expansion engine: ``"auto"``, ``"batch"``,
      or ``"serial"``.
    * ``symmetry`` — exploration quotient: ``"none"``, ``"auto"``, or an
      explicit :class:`~repro.graphs.automorphisms.SymmetryGroup`.
    * ``spill_dir`` — directory for disk-backed (memmap) edge/parent
      arrays in the exploration core; ``None`` keeps them in memory.
    * ``batch_min_rows`` — smallest frontier group worth a kernel call.

    Frozen and value-compared; derive variants with :meth:`merged`.
    """

    executor: str = "serial"
    kernel: str | None = None
    processes: int | None = None
    chunk_rows: int | None = None
    frontier: str = "auto"
    symmetry: object = "none"
    spill_dir: str | os.PathLike | None = None
    batch_min_rows: int = DEFAULT_BATCH_MIN_ROWS

    def __post_init__(self):
        if self.executor not in SWEEP_EXECUTORS:
            raise ValidationError(
                f"unknown executor {self.executor!r};"
                f" expected one of {sorted(SWEEP_EXECUTORS)}"
            )
        if self.kernel is not None:
            if self.kernel not in BATCH_KERNELS:
                raise ValidationError(
                    f"unknown kernel {self.kernel!r};"
                    f" expected one of {sorted(BATCH_KERNELS)}"
                )
            if self.executor != "batch":
                raise ValidationError(
                    "kernel= selects a batch compute kernel;"
                    " it requires executor='batch'"
                )
        if self.chunk_rows is not None:
            if self.executor != "batch":
                raise ValidationError(
                    "chunk_rows= sizes batch sub-batches;"
                    " it requires executor='batch'"
                )
            if self.chunk_rows < 1:
                raise ValidationError("chunk_rows must be >= 1")
        if self.processes is not None and self.processes < 1:
            raise ValidationError("processes must be >= 1")
        if self.frontier not in FRONTIER_MODES:
            raise ValidationError(
                f"unknown frontier mode {self.frontier!r};"
                f" expected one of {sorted(FRONTIER_MODES)}"
            )
        if self.batch_min_rows < 1:
            raise ValidationError("batch_min_rows must be >= 1")

    def merged(self, **overrides) -> "ExecutionPolicy":
        """A copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        changed = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if getattr(self, f.name) != f.default
        )
        return f"ExecutionPolicy({changed or 'defaults'})"


#: The do-nothing-special policy every entry point defaults to.
DEFAULT_POLICY = ExecutionPolicy()


def resolve_policy(
    policy: ExecutionPolicy | None,
    legacy: dict,
    *,
    api: str,
    fallback: ExecutionPolicy | None = None,
    stacklevel: int = 3,
) -> ExecutionPolicy:
    """The effective policy for one call, shimming legacy keywords.

    ``legacy`` maps field names to the values the caller passed (or
    :data:`UNSET`).  Explicitly-passed legacy keywords emit one
    :class:`DeprecationWarning` naming the replacement and are folded into
    the fallback policy; combining them with an explicit ``policy=`` is an
    error (the call would be ambiguous).  With neither, the ``fallback``
    (e.g. a plan's attached policy) or :data:`DEFAULT_POLICY` applies.
    """
    given = {
        name: value for name, value in legacy.items() if value is not UNSET
    }
    if policy is not None and not isinstance(policy, ExecutionPolicy):
        raise ValidationError(
            f"{api}: policy must be an ExecutionPolicy,"
            f" got {type(policy).__name__}"
        )
    if given:
        if policy is not None:
            raise ValidationError(
                f"{api}: pass either policy= or the legacy keyword(s)"
                f" {sorted(given)}, not both"
            )
        warnings.warn(
            f"{api}: the {', '.join(sorted(given))} keyword(s) are"
            f" deprecated; pass policy=ExecutionPolicy("
            + ", ".join(f"{k}=..." for k in sorted(given))
            + ") instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return (fallback or DEFAULT_POLICY).merged(**given)
    if policy is not None:
        return policy
    return fallback or DEFAULT_POLICY
