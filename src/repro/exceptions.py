"""Exception hierarchy for the stateless-computation library."""


class ReproError(Exception):
    """Base class for all library errors."""


class ValidationError(ReproError):
    """A model object (graph, protocol, labeling, ...) is malformed."""


class ScheduleError(ReproError):
    """A schedule was queried outside its defined domain."""


class ConvergenceError(ReproError):
    """A run did not reach the state a caller required."""


class SearchBudgetExceeded(ReproError):
    """An exhaustive search exceeded its configured state budget."""


class FingerprintError(ReproError):
    """An object cannot be canonicalized into a stable cache fingerprint."""


class JobError(ReproError):
    """A sweep-service job failed, was cancelled, or does not exist."""


class AdmissionError(JobError):
    """A sweep-service job was refused by the admission policy."""
