"""Exception hierarchy for the stateless-computation library.

Also home to :class:`Diagnostic`, the record type every static-analysis
pass (:mod:`repro.statics`) emits: exceptions that carry diagnostics
(:class:`StaticAnalysisError`) and the code that raises them live on
opposite sides of the import graph, and this module is the one place both
can reach without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Diagnostic severities, most severe first.  ``error`` means the analyzed
#: code violates an invariant; ``warning`` means the analysis could not
#: prove it either way; ``info`` is advisory context.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding: a rule, a severity, and a location.

    ``rule`` is a stable ``pass/check`` identifier (``"purity/self-write"``,
    ``"lint/lock-discipline"``, ...) so reports are machine-filterable;
    ``path``/``line`` point at the offending source when the analysis could
    locate it and are ``None`` otherwise.
    """

    rule: str
    severity: str
    message: str
    path: str | None = None
    line: int | None = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValidationError(
                f"unknown severity {self.severity!r};"
                f" expected one of {SEVERITIES}"
            )

    @property
    def location(self) -> str:
        """``path:line`` when known, a placeholder otherwise."""
        if self.path is None:
            return "<unknown>"
        return self.path if self.line is None else f"{self.path}:{self.line}"

    def record(self) -> dict:
        """The JSON-able form used by reports and job records."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "line": self.line,
        }

    def describe(self) -> str:
        return f"{self.severity}: {self.location}: [{self.rule}] {self.message}"


class ReproError(Exception):
    """Base class for all library errors."""


class ValidationError(ReproError):
    """A model object (graph, protocol, labeling, ...) is malformed."""


class ScheduleError(ReproError):
    """A schedule was queried outside its defined domain."""


class ConvergenceError(ReproError):
    """A run did not reach the state a caller required."""


class SearchBudgetExceeded(ReproError):
    """An exhaustive search exceeded its configured state budget."""


class FingerprintError(ReproError):
    """An object cannot be canonicalized into a stable cache fingerprint."""


class StaticAnalysisError(ReproError):
    """A static-analysis pass found (or hit) a blocking problem.

    Carries the :class:`Diagnostic` records that justify the failure, so
    callers see *which* rule fired *where* instead of a bare message —
    e.g. the preflight diagnostic (with source location) a lambda reaction
    produces at plan time, rather than a :class:`FingerprintError` from
    deep inside canonicalization.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        self.diagnostics = tuple(diagnostics)
        located = "\n".join(
            f"  {diagnostic.describe()}" for diagnostic in self.diagnostics
        )
        super().__init__(message if not located else f"{message}\n{located}")


class JobError(ReproError):
    """A sweep-service job failed, was cancelled, or does not exist."""


class AdmissionError(JobError):
    """A sweep-service job was refused by the admission policy."""
