"""Symbolic cost model, trajectory fitting, and complexity-class gates.

The paper's guarantees are asymptotic — r-stabilization bounds in the node
count, the fairness radius, and the label-space size — but a benchmark gate
that only compares throughput *constants* (``check_regression.py``'s 30%
threshold) cannot see an implementation slipping from O(n) to O(n²) while
its constant improves.  This module closes that gap in three layers:

1. **Symbolic cost expressions** (:data:`COST_MODELS`): sympy step/state/
   work formulas for the three performance layers — the compiled serial
   engine, the batch backend (packed / fused / numba routes), and the
   frontier-parallel exploration core with its symmetry quotient —
   parameterized by the symbols in :data:`SYMBOLS` (node count ``n``,
   fairness radius ``r``, interned label-space size ``L``, degree ``d``,
   batch width ``B``, fused window ``k``, quotient reduction ``q``, step
   budget ``S``, case count ``C``).

2. **Trajectory fitting** (:func:`fit_trajectory`): measured ``(size,
   seconds)`` trajectories — the per-scale ladders that benches record into
   their ``BENCH_*.json`` entries and ``history`` snapshots — are regressed
   against the candidate complexity classes in :data:`CANDIDATE_CLASSES`
   (log-space least squares, one multiplicative constant per class) and the
   best-fitting class is reported with its residual.

3. **CI gates** (:func:`check_complexity`, :data:`BENCH_EXPECTATIONS`):
   each registered benchmark entry declares the complexity class it shipped
   under; a fresh record (or any of its history snapshots) whose fitted
   class grows *faster* than the declared one fails the gate — run by
   ``benchmarks/check_regression.py`` and as its own CI step
   (``python -m repro.analysis.costmodel benchmarks``).

The same work expressions double as the service layer's capacity-planning
input: :func:`estimate_sweep_cost` prices a sweep before it runs (per-case
work from the model, warm cache hits discounted to a lookup), which
:mod:`repro.service.admission` turns into admission control.

Requires sympy (install the ``repro[costmodel]`` extra); everything else in
:mod:`repro.analysis` imports without it.
"""

from __future__ import annotations

import argparse
import json
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import sympy

from repro.exceptions import ValidationError
from repro.policy import ExecutionPolicy

#: The model's parameter symbols (all positive):
#: ``n`` nodes, ``r`` fairness radius, ``L`` interned label-space size,
#: ``d`` max in-degree, ``B`` batch width (rows stepped in lockstep),
#: ``k`` fused-window length, ``q`` quotient reduction factor,
#: ``S`` step budget per case, ``C`` case count.
n, r, L, d, B, k, q, S, C = sympy.symbols(
    "n r L d B k q S C", positive=True
)

SYMBOLS: Mapping[str, sympy.Symbol] = {
    str(symbol): symbol for symbol in (n, r, L, d, B, k, q, S, C)
}

#: The free variable candidate complexity classes are written in.
x = sympy.Symbol("x", positive=True)

#: Candidate complexity classes, slowest-growing first.  Fits pick among
#: these; gates compare positions in this growth order.
CANDIDATE_CLASSES: Mapping[str, sympy.Expr] = {
    "constant": sympy.Integer(1),
    "logarithmic": sympy.log(x),
    "linear": x,
    "linearithmic": x * sympy.log(x),
    "quadratic": x**2,
    "cubic": x**3,
    "exponential": 2**x,
}

#: Growth order of the candidate classes (index comparisons implement
#: "class A grows faster than class B").
CLASS_ORDER: tuple[str, ...] = tuple(CANDIDATE_CLASSES)


@dataclass(frozen=True)
class CostModel:
    """One performance layer's symbolic cost.

    ``work`` counts elementary operations for a whole invocation (node
    reactions for the engine layers, element ops for the batch layers,
    state expansions for the exploration layers); ``state`` counts resident
    memory cells; ``dispatch`` counts Python-level kernel invocations (the
    fixed-overhead term the fused window divides down).
    """

    name: str
    work: sympy.Expr
    state: sympy.Expr
    dispatch: sympy.Expr
    description: str

    def evaluate(self, expr_name: str = "work", **params: float) -> float:
        """Numeric value of one expression under ``params`` (by symbol
        name); raises :class:`ValidationError` on missing parameters."""
        expr = getattr(self, expr_name)
        subs = {}
        for name_, symbol in SYMBOLS.items():
            if name_ in params:
                subs[symbol] = params[name_]
        value = expr.subs(subs)
        if value.free_symbols:
            missing = sorted(str(s) for s in value.free_symbols)
            raise ValidationError(
                f"cost model {self.name!r}.{expr_name} needs parameter(s)"
                f" {missing}; got {sorted(params)}"
            )
        return float(value)

    def complexity_in(self, symbol_name: str, **fixed: float) -> str:
        """The work expression's growth class in one symbol.

        Other symbols are substituted from ``fixed`` (default 2, so no term
        degenerates away).  Returns a :data:`CANDIDATE_CLASSES` name, or
        ``"superpolynomial"`` above every candidate.
        """
        return complexity_class(self.work, symbol_name, **fixed)


def complexity_class(expr: sympy.Expr, symbol_name: str, **fixed: float) -> str:
    """Classify ``expr``'s asymptotic growth in one model symbol.

    Every other model symbol is pinned (``fixed`` by name, default 2) and
    the surviving univariate expression is compared against the candidate
    classes fastest-first: the first candidate ``g`` with
    ``lim expr/g`` finite and nonzero names the class.
    """
    symbol = SYMBOLS.get(symbol_name)
    if symbol is None:
        raise ValidationError(
            f"unknown model symbol {symbol_name!r};"
            f" expected one of {sorted(SYMBOLS)}"
        )
    subs = {
        sym: sympy.Float(fixed.get(name_, 2))
        for name_, sym in SYMBOLS.items()
        if sym is not symbol
    }
    reduced = sympy.simplify(expr.subs(subs))
    if symbol not in reduced.free_symbols:
        return "constant"
    for class_name in reversed(CLASS_ORDER):
        candidate = CANDIDATE_CLASSES[class_name].subs(x, symbol)
        ratio = sympy.limit(reduced / candidate, symbol, sympy.oo)
        if ratio.is_finite and ratio != 0:
            return class_name
    return "superpolynomial"


#: Symbolic cost models for the repository's performance layers.  The
#: formulas are leading-order operation counts, not wall-clock predictions;
#: per-layer constants live in :data:`DEFAULT_SECONDS_PER_UNIT`.
COST_MODELS: Mapping[str, CostModel] = {
    model.name: model
    for model in (
        CostModel(
            name="engine.compiled",
            # One gather(d) -> react -> scatter per active node per step,
            # for every case.
            work=C * S * n * d,
            state=n * d + L,
            dispatch=C * S * n,
            description=(
                "Compiled serial engine (repro.core.compiled): flat-tuple"
                " gather/react/scatter, one Python call per node activation."
            ),
        ),
        CostModel(
            name="batch.packed",
            # Whole (B, m) code rows per step: the element work matches the
            # serial engine, but each step costs O(n) numpy dispatches, not
            # O(B n) Python calls.  Lookup tables enumerate each node's
            # incoming-code combos once.
            work=B * S * n * d,
            state=B * n * d + n * L**d,
            dispatch=S * n,
            description=(
                "Vectorized batch backend (repro.core.batch): per-node"
                " lookup tables over packed label codes, B configurations"
                " in lockstep."
            ),
        ),
        CostModel(
            name="batch.fused",
            # k steps per kernel invocation over a resident (k+1, B, m)
            # stack: element work unchanged, dispatch divided by the window.
            work=B * S * n * d,
            state=k * B * n * d + n * L**d,
            dispatch=S * n / k,
            description=(
                "Fused k-step windows (and the numba route, which shares"
                " this shape at a smaller constant): change flags fall out"
                " of the fill, dispatch amortized over the window."
            ),
        ),
        CostModel(
            name="exploration.frontier",
            # Worst case: every reachable (labeling, countdown) state — at
            # most L^(n d) labelings times r countdown phases — expanded
            # once per valid activation set (at most 2^n - 1), each
            # expansion stepping n nodes of degree d.
            work=r * L ** (n * d) * (2**n - 1) * n * d,
            state=r * L ** (n * d) * n,
            dispatch=r * L ** (n * d),
            description=(
                "Frontier-parallel Theorem 3.1 states-graph"
                " (repro.stabilization.exploration): level-synchronous BFS"
                " over (labeling, countdown) states; the state budget caps"
                " the realized count far below this bound on most gadgets."
            ),
        ),
        CostModel(
            name="exploration.quotient",
            # The symmetry quotient divides stored and expanded states by
            # the measured reduction factor q (orbit-size weighted).
            work=r * L ** (n * d) * (2**n - 1) * n * d / q,
            state=r * L ** (n * d) * n / q,
            dispatch=r * L ** (n * d) / q,
            description=(
                "Exploration under a verified symmetry quotient"
                " (repro.graphs.automorphisms): canonical states only,"
                " concrete witnesses lifted through group elements."
            ),
        ),
    )
}


# --------------------------------------------------------------------------
# Trajectory fitting
# --------------------------------------------------------------------------

#: Fewest distinct trajectory sizes a fit will accept.
MIN_FIT_POINTS = 3
#: Log-space RMSE above which no candidate class is considered a fit
#: (0.35 in natural log space is roughly a 40% multiplicative deviation).
MISFIT_RMSE = 0.35

_CLASS_FNS = {
    name_: sympy.lambdify(x, expr, "math")
    for name_, expr in CANDIDATE_CLASSES.items()
}


@dataclass(frozen=True)
class TrajectoryFit:
    """The outcome of fitting one measured trajectory.

    ``residuals`` maps every candidate class to its log-space RMSE;
    ``best`` is the argmin, ``coefficient`` its fitted multiplicative
    constant (``seconds ≈ coefficient · class(size)``).
    """

    best: str
    coefficient: float
    residuals: Mapping[str, float] = field(repr=False)
    points: int = 0

    @property
    def rmse(self) -> float:
        return self.residuals[self.best]

    @property
    def misfit(self) -> bool:
        """True when even the best class misses the data badly."""
        return self.rmse > MISFIT_RMSE

    @property
    def margin(self) -> float:
        """Gap between the best and second-best class (log-space RMSE)."""
        others = [
            value
            for name_, value in self.residuals.items()
            if name_ != self.best
        ]
        return min(others) - self.rmse if others else math.inf

    def regresses(self, accepted: Sequence[str]) -> bool:
        """True when the fitted class grows faster than every accepted one."""
        ceiling = max(CLASS_ORDER.index(name_) for name_ in accepted)
        return CLASS_ORDER.index(self.best) > ceiling

    def describe(self) -> str:
        return (
            f"TrajectoryFit(best={self.best!r},"
            f" coefficient={self.coefficient:.3g}, rmse={self.rmse:.3f},"
            f" points={self.points})"
        )


def fit_trajectory(
    sizes: Sequence[float],
    times: Sequence[float],
    classes: Sequence[str] | None = None,
) -> TrajectoryFit:
    """Fit a measured ``(size, seconds)`` trajectory to a complexity class.

    For each candidate class ``g``, the single multiplicative constant
    ``c`` minimizing ``Σ (log t_i − log(c·g(s_i)))²`` has the closed form
    ``log c = mean(log t_i − log g(s_i))``; the class with the smallest
    log-space RMSE wins.  Requires at least :data:`MIN_FIT_POINTS` distinct
    sizes and strictly positive data.
    """
    if len(sizes) != len(times):
        raise ValidationError(
            f"trajectory sizes and times differ in length:"
            f" {len(sizes)} vs {len(times)}"
        )
    if any(size <= 0 for size in sizes) or any(time <= 0 for time in times):
        raise ValidationError("trajectory sizes and times must be positive")
    if len(set(sizes)) < MIN_FIT_POINTS:
        raise ValidationError(
            f"need at least {MIN_FIT_POINTS} distinct sizes to classify a"
            f" trajectory; got {sorted(set(sizes))}"
        )
    names = list(classes) if classes is not None else list(CANDIDATE_CLASSES)
    unknown = [name_ for name_ in names if name_ not in CANDIDATE_CLASSES]
    if unknown:
        raise ValidationError(
            f"unknown complexity class(es) {unknown};"
            f" expected among {sorted(CANDIDATE_CLASSES)}"
        )

    log_times = [math.log(time) for time in times]
    residuals: dict[str, float] = {}
    coefficients: dict[str, float] = {}
    for name_ in names:
        fn = _CLASS_FNS[name_]
        try:
            log_class = [math.log(fn(size)) for size in sizes]
        except ValueError:
            # log(x) <= 0 at size <= 1: the class is undefined on this
            # trajectory's domain — skip it.
            continue
        except OverflowError:
            # 2**x overflowed: grossly faster than the data can be; skip.
            continue
        offsets = [lt - lc for lt, lc in zip(log_times, log_class, strict=True)]
        log_c = sum(offsets) / len(offsets)
        residuals[name_] = math.sqrt(
            sum((offset - log_c) ** 2 for offset in offsets) / len(offsets)
        )
        coefficients[name_] = math.exp(log_c)
    if not residuals:
        raise ValidationError(
            "no candidate class is defined on this trajectory's sizes"
        )
    best = min(residuals, key=residuals.__getitem__)
    return TrajectoryFit(
        best=best,
        coefficient=coefficients[best],
        residuals=residuals,
        points=len(sizes),
    )


# --------------------------------------------------------------------------
# Benchmark-record gates
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ComplexitySpec:
    """The complexity class one benchmark entry shipped under.

    ``record`` is the bench stem (``bench_a08_complexity_scaling``);
    ``entry`` the entry name inside its ``BENCH_*.json``.  The entry (and
    any history snapshot of it) must carry parallel ``sizes_field`` /
    ``times_field`` arrays — its measured scaling ladder.  A fitted class
    growing faster than ``expected`` or any name in ``allowed`` fails;
    growing *slower* never does.
    """

    record: str
    entry: str
    expected: str
    allowed: tuple[str, ...] = ()
    sizes_field: str = "sizes"
    times_field: str = "times_s"

    def __post_init__(self):
        for name_ in (self.expected, *self.allowed):
            if name_ not in CANDIDATE_CLASSES:
                raise ValidationError(
                    f"unknown complexity class {name_!r};"
                    f" expected among {sorted(CANDIDATE_CLASSES)}"
                )

    @property
    def accepted(self) -> tuple[str, ...]:
        return (self.expected, *self.allowed)


#: The complexity classes the committed benchmarks shipped under.  A bench
#: earns a row here by recording a per-scale ladder (``sizes`` /
#: ``times_s``) into its entry; the CI gate then holds every future record
#: — and every history snapshot — to that class.
BENCH_EXPECTATIONS: tuple[ComplexitySpec, ...] = (
    ComplexitySpec(
        record="bench_a08_complexity_scaling",
        entry="test_a08_batch_width_scaling",
        expected="linear",
        allowed=("linearithmic",),
    ),
    ComplexitySpec(
        record="bench_a08_complexity_scaling",
        entry="test_a08_engine_node_scaling",
        expected="linear",
        allowed=("linearithmic",),
    ),
)


def _trajectory_from_entry(
    entry: Mapping, spec: ComplexitySpec
) -> tuple[list[float], list[float]] | None:
    sizes = entry.get(spec.sizes_field)
    times = entry.get(spec.times_field)
    if not isinstance(sizes, (list, tuple)) or not isinstance(
        times, (list, tuple)
    ):
        return None
    if len(sizes) != len(times) or len(set(sizes)) < MIN_FIT_POINTS:
        return None
    return [float(size) for size in sizes], [float(time) for time in times]


def check_complexity(
    record: Mapping, spec: ComplexitySpec
) -> list[str]:
    """Complexity-gate violations of one BENCH record against one spec.

    The record's latest ``entries`` **and** every ``history`` snapshot are
    fitted independently (snapshots without the trajectory fields — e.g.
    runs that predate the ladder — are skipped); any fitted class that
    grows faster than the spec's accepted set, or that no candidate class
    fits at all, is a violation.  Returns human-readable failure lines
    (empty when the gate holds).
    """
    failures = []
    snapshots = [("latest", record)] + [
        (f"history[{i}]", snapshot)
        for i, snapshot in enumerate(record.get("history", []))
        if isinstance(snapshot, dict)
    ]
    fitted_any = False
    for label, snapshot in snapshots:
        entry = (snapshot.get("entries") or {}).get(spec.entry)
        if not isinstance(entry, dict):
            continue
        trajectory = _trajectory_from_entry(entry, spec)
        if trajectory is None:
            continue
        fit = fit_trajectory(*trajectory)
        fitted_any = True
        if fit.misfit:
            failures.append(
                f"{spec.entry} ({label}): no candidate class fits the"
                f" trajectory (best {fit.best!r} at log-RMSE"
                f" {fit.rmse:.3f} > {MISFIT_RMSE})"
            )
        elif fit.regresses(spec.accepted):
            failures.append(
                f"{spec.entry} ({label}): fitted complexity {fit.best!r}"
                f" (log-RMSE {fit.rmse:.3f}) regresses the declared class"
                f" {spec.expected!r} (accepted: {', '.join(spec.accepted)})"
            )
    if not fitted_any:
        failures.append(
            f"{spec.entry}: record carries no fittable"
            f" {spec.sizes_field}/{spec.times_field} trajectory"
            f" (>= {MIN_FIT_POINTS} distinct sizes required)"
        )
    return failures


def failures_for_record(record: Mapping) -> list[str]:
    """All complexity-gate violations of one record (by its ``bench`` stem).

    Records with no registered :data:`BENCH_EXPECTATIONS` row pass — the
    gate is opt-in per benchmark.
    """
    stem = record.get("bench")
    failures = []
    for spec in BENCH_EXPECTATIONS:
        if spec.record == stem:
            failures.extend(check_complexity(record, spec))
    return failures


# --------------------------------------------------------------------------
# Capacity planning
# --------------------------------------------------------------------------

#: Seconds per work unit (one node activation's worth of elementary work),
#: anchored to the committed BENCH records: the serial engine sustains
#: ~2.7M node activations/s (BENCH_a02: 41.5k steps/s × 64 nodes) and the
#: batch routes ~20–130M element ops/s (BENCH_a05: ~2.1M row-steps/s × 64
#: nodes at 10^5 rows).  Constants, deliberately coarse — admission budgets
#: should be set in work units or with generous headroom in seconds.
DEFAULT_SECONDS_PER_UNIT: Mapping[str, float] = {
    "engine.compiled": 4e-7,
    "batch.packed": 2e-8,
    "batch.fused": 1e-8,
    "exploration.frontier": 4e-7,
    "exploration.quotient": 4e-7,
}

#: Work units charged for serving one case from the result cache (one
#: fingerprint + one store lookup — microseconds, i.e. a few dozen units).
DEFAULT_CACHE_HIT_WORK = 50.0


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of a sweep under one :class:`ExecutionPolicy`.

    ``unit_work`` is the model's per-uncached-case work;
    ``predicted_work`` discounts warm cases to ``cache_hit_work``;
    ``cold_work`` is the no-cache figure (what the same sweep would cost
    against an empty store).  ``predicted_seconds`` applies the layer's
    calibration constant and, for fan-out policies, divides by the process
    count (work is conserved; wall time is not).
    """

    cases: int
    cached_cases: int
    uncached_cases: int
    unit_work: float
    cache_hit_work: float
    predicted_work: float
    cold_work: float
    predicted_seconds: float
    layer: str
    params: Mapping[str, float] = field(default_factory=dict)

    @property
    def cache_discount(self) -> float:
        """Fraction of the cold cost the cache removes (0.0 when cold)."""
        if self.cold_work == 0:
            return 0.0
        return 1.0 - self.predicted_work / self.cold_work

    def describe(self) -> str:
        return (
            f"CostEstimate(layer={self.layer},"
            f" cases={self.cases} ({self.cached_cases} warm),"
            f" work={self.predicted_work:,.0f}"
            f" (cold {self.cold_work:,.0f}),"
            f" ~{self.predicted_seconds:.3g}s)"
        )


def estimate_sweep_cost(
    *,
    cases: int,
    nodes: int,
    degree: int,
    max_steps: int,
    policy: ExecutionPolicy | None = None,
    cached_cases: int = 0,
    cache_hit_work: float = DEFAULT_CACHE_HIT_WORK,
    seconds_per_unit: Mapping[str, float] | None = None,
) -> CostEstimate:
    """Price a sweep from the symbolic model, before running anything.

    The layer follows the policy's executor (``"batch"`` →
    :data:`COST_MODELS` ``"batch.fused"``, else ``"engine.compiled"``);
    per-case work is the layer's work expression at batch width 1 with the
    step budget as ``S`` — an upper bound, since runs that stabilize early
    stop early.  ``cached_cases`` of the total are discounted to
    ``cache_hit_work`` each.
    """
    if cases < 0 or cached_cases < 0 or cached_cases > cases:
        raise ValidationError(
            f"invalid case counts: cases={cases}, cached={cached_cases}"
        )
    policy = policy or ExecutionPolicy()
    layer = "batch.fused" if policy.executor == "batch" else "engine.compiled"
    model = COST_MODELS[layer]
    params = {
        "n": float(nodes),
        "d": float(max(degree, 1)),
        "S": float(max_steps),
        "C": 1.0,
        "B": 1.0,
        "k": 64.0,
    }
    unit_work = model.evaluate("work", **params)
    uncached = cases - cached_cases
    predicted_work = uncached * unit_work + cached_cases * cache_hit_work
    cold_work = cases * unit_work
    rates = seconds_per_unit or DEFAULT_SECONDS_PER_UNIT
    span = max(policy.processes or 1, 1)
    predicted_seconds = predicted_work * rates[layer] / span
    return CostEstimate(
        cases=cases,
        cached_cases=cached_cases,
        uncached_cases=uncached,
        unit_work=unit_work,
        cache_hit_work=cache_hit_work,
        predicted_work=predicted_work,
        cold_work=cold_work,
        predicted_seconds=predicted_seconds,
        layer=layer,
        params=params,
    )


# --------------------------------------------------------------------------
# CLI: fit every committed BENCH record
# --------------------------------------------------------------------------


def check_bench_dir(bench_dir: Path) -> tuple[list[str], int]:
    """Fit all ``BENCH_*.json`` records under one directory.

    Returns ``(failures, records_checked)``; records without a registered
    expectation are reported informationally and never fail.
    """
    failures = []
    checked = 0
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError:
            failures.append(f"{path.name}: unreadable JSON")
            continue
        checked += 1
        specs = [
            spec
            for spec in BENCH_EXPECTATIONS
            if spec.record == record.get("bench")
        ]
        if not specs:
            print(f"{path.name}: no complexity expectation registered — ok")
            continue
        for spec in specs:
            violations = check_complexity(record, spec)
            if violations:
                for line in violations:
                    print(f"{path.name} :: {line} COMPLEXITY GATE FAILED")
                    failures.append(f"{path.name} :: {line}")
            else:
                print(
                    f"{path.name} :: {spec.entry}: within declared class"
                    f" {spec.expected!r} — ok"
                )
    return failures, checked


def print_symbol_table() -> None:
    """The symbolic model table (the ARCHITECTURE.md symbol table's source)."""
    print("symbols:", ", ".join(SYMBOLS))
    for model in COST_MODELS.values():
        print(f"\n{model.name}:")
        print(f"  work     = {model.work}")
        print(f"  state    = {model.state}")
        print(f"  dispatch = {model.dispatch}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fit committed BENCH_*.json trajectories against the"
        " symbolic cost model and fail on complexity-class regression."
    )
    parser.add_argument(
        "bench_dir",
        nargs="?",
        default="benchmarks",
        help="directory holding BENCH_*.json records (default: benchmarks)",
    )
    parser.add_argument(
        "--symbols",
        action="store_true",
        help="print the symbolic cost-model table and exit",
    )
    args = parser.parse_args(argv)
    if args.symbols:
        print_symbol_table()
        return 0
    failures, checked = check_bench_dir(Path(args.bench_dir))
    if failures:
        print(
            f"\n{len(failures)} complexity-gate violation"
            f"{'' if len(failures) == 1 else 's'} across {checked} records:"
        )
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"\nall {checked} benchmark records within their declared classes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
