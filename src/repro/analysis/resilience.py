"""Resilience sweeps: recovery measurement at sweep scale.

:func:`run_resilience_sweep` is to :func:`repro.analysis.sweeps.run_sweep`
what :func:`repro.faults.run_with_faults` is to ``Simulator.run``: many
``(inputs, initial labeling, schedule, fault plan)`` cases through **one**
compiled protocol, each run injected and recovery-certified, aggregated into
a :class:`ResilienceReport` (recovery rate, recovery-round histogram, worst
case, non-recovery census).

Both the schedule factory and the fault factory are invoked in the parent
process in case order, and seeded fault models derive their RNG from
``(seed, fire time)``, so a seeded resilience sweep is bit-identical whether
it runs serially or fanned out over ``multiprocessing``.

What counts as "recovered" is construction-dependent — the paper's
self-stabilizing constructions settle into three different shapes — so the
criterion is a parameter:

* ``"label"`` — a certified stable labeling (generic protocol, safe BGP);
* ``"output"`` — outputs fixed, labels may cycle (TM/BP/circuit rings);
* ``"orbit"`` — the run provably re-entered a recurrent orbit, i.e. any
  exact verdict except timeout (the D-counter family, whose whole point is
  to keep counting);
* any callable ``FaultCaseResult -> bool`` for sharper domain checks (it is
  applied in the parent after the sweep, so it need not pickle).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.sweeps import (
    CaseResult,
    ScheduleFactory,
    SweepCase,
    SweepReport,
)
from repro.core.compiled import compile_protocol
from repro.core.convergence import RunOutcome
from repro.core.engine import DEFAULT_MAX_STEPS, Simulator
from repro.core.protocol import Protocol
from repro.exceptions import ValidationError
from repro.faults.injection import run_with_faults
from repro.faults.schedules import FaultSchedule
from repro.policy import UNSET, ExecutionPolicy, resolve_policy

#: Builds the fault plan for one case: ``(case_index, case) -> FaultSchedule``.
FaultFactory = Callable[[int, SweepCase], FaultSchedule]

#: Named recovery criteria (see module docstring).
RECOVERY_CRITERIA: dict[str, Callable[["FaultCaseResult"], bool]] = {
    "label": lambda result: result.outcome is RunOutcome.LABEL_STABLE,
    "output": lambda result: result.outcome
    in (RunOutcome.LABEL_STABLE, RunOutcome.OUTPUT_STABLE),
    "orbit": lambda result: result.outcome
    not in (RunOutcome.TIMEOUT, RunOutcome.SCHEDULE_EXHAUSTED),
}


def resolve_criterion(
    recovered: str | Callable[["FaultCaseResult"], bool],
) -> Callable[["FaultCaseResult"], bool]:
    """Map a criterion name (or pass a predicate through) for recovery
    judging; shared with the service executor."""
    if callable(recovered):
        return recovered
    criterion = RECOVERY_CRITERIA.get(recovered)
    if criterion is None:
        raise ValidationError(
            f"unknown recovery criterion {recovered!r};"
            f" expected one of {sorted(RECOVERY_CRITERIA)} or a callable"
        )
    return criterion


@dataclass(frozen=True)
class FaultCaseResult(CaseResult):
    """One resilience case: a ``CaseResult`` plus fault/recovery facts.

    The inherited ``label_rounds`` / ``output_rounds`` count rounds **after
    the last fault** (the recovery time); ``steps_executed`` counts the whole
    run including the pre-fault window.
    """

    faults_fired: int = 0
    last_fault_time: int | None = None
    #: Tail cycle facts (periodic schedules), relative to the last fault.
    cycle_start: int | None = None
    cycle_length: int | None = None
    #: Verdict of the sweep's recovery criterion.
    recovered: bool = False

    @property
    def recovery_rounds(self) -> int | None:
        """Rounds from the last fault to the certified settled regime.

        The sharpest available figure: label rounds when the labeling fixed,
        else output rounds, else entry into the detected cycle.
        """
        if self.label_rounds is not None:
            return self.label_rounds
        if self.output_rounds is not None:
            return self.output_rounds
        return self.cycle_start


@dataclass(frozen=True)
class ResilienceReport(SweepReport):
    """Aggregated resilience results, layered on :class:`SweepReport`."""

    @property
    def recovered_count(self) -> int:
        return sum(1 for result in self.results if result.recovered)

    @property
    def non_recovered_count(self) -> int:
        return len(self.results) - self.recovered_count

    @property
    def recovery_rate(self) -> float:
        """Fraction of cases that recovered (1.0 for an empty sweep)."""
        if not self.results:
            return 1.0
        return self.recovered_count / len(self.results)

    @property
    def all_recovered(self) -> bool:
        return self.recovered_count == len(self.results)

    @property
    def non_recovered(self) -> tuple[FaultCaseResult, ...]:
        return tuple(result for result in self.results if not result.recovered)

    def recovery_histogram(self) -> dict[int, int]:
        """Histogram of recovery rounds over the recovered cases."""
        return dict(
            Counter(
                rounds
                for result in self.results
                if result.recovered
                and (rounds := result.recovery_rounds) is not None
            )
        )

    @property
    def worst_recovery_rounds(self) -> int | None:
        """The slowest certified recovery (None when nothing recovered)."""
        rounds = [
            value
            for result in self.results
            if result.recovered and (value := result.recovery_rounds) is not None
        ]
        return max(rounds) if rounds else None

    def describe(self) -> str:
        worst = self.worst_recovery_rounds
        return (
            f"ResilienceReport(cases={len(self.results)},"
            f" recovered={self.recovered_count},"
            f" non_recovered={self.non_recovered_count},"
            f" worst_recovery_rounds={worst})"
        )


def _run_fault_cases(protocol, cases, per_case, max_steps, start_index):
    """Worker: run a slice of injected cases through one compiled protocol."""
    compiled = compile_protocol(protocol)
    results = []
    for offset, (case, (schedule, faults)) in enumerate(
        zip(cases, per_case, strict=True)
    ):
        simulator = Simulator(protocol, case.inputs, compiled=compiled)
        report = run_with_faults(
            simulator,
            case.labeling,
            schedule,
            faults,
            max_steps=max_steps,
            initial_outputs=case.initial_outputs,
        )
        results.append(
            FaultCaseResult(
                index=start_index + offset,
                tag=case.tag,
                outcome=report.outcome,
                label_rounds=report.recovery_rounds,
                output_rounds=report.output_recovery_rounds,
                steps_executed=report.steps_executed,
                final_values=report.final.labeling.values,
                outputs=report.final.outputs,
                faults_fired=report.faults_fired,
                last_fault_time=report.last_fault_time,
                cycle_start=report.cycle_start,
                cycle_length=report.cycle_length,
            )
        )
    return results


def _run_fault_cases_batch(
    protocol, cases, per_case, max_steps, start_index, kernel=None, chunk_rows=None
):
    """Batch worker: injected cases in vectorized lockstep runs.

    Large case lists run as sub-batches of ``chunk_rows`` (default
    ``SWEEP_CHUNK_ROWS``) for cache residency, mirroring
    :func:`repro.analysis.sweeps._run_cases_batch`.
    """
    from repro.core.batch import SWEEP_CHUNK_ROWS, BatchSimulator

    rows = chunk_rows if chunk_rows is not None else SWEEP_CHUNK_ROWS
    results = []
    for lo in range(0, len(cases), rows):
        chunk = cases[lo : lo + rows]
        chunk_per_case = per_case[lo : lo + rows]
        simulator = BatchSimulator(
            protocol,
            [case.inputs for case in chunk],
            kernel=kernel if kernel is not None else "auto",
        )
        reports = simulator.run_batch_with_faults(
            [case.labeling for case in chunk],
            [schedule for schedule, _ in chunk_per_case],
            [faults for _, faults in chunk_per_case],
            max_steps=max_steps,
            initial_outputs=[case.initial_outputs for case in chunk],
        )
        results.extend(
            FaultCaseResult(
                index=start_index + lo + offset,
                tag=case.tag,
                outcome=report.outcome,
                label_rounds=report.recovery_rounds,
                output_rounds=report.output_recovery_rounds,
                steps_executed=report.steps_executed,
                final_values=report.final.labeling.values,
                outputs=report.final.outputs,
                faults_fired=report.faults_fired,
                last_fault_time=report.last_fault_time,
                cycle_start=report.cycle_start,
                cycle_length=report.cycle_length,
            )
            for offset, (case, report) in enumerate(zip(chunk, reports, strict=True))
        )
    return results


#: Injected-case backends selectable via ``run_resilience_sweep(..., executor=...)``.
EXECUTORS = {"serial": _run_fault_cases, "batch": _run_fault_cases_batch}


def run_resilience_sweep(
    protocol: Protocol,
    cases: Iterable[SweepCase | tuple],
    schedule_factory: ScheduleFactory,
    fault_factory: FaultFactory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    policy: ExecutionPolicy | None = None,
    recovered: str | Callable[[FaultCaseResult], bool] = "label",
    strict: bool = False,
    processes: int | None = UNSET,
    executor: str = UNSET,
    kernel: str | None = UNSET,
) -> ResilienceReport:
    """Inject faults into every case and measure certified recovery.

    ``fault_factory(index, case)`` returns the fault plan for one case
    (return :class:`repro.faults.NoFaults` for fault-free controls);
    ``recovered`` names a criterion from :data:`RECOVERY_CRITERIA` or is a
    predicate applied in the parent process.  Everything else matches
    :func:`repro.analysis.sweeps.run_sweep`: ``policy``
    (:class:`repro.ExecutionPolicy`) selects the case backend
    (``executor="batch"`` injects in vectorized lockstep through
    :mod:`repro.core.batch`, with fault models fired via their batch hooks
    — reports equal to serial, case for case), the batch ``kernel``, and
    the fan-out width, with the same serial fallback (a
    :class:`RuntimeWarning`, or re-raised under ``strict=True``) when the
    sweep does not pickle.  The scattered ``processes=`` / ``executor=`` /
    ``kernel=`` keywords are deprecated shims for the policy fields.

    Like :func:`run_sweep`, this is now a thin wrapper over the service
    layer's planner/executor split
    (:func:`repro.service.plan_resilience_sweep` +
    :func:`repro.service.execute_plan`).
    """
    # Lazy import — see run_sweep: only the compatibility wrapper reaches
    # back up into the service layer.
    from repro.service.executor import execute_plan, resolve_plan_runner
    from repro.service.plan import plan_resilience_sweep

    policy = resolve_policy(
        policy,
        {"processes": processes, "executor": executor, "kernel": kernel},
        api="run_resilience_sweep",
    )
    # Validate executor/kernel/criterion before any factory runs, matching
    # the one-shot runner's error order.
    resolve_plan_runner("resilience", policy.executor, policy.kernel)
    resolve_criterion(recovered)
    plan = plan_resilience_sweep(
        protocol, cases, schedule_factory, fault_factory, max_steps=max_steps
    )
    return execute_plan(plan, policy=policy, strict=strict, recovered=recovered)
