"""Measurement and reporting toolkit.

The symbolic cost model (:mod:`repro.analysis.costmodel`) needs sympy
(the ``repro[costmodel]`` extra); its names are re-exported here when
available and simply absent when not, so the rest of the toolkit imports
without it.
"""

from repro.analysis.complexity import (
    RoundComplexityReport,
    measure_round_complexity,
    output_settle_time,
    settled_outputs,
)
from repro.analysis.resilience import (
    RECOVERY_CRITERIA,
    FaultCaseResult,
    ResilienceReport,
    run_resilience_sweep,
)
from repro.analysis.sweeps import CaseResult, SweepCase, SweepReport, run_sweep
from repro.analysis.tables import print_table, render_table

try:
    from repro.analysis.costmodel import (
        COST_MODELS,
        CostEstimate,
        TrajectoryFit,
        estimate_sweep_cost,
        fit_trajectory,
    )
except ImportError:  # pragma: no cover - sympy is present in CI
    COST_MODELS = None
    CostEstimate = TrajectoryFit = None
    estimate_sweep_cost = fit_trajectory = None

__all__ = [
    "COST_MODELS",
    "CostEstimate",
    "TrajectoryFit",
    "estimate_sweep_cost",
    "fit_trajectory",
    "CaseResult",
    "FaultCaseResult",
    "RECOVERY_CRITERIA",
    "ResilienceReport",
    "RoundComplexityReport",
    "SweepCase",
    "SweepReport",
    "measure_round_complexity",
    "output_settle_time",
    "print_table",
    "render_table",
    "run_resilience_sweep",
    "run_sweep",
    "settled_outputs",
]
