"""Measurement and reporting toolkit."""

from repro.analysis.complexity import (
    RoundComplexityReport,
    measure_round_complexity,
    output_settle_time,
    settled_outputs,
)
from repro.analysis.sweeps import CaseResult, SweepCase, SweepReport, run_sweep
from repro.analysis.tables import print_table, render_table

__all__ = [
    "CaseResult",
    "RoundComplexityReport",
    "SweepCase",
    "SweepReport",
    "measure_round_complexity",
    "output_settle_time",
    "print_table",
    "render_table",
    "run_sweep",
    "settled_outputs",
]
