"""Measurement and reporting toolkit."""

from repro.analysis.complexity import (
    RoundComplexityReport,
    measure_round_complexity,
    output_settle_time,
    settled_outputs,
)
from repro.analysis.resilience import (
    RECOVERY_CRITERIA,
    FaultCaseResult,
    ResilienceReport,
    run_resilience_sweep,
)
from repro.analysis.sweeps import CaseResult, SweepCase, SweepReport, run_sweep
from repro.analysis.tables import print_table, render_table

__all__ = [
    "CaseResult",
    "FaultCaseResult",
    "RECOVERY_CRITERIA",
    "ResilienceReport",
    "RoundComplexityReport",
    "SweepCase",
    "SweepReport",
    "measure_round_complexity",
    "output_settle_time",
    "print_table",
    "render_table",
    "run_resilience_sweep",
    "run_sweep",
    "settled_outputs",
]
