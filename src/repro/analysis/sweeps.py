"""Sweep runner: many cases through one compiled protocol.

Almost every experiment in this repository has the same shape — one protocol,
many ``(inputs, initial labeling, schedule)`` cases: benchmark grids, random
self-stabilization trials, exhaustive input sweeps for the ring machines.
:func:`run_sweep` executes that shape through a single
:class:`~repro.core.compiled.CompiledProtocol`, so the per-protocol
compilation cost is paid once no matter how many cases run, and returns an
aggregated :class:`SweepReport` (per-case results, outcome counts, round
histograms).

Schedules are stateful (seeded random schedules memoize their realized
steps), so cases carry no schedule; instead ``schedule_factory(index, case)``
builds a fresh one per case.  The factory is always invoked **in the parent
process, in case order** — even when the sweep fans out — so a factory that
draws from its own RNG (or any other shared state) sees exactly the same
call sequence serial and parallel, and seeded sweeps are bit-identical
either way.  Workers receive the materialized schedules, not the factory.

Two execution backends share this module's aggregation: the default
``executor="serial"`` runs one compiled run loop per case, while
``executor="batch"`` hands the whole case list to the vectorized lockstep
backend (:mod:`repro.core.batch`, requires numpy) and gets equal reports
back at a fraction of the per-step Python cost.

Optional ``multiprocessing`` fan-out: pass ``processes > 1`` to split the
case list across worker processes.  This requires the protocol, the cases
and the per-case schedules to be picklable (module-level reaction functions,
no closures); when they are not — or when the platform does not support
worker pools — the sweep transparently falls back to in-process execution,
so callers never need to special-case the environment.
"""

from __future__ import annotations

import pickle
import warnings
from collections import Counter
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.compiled import compile_protocol
from repro.core.configuration import Labeling
from repro.core.convergence import RunOutcome
from repro.core.engine import DEFAULT_MAX_STEPS, Simulator
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule
from repro.exceptions import ValidationError
from repro.policy import UNSET, ExecutionPolicy, resolve_policy

#: Builds the schedule for one case: ``(case_index, case) -> Schedule``.
ScheduleFactory = Callable[[int, "SweepCase"], Schedule]


@dataclass(frozen=True)
class SweepCase:
    """One unit of sweep work: an input vector plus an initial labeling."""

    inputs: tuple
    labeling: Labeling
    initial_outputs: tuple | None = None
    #: Caller-chosen identifier carried through to the matching result.
    tag: Any = None


@dataclass(frozen=True)
class CaseResult:
    """The outcome of one sweep case (a condensed ``RunReport``)."""

    index: int
    tag: Any
    outcome: RunOutcome
    label_rounds: int | None
    output_rounds: int | None
    steps_executed: int
    #: Final flat labeling values (canonical edge order).
    final_values: tuple
    #: Final per-node outputs.
    outputs: tuple

    @property
    def label_stable(self) -> bool:
        return self.outcome is RunOutcome.LABEL_STABLE

    @property
    def output_stable(self) -> bool:
        return self.outcome in (RunOutcome.LABEL_STABLE, RunOutcome.OUTPUT_STABLE)


@dataclass(frozen=True)
class SweepReport:
    """Aggregated results of a sweep, in case order."""

    results: tuple[CaseResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def merge(self, other: "SweepReport") -> "SweepReport":
        """This report plus another shard of the same sweep.

        Results are keyed by case index and come back sorted, so merging is
        associative and commutative: shard reports can be folded in any
        order (the service layer's incremental aggregation merges shards as
        they complete) and the result equals the one-shot report.  Both
        operands must be the same report type over disjoint case indices.
        """
        if type(other) is not type(self):
            raise ValidationError(
                f"cannot merge {type(other).__name__} into"
                f" {type(self).__name__}: shard reports must share a type"
            )
        if not other.results:
            return self
        if not self.results:
            return other
        overlap = {r.index for r in self.results} & {
            r.index for r in other.results
        }
        if overlap:
            raise ValidationError(
                f"cannot merge overlapping shard reports: case indices"
                f" {sorted(overlap)[:5]} appear in both"
            )
        merged = sorted(
            self.results + other.results, key=lambda result: result.index
        )
        return type(self)(results=tuple(merged))

    @property
    def outcome_counts(self) -> dict[RunOutcome, int]:
        """How many cases ended in each outcome."""
        return dict(Counter(result.outcome for result in self.results))

    def round_histogram(self, kind: str = "label") -> dict[int, int]:
        """Histogram of convergence rounds (cases without a value excluded).

        ``kind`` is ``"label"`` (label stabilization rounds) or ``"output"``
        (output stabilization rounds).
        """
        if kind not in ("label", "output"):
            raise ValidationError("histogram kind must be 'label' or 'output'")
        attr = "label_rounds" if kind == "label" else "output_rounds"
        rounds = [
            value
            for result in self.results
            if (value := getattr(result, attr)) is not None
        ]
        return dict(Counter(rounds))

    @property
    def worst_label_rounds(self) -> int | None:
        values = [r.label_rounds for r in self.results if r.label_rounds is not None]
        return max(values) if values else None

    @property
    def worst_output_rounds(self) -> int | None:
        values = [r.output_rounds for r in self.results if r.output_rounds is not None]
        return max(values) if values else None

    @property
    def all_label_stable(self) -> bool:
        return all(result.label_stable for result in self.results)

    @property
    def all_output_stable(self) -> bool:
        return all(result.output_stable for result in self.results)

    def describe(self) -> str:
        counts = ", ".join(
            f"{outcome.value}={count}"
            for outcome, count in sorted(
                self.outcome_counts.items(), key=lambda item: item[0].value
            )
        )
        return f"SweepReport(cases={len(self.results)}, {counts})"


def _coerce_case(case) -> SweepCase:
    if isinstance(case, SweepCase):
        return case
    if isinstance(case, Labeling):
        raise ValidationError(
            "a sweep case needs inputs and a labeling; wrap it in SweepCase"
        )
    return SweepCase(*case)


def _run_cases(
    protocol: Protocol,
    cases: Sequence[SweepCase],
    schedules: Sequence[Schedule],
    max_steps: int,
    start_index: int,
) -> list[CaseResult]:
    """Run a slice of cases in-process through one compiled protocol."""
    compiled = compile_protocol(protocol)
    results = []
    for offset, (case, schedule) in enumerate(zip(cases, schedules, strict=True)):
        index = start_index + offset
        simulator = Simulator(protocol, case.inputs, compiled=compiled)
        report = simulator.run(
            case.labeling,
            schedule,
            max_steps=max_steps,
            initial_outputs=case.initial_outputs,
        )
        results.append(
            CaseResult(
                index=index,
                tag=case.tag,
                outcome=report.outcome,
                label_rounds=report.label_rounds,
                output_rounds=report.output_rounds,
                steps_executed=report.steps_executed,
                final_values=report.final.labeling.values,
                outputs=report.final.outputs,
            )
        )
    return results


def _run_cases_batch(
    protocol: Protocol,
    cases: Sequence[SweepCase],
    schedules: Sequence[Schedule],
    max_steps: int,
    start_index: int,
    kernel: str | None = None,
    chunk_rows: int | None = None,
) -> list[CaseResult]:
    """Run a slice of cases in lockstep through the vectorized batch backend.

    Same contract as :func:`_run_cases` (the reports are equal case for
    case); the import is deferred so the serial sweep path never requires
    numpy.  Large case lists run as several sub-batches of ``chunk_rows``
    (default ``SWEEP_CHUNK_ROWS``) — cases are independent, so slicing
    changes nothing but cache residency.
    """
    from repro.core.batch import SWEEP_CHUNK_ROWS, BatchSimulator

    rows = chunk_rows if chunk_rows is not None else SWEEP_CHUNK_ROWS
    results = []
    for lo in range(0, len(cases), rows):
        chunk = cases[lo : lo + rows]
        simulator = BatchSimulator(
            protocol,
            [case.inputs for case in chunk],
            kernel=kernel if kernel is not None else "auto",
        )
        reports = simulator.run_batch(
            [case.labeling for case in chunk],
            schedules[lo : lo + rows],
            max_steps=max_steps,
            initial_outputs=[case.initial_outputs for case in chunk],
        )
        results.extend(
            CaseResult(
                index=start_index + lo + offset,
                tag=case.tag,
                outcome=report.outcome,
                label_rounds=report.label_rounds,
                output_rounds=report.output_rounds,
                steps_executed=report.steps_executed,
                final_values=report.final.labeling.values,
                outputs=report.final.outputs,
            )
            for offset, (case, report) in enumerate(zip(chunk, reports, strict=True))
        )
    return results


#: Case-execution backends selectable via ``run_sweep(..., executor=...)``.
EXECUTORS = {"serial": _run_cases, "batch": _run_cases_batch}


def resolve_executor(executor: str, executors=None):
    """Map an executor name to its case runner (shared with resilience)."""
    table = EXECUTORS if executors is None else executors
    runner = table.get(executor)
    if runner is None:
        raise ValidationError(
            f"unknown executor {executor!r}; expected one of {sorted(table)}"
        )
    return runner


def _chunk_bounds(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous slices."""
    chunks = min(chunks, total)
    base, extra = divmod(total, chunks)
    bounds = []
    start = 0
    for k in range(chunks):
        size = base + (1 if k < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def run_sweep(
    protocol: Protocol,
    cases: Iterable[SweepCase | tuple],
    schedule_factory: ScheduleFactory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    policy: ExecutionPolicy | None = None,
    strict: bool = False,
    processes: int | None = UNSET,
    executor: str = UNSET,
    kernel: str | None = UNSET,
) -> SweepReport:
    """Run every case through one compiled form of ``protocol``.

    ``cases`` may hold :class:`SweepCase` objects or plain tuples in
    ``SweepCase`` field order (``(inputs, labeling[, initial_outputs[,
    tag]])``).  ``schedule_factory(index, case)`` must return a *fresh*
    schedule per case; it is invoked in the parent process in case order
    regardless of fan-out, so stateful (seeded) factories produce
    bit-identical sweeps serial and parallel.

    ``policy`` (:class:`repro.ExecutionPolicy`) holds every performance
    knob — the case backend (``executor="batch"`` steps all cases in
    lockstep through the numpy backend; the resulting :class:`SweepReport`
    is equal to the serial one, case for case), the batch compute
    ``kernel``, the ``multiprocessing`` fan-out width ``processes`` (when
    everything involved pickles; otherwise the sweep runs in-process,
    emitting a :class:`RuntimeWarning` naming the reason — or, with
    ``strict=True``, re-raising the underlying error instead of falling
    back), and the batch ``chunk_rows``.  The policy changes how fast the
    report is produced, never its contents.  The scattered ``processes=`` /
    ``executor=`` / ``kernel=`` keywords are deprecated shims for the same
    fields.

    Since the service layer landed, this is a thin wrapper over the
    planner/executor split: :func:`repro.service.plan_sweep` materializes
    the cases and schedules, :func:`repro.service.execute_plan` runs the
    plan through the same runners as always.  Callers wanting caching,
    sharded streaming, or job submission use those entry points directly.
    """
    # Imported lazily: the service layer sits above analysis in the stack,
    # and only this compatibility wrapper reaches back down into it.
    from repro.service.executor import execute_plan, resolve_plan_runner
    from repro.service.plan import plan_sweep

    policy = resolve_policy(
        policy,
        {"processes": processes, "executor": executor, "kernel": kernel},
        api="run_sweep",
    )
    # Validate executor/kernel before invoking any factory, as the one-shot
    # runner always did.
    resolve_plan_runner("sweep", policy.executor, policy.kernel)
    plan = plan_sweep(protocol, cases, schedule_factory, max_steps=max_steps)
    return execute_plan(plan, policy=policy, strict=strict)


def fan_out(runner, protocol, case_list, per_case, max_steps, processes, strict=False):
    """Fan a case list out over a process pool; None means 'run serially'.

    Shared by :func:`run_sweep` and the resilience sweep.  ``runner`` must be
    a picklable module-level callable ``(protocol, cases, per_case,
    max_steps, start_index) -> list``; ``per_case`` holds one
    already-materialized work item (schedule, fault plan, ...) per case.

    Degrading to serial execution is never silent: each fallback path emits
    a :class:`RuntimeWarning` carrying the offending error, so a sweep that
    was asked for 8 processes and ran on one core says why.  ``strict=True``
    re-raises the underlying error instead of falling back.
    """
    try:
        pickle.dumps((protocol, case_list, per_case))
    except Exception as error:
        if strict:
            raise
        warnings.warn(
            f"sweep fan-out disabled, running serially: the protocol, cases,"
            f" or per-case work items do not pickle ({error!r}); use"
            f" module-level reactions and factories to enable fan-out",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    try:
        import multiprocessing

        bounds = _chunk_bounds(len(case_list), processes)
        with multiprocessing.Pool(len(bounds)) as pool:
            chunk_results = pool.starmap(
                runner,
                [
                    (protocol, case_list[lo:hi], per_case[lo:hi], max_steps, lo)
                    for lo, hi in bounds
                ],
            )
    except (OSError, ImportError, PermissionError, RuntimeError) as error:
        # Restricted environments (no /dev/shm, no fork) cannot build pools,
        # and spawn-start platforms raise RuntimeError when the caller has no
        # __main__ guard — fall back to in-process execution either way.
        if strict:
            raise
        warnings.warn(
            f"sweep fan-out disabled, running serially: worker pool"
            f" unavailable ({error!r})",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return [result for chunk in chunk_results for result in chunk]
