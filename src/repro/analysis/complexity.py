"""Round/label-complexity measurement helpers.

The engine's exact cycle detection is expensive for protocols whose labels
cycle with a long period (the D-counter family: period 2D).  For those,
:func:`settled_outputs` applies the practical criterion — run long enough to
settle, then demand the outputs stay constant over a further window — which
is sound for claiming *output stabilization on this run* and is what the
benchmarks use for the larger circuit simulations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.configuration import Labeling
from repro.core.engine import Simulator
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule, SynchronousSchedule
from repro.exceptions import ConvergenceError


def settled_outputs(
    protocol: Protocol,
    inputs: Sequence[Any],
    labeling: Labeling,
    settle: int,
    window: int,
    schedule: Schedule | None = None,
) -> tuple[Any, ...]:
    """Outputs after ``settle`` steps, verified constant for ``window`` more.

    Raises :class:`ConvergenceError` if the outputs move inside the window.
    """
    schedule = schedule or SynchronousSchedule(protocol.n)
    simulator = Simulator(protocol, inputs)
    config = simulator.initial_configuration(labeling)
    for t in range(settle):
        config = simulator.step(config, schedule.active(t))
    reference = config.outputs
    for t in range(settle, settle + window):
        config = simulator.step(config, schedule.active(t))
        if config.outputs != reference:
            raise ConvergenceError(
                f"outputs moved at step {t + 1}: {reference} -> {config.outputs}"
            )
    return reference


def output_settle_time(
    protocol: Protocol,
    inputs: Sequence[Any],
    labeling: Labeling,
    horizon: int,
    window: int,
    schedule: Schedule | None = None,
) -> tuple[int, tuple[Any, ...]]:
    """Smallest T with outputs constant on [T, horizon] (window-validated).

    Runs ``horizon + window`` steps, finds the last output change, and
    returns ``(T, outputs)``.  Raises if outputs still move after
    ``horizon``.
    """
    schedule = schedule or SynchronousSchedule(protocol.n)
    simulator = Simulator(protocol, inputs)
    config = simulator.initial_configuration(labeling)
    last_change = 0
    for t in range(horizon + window):
        nxt = simulator.step(config, schedule.active(t))
        if nxt.outputs != config.outputs:
            last_change = t + 1
        config = nxt
    if last_change > horizon:
        raise ConvergenceError(
            f"outputs still changing at step {last_change} (> horizon {horizon})"
        )
    return last_change, config.outputs


@dataclass(frozen=True)
class RoundComplexityReport:
    """Worst-case measurements over a batch of runs."""

    runs: int
    max_label_rounds: int | None
    max_output_rounds: int | None
    all_label_stable: bool
    all_output_stable: bool


def measure_round_complexity(
    protocol: Protocol,
    input_vectors: Iterable[Sequence[Any]],
    labelings: Iterable[Labeling],
    max_steps: int = 10_000,
    schedule: Schedule | None = None,
) -> RoundComplexityReport:
    """Exact engine-based round complexity over inputs x labelings."""
    schedule = schedule or SynchronousSchedule(protocol.n)
    labelings = list(labelings)
    runs = 0
    max_label = None
    max_output = None
    all_label = True
    all_output = True
    for inputs in input_vectors:
        simulator = Simulator(protocol, inputs)
        for labeling in labelings:
            report = simulator.run(labeling, schedule, max_steps=max_steps)
            runs += 1
            all_label &= report.label_stable
            all_output &= report.output_stable
            if report.label_rounds is not None:
                max_label = max(max_label or 0, report.label_rounds)
            if report.output_rounds is not None:
                max_output = max(max_output or 0, report.output_rounds)
    return RoundComplexityReport(
        runs=runs,
        max_label_rounds=max_label,
        max_output_rounds=max_output,
        all_label_stable=all_label,
        all_output_stable=all_output,
    )
