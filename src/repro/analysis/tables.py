"""Plain-text table rendering for the benchmark reports."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (the benchmarks' report format)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[k]) for row in cells) for k in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(
            cell.ljust(width)
            for cell, width in zip(row, widths, strict=True)
        )
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]):
    print(f"\n== {title} ==")
    print(render_table(headers, rows))
