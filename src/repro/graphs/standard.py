"""Standard topologies used throughout the paper.

The paper's computational-power results live on the unidirectional and
bidirectional ring; the impossibility and hardness constructions live on the
clique; the future-work section names the hypercube, torus and trees.  All of
them are provided here, plus seeded random strongly-connected digraphs for
property-based testing.

Ring orientation convention: "clockwise" is the direction of increasing node
index, i.e. the edge ``(i, (i+1) % n)``.
"""

from __future__ import annotations

import random

from repro.exceptions import ValidationError
from repro.graphs.topology import Topology


def unidirectional_ring(n: int) -> Topology:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if n < 2:
        raise ValidationError("a ring needs at least 2 nodes")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, edges, name=f"uni-ring({n})")


def bidirectional_ring(n: int) -> Topology:
    """Cycle with both orientations on every link."""
    if n < 2:
        raise ValidationError("a ring needs at least 2 nodes")
    edges: list[tuple[int, int]] = []
    for i in range(n):
        j = (i + 1) % n
        for edge in ((i, j), (j, i)):
            if edge not in edges:
                edges.append(edge)
    return Topology(n, edges, name=f"bi-ring({n})")


def clique(n: int) -> Topology:
    """Complete digraph K_n (both directions on every pair)."""
    if n < 2:
        raise ValidationError("a clique needs at least 2 nodes")
    edges = [(u, v) for u in range(n) for v in range(n) if u != v]
    return Topology(n, edges, name=f"clique({n})")


def star(n: int) -> Topology:
    """Bidirectional star: node 0 is the hub connected to 1..n-1."""
    if n < 2:
        raise ValidationError("a star needs at least 2 nodes")
    edges = []
    for leaf in range(1, n):
        edges.append((0, leaf))
        edges.append((leaf, 0))
    return Topology(n, edges, name=f"star({n})")


def path(n: int) -> Topology:
    """Bidirectional path 0 - 1 - ... - n-1."""
    if n < 2:
        raise ValidationError("a path needs at least 2 nodes")
    edges = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    return Topology(n, edges, name=f"path({n})")


def hypercube(d: int) -> Topology:
    """Bidirectional d-dimensional hypercube on 2^d nodes."""
    if d < 1:
        raise ValidationError("hypercube dimension must be >= 1")
    n = 1 << d
    edges = []
    for u in range(n):
        for bit in range(d):
            v = u ^ (1 << bit)
            edges.append((u, v))
    return Topology(n, edges, name=f"hypercube({d})")


def torus(rows: int, cols: int) -> Topology:
    """Bidirectional 2-D torus grid (4-neighbor wraparound)."""
    if rows < 2 or cols < 2:
        raise ValidationError("torus needs at least 2 rows and 2 columns")
    n = rows * cols

    def node(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    edges = set()
    for r in range(rows):
        for c in range(cols):
            u = node(r, c)
            for v in (node(r + 1, c), node(r - 1, c), node(r, c + 1), node(r, c - 1)):
                if u != v:
                    edges.add((u, v))
    return Topology(n, sorted(edges), name=f"torus({rows}x{cols})")


def binary_tree(depth: int) -> Topology:
    """Bidirectional complete binary tree of the given depth (root = 0)."""
    if depth < 1:
        raise ValidationError("tree depth must be >= 1")
    n = (1 << (depth + 1)) - 1
    edges = []
    for child in range(1, n):
        parent = (child - 1) // 2
        edges.append((parent, child))
        edges.append((child, parent))
    return Topology(n, edges, name=f"binary-tree(depth={depth})")


def random_strongly_connected(n: int, extra_edges: int, seed: int = 0) -> Topology:
    """A random strongly connected digraph: a random Hamiltonian cycle plus
    ``extra_edges`` additional random arcs."""
    if n < 2:
        raise ValidationError("need at least 2 nodes")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges = set()
    for k in range(n):
        edges.add((order[k], order[(k + 1) % n]))
    attempts = 0
    while len(edges) < n + extra_edges and attempts < 100 * (extra_edges + 1):
        u = rng.randrange(n)
        v = rng.randrange(n)
        attempts += 1
        if u != v:
            edges.add((u, v))
    return Topology(n, sorted(edges), name=f"random-sc({n},{seed})")
