"""Graph substrate: topologies, standard families, spanning trees, properties,
automorphism groups."""

from repro.graphs.automorphisms import (
    SymmetryGroup,
    automorphism_generators,
    close_generators,
    edge_permutation,
    protocol_symmetry_group,
    symmetry_group_from_generators,
)
from repro.graphs.properties import (
    all_pairs_distances,
    diameter,
    distances_from,
    eccentricity,
    is_strongly_connected,
    max_degree,
    radius,
)
from repro.graphs.spanning import InTree, OutTree, broadcast_tree, convergecast_tree
from repro.graphs.standard import (
    bidirectional_ring,
    binary_tree,
    clique,
    hypercube,
    path,
    random_strongly_connected,
    star,
    torus,
    unidirectional_ring,
)
from repro.graphs.topology import Topology

__all__ = [
    "InTree",
    "OutTree",
    "SymmetryGroup",
    "Topology",
    "all_pairs_distances",
    "automorphism_generators",
    "bidirectional_ring",
    "binary_tree",
    "broadcast_tree",
    "clique",
    "close_generators",
    "convergecast_tree",
    "diameter",
    "distances_from",
    "eccentricity",
    "edge_permutation",
    "hypercube",
    "is_strongly_connected",
    "max_degree",
    "path",
    "protocol_symmetry_group",
    "radius",
    "random_strongly_connected",
    "star",
    "symmetry_group_from_generators",
    "torus",
    "unidirectional_ring",
]
