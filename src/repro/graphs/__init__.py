"""Graph substrate: topologies, standard families, spanning trees, properties."""

from repro.graphs.properties import (
    all_pairs_distances,
    diameter,
    distances_from,
    eccentricity,
    is_strongly_connected,
    max_degree,
    radius,
)
from repro.graphs.spanning import InTree, OutTree, broadcast_tree, convergecast_tree
from repro.graphs.standard import (
    bidirectional_ring,
    binary_tree,
    clique,
    hypercube,
    path,
    random_strongly_connected,
    star,
    torus,
    unidirectional_ring,
)
from repro.graphs.topology import Topology

__all__ = [
    "InTree",
    "OutTree",
    "Topology",
    "all_pairs_distances",
    "bidirectional_ring",
    "binary_tree",
    "broadcast_tree",
    "clique",
    "convergecast_tree",
    "diameter",
    "distances_from",
    "eccentricity",
    "hypercube",
    "is_strongly_connected",
    "max_degree",
    "path",
    "radius",
    "random_strongly_connected",
    "star",
    "torus",
    "unidirectional_ring",
]
