"""Structural graph properties used by the paper's statements.

Proposition 2.1 lower-bounds round complexity by the graph *radius*; Theorem
5.10 is parameterized by the maximum degree; every protocol requires a
*strongly connected* topology (Section 2).
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import ValidationError
from repro.graphs.topology import Topology

_UNREACHABLE = -1


def distances_from(topology: Topology, source: int) -> list[int]:
    """Directed BFS distances from ``source``; -1 marks unreachable nodes."""
    dist = [_UNREACHABLE] * topology.n
    dist[source] = 0
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in topology.out_neighbors(u):
            if dist[v] == _UNREACHABLE:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def all_pairs_distances(topology: Topology) -> list[list[int]]:
    return [distances_from(topology, source) for source in topology.nodes]


def is_strongly_connected(topology: Topology) -> bool:
    """Every node reaches every node (the paper's standing assumption)."""
    forward = distances_from(topology, 0)
    if any(d == _UNREACHABLE for d in forward):
        return False
    reversed_topology = Topology(
        topology.n, [(v, u) for (u, v) in topology.edges], name="reversed"
    )
    backward = distances_from(reversed_topology, 0)
    return all(d != _UNREACHABLE for d in backward)


def eccentricity(topology: Topology, source: int) -> int:
    """Max distance from ``source`` to any node (graph must be s.c.)."""
    dist = distances_from(topology, source)
    if any(d == _UNREACHABLE for d in dist):
        raise ValidationError("eccentricity undefined: graph not strongly connected")
    return max(dist)


def radius(topology: Topology) -> int:
    """min over nodes of eccentricity — the r of Proposition 2.1."""
    return min(eccentricity(topology, source) for source in topology.nodes)


def diameter(topology: Topology) -> int:
    return max(eccentricity(topology, source) for source in topology.nodes)


def max_degree(topology: Topology) -> int:
    """The Delta(G) of Theorem 5.10.

    For a directed graph we take the maximum over nodes of
    ``max(in_degree, out_degree)`` — a reaction function's domain is
    ``Sigma^{in_degree}`` and its range ``Sigma^{out_degree}``, so this is the
    exponent that drives the counting argument.
    """
    return max(
        max(topology.in_degree(i), topology.out_degree(i)) for i in topology.nodes
    )
