"""Spanning in-/out-trees for the generic protocol of Proposition 2.3.

The proof of Proposition 2.3 uses two spanning trees rooted at node 1 (node 0
here): ``T1`` with a directed path from the root to every node (broadcast) and
``T2`` with a directed path from every node to the root (convergecast).  Both
exist in every strongly connected digraph; we take BFS shortest-path trees.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.graphs.topology import Topology


@dataclass(frozen=True)
class OutTree:
    """Directed paths from the root to every node (the paper's T1)."""

    root: int
    #: parent[v] = the node from which v is reached; edge (parent[v], v) in E.
    parent: dict[int, int]
    children: dict[int, tuple[int, ...]] = field(repr=False)

    def depth(self, v: int) -> int:
        d = 0
        while v != self.root:
            v = self.parent[v]
            d += 1
        return d


@dataclass(frozen=True)
class InTree:
    """Directed paths from every node to the root (the paper's T2)."""

    root: int
    #: parent[v] = next hop from v toward the root; edge (v, parent[v]) in E.
    parent: dict[int, int]
    children: dict[int, tuple[int, ...]] = field(repr=False)

    def depth(self, v: int) -> int:
        d = 0
        while v != self.root:
            v = self.parent[v]
            d += 1
        return d


def broadcast_tree(topology: Topology, root: int = 0) -> OutTree:
    """BFS shortest-path out-tree rooted at ``root``."""
    parent: dict[int, int] = {}
    seen = {root}
    queue = deque((root,))
    while queue:
        u = queue.popleft()
        for v in topology.out_neighbors(u):
            if v not in seen:
                seen.add(v)
                parent[v] = u
                queue.append(v)
    if len(seen) != topology.n:
        raise ValidationError("graph has no spanning out-tree from the root")
    return OutTree(root, parent, _children_of(parent, topology.n))


def convergecast_tree(topology: Topology, root: int = 0) -> InTree:
    """BFS shortest-path in-tree rooted at ``root`` (built on the reversed graph)."""
    reversed_out: list[list[int]] = [[] for _ in range(topology.n)]
    for (u, v) in topology.edges:
        reversed_out[v].append(u)
    parent: dict[int, int] = {}
    seen = {root}
    queue = deque((root,))
    while queue:
        u = queue.popleft()
        for v in reversed_out[u]:
            if v not in seen:
                seen.add(v)
                parent[v] = u  # original edge (v, u): v's next hop toward root
                queue.append(v)
    if len(seen) != topology.n:
        raise ValidationError("graph has no spanning in-tree to the root")
    return InTree(root, parent, _children_of(parent, topology.n))


def _children_of(parent: dict[int, int], n: int) -> dict[int, tuple[int, ...]]:
    children: dict[int, list[int]] = {i: [] for i in range(n)}
    for child, par in parent.items():
        children[par].append(child)
    return {i: tuple(sorted(kids)) for i, kids in children.items()}
