"""Directed communication topologies.

The paper's model runs on a strongly connected directed graph ``G = ([n], E)``
(Section 2).  :class:`Topology` is a small immutable digraph tailored to the
engine's needs: fixed edge order (so labelings can be stored as flat tuples),
and precomputed per-node incoming/outgoing edge lists.

Nodes are ``0 .. n-1`` (the paper's 1-based node ``i`` is node ``i-1`` here).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.reaction import Edge
from repro.exceptions import ValidationError


class Topology:
    """An immutable directed graph with a canonical edge order."""

    __slots__ = ("_n", "_edges", "_edge_index", "_in", "_out", "name")

    def __init__(self, n: int, edges: Iterable[Edge], name: str = ""):
        if n <= 0:
            raise ValidationError("a topology needs at least one node")
        edge_list = []
        edge_index: dict[Edge, int] = {}
        incoming: list[list[Edge]] = [[] for _ in range(n)]
        outgoing: list[list[Edge]] = [[] for _ in range(n)]
        for edge in edges:
            u, v = edge
            if not (0 <= u < n and 0 <= v < n):
                raise ValidationError(f"edge {edge!r} has endpoints outside 0..{n - 1}")
            if u == v:
                raise ValidationError(f"self-loop {edge!r} is not allowed")
            if edge in edge_index:
                raise ValidationError(f"duplicate edge {edge!r}")
            edge_index[edge] = len(edge_list)
            edge_list.append(edge)
            outgoing[u].append(edge)
            incoming[v].append(edge)
        self._n = n
        self._edges = tuple(edge_list)
        self._edge_index = edge_index
        self._in = tuple(tuple(block) for block in incoming)
        self._out = tuple(tuple(block) for block in outgoing)
        self.name = name or f"digraph(n={n}, m={len(edge_list)})"

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of directed edges."""
        return len(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges in canonical (insertion) order."""
        return self._edges

    @property
    def nodes(self) -> range:
        return range(self._n)

    def edge_position(self, edge: Edge) -> int:
        """Index of ``edge`` in the canonical order."""
        try:
            return self._edge_index[edge]
        except KeyError as exc:
            raise ValidationError(f"{edge!r} is not an edge of {self.name}") from exc

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edge_index

    def in_edges(self, i: int) -> tuple[Edge, ...]:
        """Edges ``(u, i)``; the paper's ``-i``."""
        return self._in[i]

    def out_edges(self, i: int) -> tuple[Edge, ...]:
        """Edges ``(i, v)``; the paper's ``+i``."""
        return self._out[i]

    def in_neighbors(self, i: int) -> tuple[int, ...]:
        return tuple(u for (u, _) in self._in[i])

    def out_neighbors(self, i: int) -> tuple[int, ...]:
        return tuple(v for (_, v) in self._out[i])

    def in_degree(self, i: int) -> int:
        return len(self._in[i])

    def out_degree(self, i: int) -> int:
        return len(self._out[i])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._n == other._n and set(self._edges) == set(other._edges)

    def __hash__(self) -> int:
        return hash((self._n, frozenset(self._edges)))

    def __repr__(self) -> str:
        return f"<Topology {self.name}: n={self._n}, m={self.m}>"
