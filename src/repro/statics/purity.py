"""Static statelessness verification of reaction functions.

The paper's model rests on one restriction: every reaction is a *pure
deterministic* function of its current inputs (Section 2.1) — no hidden
state, no clocks, no coins.  The runtime only discovers violations late (a
stateful reaction silently demotes the batch backend to the Python
fallback; an RNG-carrying one fails fingerprinting deep in
canonicalization), so this module checks the promise at the boundary:
AST-plus-closure inspection of a reaction callable, yielding a
:class:`Purity` verdict per node with source locations.

What the verifier flags as **hidden state** (verdict ``STATEFUL``):

* writes to ``self`` attributes inside ``react``/``__call__``/
  ``compile_fast_path`` (including subscript stores and in-place ops);
* ``nonlocal``/``global`` declarations (a write-back across calls);
* mutation of closed-over cells (``.append``/``.update``/... or a
  subscript store on a free variable);
* mutable default arguments (the classic accumulating-default trap);
* unseeded module-level RNG calls (``random.random()``,
  ``numpy.random.*``) and ``random.Random`` instances reachable through
  the closure;
* wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``) and ``os.environ`` reads — time and environment are
  state the node does not receive on its incoming edges.

Reactions whose source cannot be inspected (C extensions, ``exec``-built
code) or that use dynamic features the analysis cannot see through come
back ``UNKNOWN`` — the verifier fails open on *verdicts* but never claims
``PURE`` without having read the code.  Closure cells holding mutable
containers that are only ever read are reported as ``info`` diagnostics
(purity then depends on nobody mutating the cell) without demoting the
verdict; calls into closed-over model objects are assumed pure, matching
the runtime contract that protocol parameters are frozen after
construction.

Declared statefulness is handled by declaration, not inspection: a
:class:`~repro.core.reaction.StatefulReactionFunction` (or any reaction of
a protocol with ``is_stateful=True``) reads its own outgoing labels by
contract and classifies ``STATEFUL`` outright.  The cross-check runs the
other way too — a *declared-stateless* protocol whose reaction shows
hidden-state evidence is an ``error``, the exact contradiction this
verifier exists to catch.
"""

from __future__ import annotations

import ast
import enum
import functools
import inspect
import textwrap
import types
from dataclasses import dataclass

from repro.core.reaction import ReactionFunction, StatefulReactionFunction
from repro.exceptions import Diagnostic

#: Method names whose call on a closed-over (or ``self``-reachable) object
#: mutates it in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: ``random``-module functions that draw from the hidden global generator.
UNSEEDED_RNG_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
    }
)

#: ``time``-module wall-clock reads.
WALL_CLOCK_FUNCTIONS = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns", "time", "time_ns"}
)

#: ``numpy.random`` module-level draw functions (the legacy global
#: generator).  Seeding helpers (``seed``, ``default_rng``) are
#: deliberately absent: constructing a seeded generator is not a draw.
NUMPY_RNG_FUNCTIONS = frozenset(
    {
        "binomial",
        "choice",
        "exponential",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Builtin container types whose closure cells are flagged as mutable.
MUTABLE_CELL_TYPES = (list, dict, set, bytearray)

#: How deep the analysis follows closure-cell functions (``make_reaction``
#: factories nest one or two levels; anything deeper is exotic).
MAX_DEPTH = 6


class Purity(enum.Enum):
    """The verifier's per-reaction verdict."""

    #: Inspected and free of hidden-state evidence.
    PURE = "pure"
    #: Hidden state found, or statefulness declared by type/flag.
    STATEFUL = "stateful"
    #: Source unavailable or dynamic features defeated the analysis.
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ReactionVerdict:
    """One reaction's verdict with the evidence that produced it.

    ``node`` is the protocol node index when the reaction was reached
    through a protocol (``None`` for standalone callables); ``target``
    names the analyzed object (class path or function qualname); ``path``/
    ``line`` locate its source when available.
    """

    verdict: Purity
    target: str
    node: int | None = None
    path: str | None = None
    line: int | None = None
    diagnostics: tuple = ()

    @property
    def errors(self) -> tuple:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def record(self) -> dict:
        return {
            "node": self.node,
            "verdict": self.verdict.value,
            "target": self.target,
            "path": self.path,
            "line": self.line,
            "diagnostics": [d.record() for d in self.diagnostics],
        }

    def describe(self) -> str:
        where = "" if self.node is None else f"node {self.node}: "
        return f"{where}{self.verdict.value.upper()} ({self.target})"


@dataclass(frozen=True)
class PurityReport:
    """Per-node verdicts for one protocol, plus the flag cross-check."""

    protocol: str
    declared_stateful: bool
    verdicts: tuple
    diagnostics: tuple = ()

    @property
    def ok(self) -> bool:
        """No error-severity finding anywhere in the report."""
        return not self.errors

    @property
    def errors(self) -> tuple:
        found = [d for d in self.diagnostics if d.severity == "error"]
        for verdict in self.verdicts:
            found.extend(verdict.errors)
        return tuple(found)

    def counts(self) -> dict:
        tally = {purity.value: 0 for purity in Purity}
        for verdict in self.verdicts:
            tally[verdict.verdict.value] += 1
        return tally

    def record(self) -> dict:
        return {
            "protocol": self.protocol,
            "declared_stateful": self.declared_stateful,
            "counts": self.counts(),
            "verdicts": [v.record() for v in self.verdicts],
            "diagnostics": [d.record() for d in self.diagnostics],
        }

    def describe(self) -> str:
        tally = self.counts()
        parts = ", ".join(
            f"{count} {name}" for name, count in tally.items() if count
        )
        return f"{self.protocol}: {parts or 'no reactions'}"


def _classpath(obj) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _source_location(fn) -> tuple[str | None, int | None]:
    code = getattr(fn, "__code__", None)
    if code is None:
        return None, None
    return code.co_filename, code.co_firstlineno


class _FunctionAnalysis(ast.NodeVisitor):
    """One function's AST walk: collect hidden-state evidence.

    ``free_names`` are the function's closure variables (mutating them
    leaks state across calls); ``module_refs`` maps local names to the
    modules they resolve to through globals/closure, so ``random.random()``
    is recognized whatever the module was imported as.
    """

    def __init__(self, analyzer, fn, tree):
        import random as _random

        self.analyzer = analyzer
        self.fn = fn
        self.path = fn.__code__.co_filename
        self.free_names = set(fn.__code__.co_freevars)
        self.module_refs: dict[str, str] = {}
        #: Names that resolve to live ``random.Random`` instances (globals
        #: or closure cells): any method call on one is a stateful draw.
        self.rng_names: set[str] = set()
        #: Names bound to builtin mutable containers (module globals or
        #: closure cells): a mutator-method call on one leaks state, while
        #: the same call on a closed-over *model object* is assumed pure
        #: (the runtime contract freezes protocol parameters after
        #: construction — a documented limitation of the analysis).
        self.mutable_names: set[str] = set()
        scope = dict(fn.__globals__)
        scope.update(self.analyzer.closure_values(fn))
        for name, value in scope.items():
            if isinstance(value, types.ModuleType):
                self.module_refs[name] = value.__name__
            elif isinstance(value, _random.Random):
                self.rng_names.add(name)
            elif isinstance(value, MUTABLE_CELL_TYPES):
                self.mutable_names.add(name)
        self._tree = tree

    # -- helpers -----------------------------------------------------------

    def _flag(self, rule, node, message):
        self.analyzer.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity="error",
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
            )
        )
        self.analyzer.stateful = True

    def _note(self, rule, node, message, severity="info"):
        self.analyzer.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
            )
        )
        if severity == "warning":
            self.analyzer.unknown = True

    def _module_of(self, node) -> str | None:
        """The module a dotted reference is rooted in, if resolvable."""
        root = node
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            return self.module_refs.get(root.id)
        return None

    def _attr_chain(self, node) -> list[str]:
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        return list(reversed(chain))

    def _is_state_root(self, node) -> str | None:
        """``"self"``/``"closure"`` when a store target reaches shared state."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return "self"
            node = node.value
        if isinstance(node, ast.Name) and node.id in self.free_names:
            return "closure"
        return None

    def _check_store_target(self, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if isinstance(target, ast.Name):
            return  # rebinding a local is pure
        root = self._is_state_root(target)
        if root == "self":
            self._flag(
                "purity/self-write",
                target,
                "reaction writes to a `self` attribute — state survives"
                " across activations",
            )
        elif root == "closure":
            self._flag(
                "purity/closure-mutation",
                target,
                "reaction stores into a closed-over object — state survives"
                " across activations",
            )

    # -- visitors ----------------------------------------------------------

    def visit_Import(self, node):
        # Function-local imports must not defeat module resolution.
        for alias in node.names:
            self.module_refs[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if node.module is not None:
            for alias in node.names:
                if alias.name == "random" and node.module == "numpy":
                    self.module_refs[alias.asname or alias.name] = (
                        "numpy.random"
                    )
        self.generic_visit(node)

    def visit_Global(self, node):
        self._flag(
            "purity/global-write",
            node,
            f"`global {', '.join(node.names)}` declares a cross-call write",
        )

    def visit_Nonlocal(self, node):
        self._flag(
            "purity/nonlocal-write",
            node,
            f"`nonlocal {', '.join(node.names)}` declares a cross-call write",
        )

    def visit_Assign(self, node):
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node):
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node):
        if node.value is not None:
            self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node):
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    def visit_Attribute(self, node):
        module = self._module_of(node)
        if module == "os" and self._attr_chain(node)[:1] == ["environ"]:
            self._flag(
                "purity/environ-read",
                node,
                "reaction reads os.environ — the environment is state the"
                " node does not receive on its incoming edges",
            )
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute):
            module = self._module_of(func)
            chain = self._attr_chain(func)
            root = func.value
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id in self.rng_names:
                self._flag(
                    "purity/rng-state",
                    node,
                    f"{root.id}.{func.attr}() draws from a random.Random"
                    f" the reaction reaches through its scope — the"
                    f" reaction carries RNG state",
                )
            elif module == "random" and func.attr in UNSEEDED_RNG_FUNCTIONS:
                self._flag(
                    "purity/unseeded-rng",
                    node,
                    f"random.{func.attr}() draws from the hidden global"
                    f" generator — reactions must be deterministic",
                )
            elif (
                module == "numpy"
                and "random" in chain[:-1]
                and func.attr in NUMPY_RNG_FUNCTIONS
            ) or (
                module == "numpy.random" and func.attr in NUMPY_RNG_FUNCTIONS
            ):
                self._flag(
                    "purity/unseeded-rng",
                    node,
                    f"numpy.random.{func.attr}() draws from numpy's global"
                    f" generator — reactions must be deterministic",
                )
            elif module == "time" and func.attr in WALL_CLOCK_FUNCTIONS:
                self._flag(
                    "purity/wall-clock",
                    node,
                    f"time.{func.attr}() reads the wall clock — time is"
                    f" state the node does not receive on its edges",
                )
            elif module == "datetime" and func.attr in ("now", "utcnow", "today"):
                self._flag(
                    "purity/wall-clock",
                    node,
                    f"datetime {func.attr}() reads the wall clock",
                )
            elif func.attr in MUTATING_METHODS:
                state_root = self._is_state_root(func)
                if state_root == "self":
                    self._flag(
                        "purity/self-write",
                        node,
                        f".{func.attr}() mutates a `self` attribute — state"
                        f" survives across activations",
                    )
                elif (
                    isinstance(root, ast.Name)
                    and root.id in self.mutable_names
                ):
                    scope_kind = (
                        "closed-over"
                        if root.id in self.free_names
                        else "module-global"
                    )
                    self._flag(
                        "purity/closure-mutation",
                        node,
                        f"{root.id}.{func.attr}() mutates a {scope_kind}"
                        f" container — state survives across activations",
                    )
        elif isinstance(func, ast.Name):
            if func.id in ("exec", "eval", "compile"):
                self._note(
                    "purity/dynamic-code",
                    node,
                    f"{func.id}() defeats static analysis",
                    severity="warning",
                )
            elif func.id in ("globals", "vars", "setattr", "delattr"):
                self._note(
                    "purity/dynamic-state",
                    node,
                    f"{func.id}() may reach shared state the analysis"
                    f" cannot see",
                    severity="warning",
                )
        self.generic_visit(node)

    def run(self):
        self._check_defaults()
        self.visit(self._tree)

    def _check_defaults(self):
        args = self._tree.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            ):
                self._flag(
                    "purity/mutable-default",
                    default,
                    "mutable default argument accumulates state across calls",
                )


class _Analyzer:
    """Drives the per-function walks over one reaction's callable graph."""

    def __init__(self):
        self.diagnostics: list[Diagnostic] = []
        self.stateful = False
        self.unknown = False
        self._seen: set[int] = set()

    def closure_values(self, fn) -> dict:
        values: dict = {}
        if fn.__closure__:
            for name, cell in zip(fn.__code__.co_freevars, fn.__closure__, strict=True):
                try:
                    values[name] = cell.cell_contents
                except ValueError:  # empty cell (still being built)
                    continue
        return values

    def analyze_function(self, fn, depth: int = 0) -> None:
        if not isinstance(fn, types.FunctionType):
            fn = getattr(fn, "__func__", fn)
        if not isinstance(fn, types.FunctionType):
            self.unknown = True
            self.diagnostics.append(
                Diagnostic(
                    rule="purity/opaque-callable",
                    severity="warning",
                    message=f"cannot inspect {type(fn).__name__} callable"
                    f" — no Python source to analyze",
                )
            )
            return
        if id(fn) in self._seen or depth > MAX_DEPTH:
            return
        self._seen.add(id(fn))

        path, line = _source_location(fn)
        try:
            source = textwrap.dedent(inspect.getsource(fn))
            tree = ast.parse(source)
            # Parsed linenos are snippet-relative; shift them back to the
            # function's true position so diagnostics point at the file.
            ast.increment_lineno(tree, (line or 1) - 1)
        except (OSError, TypeError, SyntaxError):
            self.unknown = True
            self.diagnostics.append(
                Diagnostic(
                    rule="purity/no-source",
                    severity="warning",
                    message=f"source for {fn.__qualname__} is unavailable"
                    f" — verdict stays UNKNOWN",
                    path=path,
                    line=line,
                )
            )
            return
        function_node = next(
            (
                node
                for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        if function_node is None:
            # A lambda: the parsed source is an expression (or a statement
            # the lambda was embedded in); walk the Lambda node instead.
            lambda_node = next(
                (n for n in ast.walk(tree) if isinstance(n, ast.Lambda)), None
            )
            if lambda_node is None:
                self.unknown = True
                return
            walker = _FunctionAnalysis(self, fn, lambda_node.body)
            walker.visit(lambda_node.body)
        else:
            walker = _FunctionAnalysis(self, fn, function_node)
            walker.run()

        # Runtime defaults: the AST check catches literals; this catches
        # mutable defaults computed elsewhere and passed through.
        for default in fn.__defaults__ or ():
            if isinstance(default, MUTABLE_CELL_TYPES):
                self.stateful = True
                self.diagnostics.append(
                    Diagnostic(
                        rule="purity/mutable-default",
                        severity="error",
                        message="mutable default argument accumulates state"
                        " across calls",
                        path=path,
                        line=line,
                    )
                )

        self._inspect_closure(fn, path, line, depth)

    def _inspect_closure(self, fn, path, line, depth) -> None:
        import random as _random

        for name, value in self.closure_values(fn).items():
            if isinstance(value, _random.Random):
                self.stateful = True
                self.diagnostics.append(
                    Diagnostic(
                        rule="purity/rng-state",
                        severity="error",
                        message=f"closure cell {name!r} holds a"
                        f" random.Random — the reaction carries RNG state",
                        path=path,
                        line=line,
                    )
                )
            elif isinstance(value, MUTABLE_CELL_TYPES):
                self.diagnostics.append(
                    Diagnostic(
                        rule="purity/mutable-cell",
                        severity="info",
                        message=f"closure cell {name!r} holds a mutable"
                        f" {type(value).__name__} — purity holds only while"
                        f" nothing mutates it",
                        path=path,
                        line=line,
                    )
                )
            elif isinstance(value, types.FunctionType):
                self.analyze_function(value, depth + 1)


def _reaction_callables(reaction) -> list:
    """The functions that execute when this reaction fires.

    For :class:`ReactionFunction` subclasses that is every overridden hook
    (``react``, ``__call__``, ``compile_fast_path``) plus any plain
    function stored on the instance (the ``_fn`` of the wrapper classes);
    for a bare callable, the callable itself.
    """
    if isinstance(reaction, (ReactionFunction, StatefulReactionFunction)):
        base = (
            StatefulReactionFunction
            if isinstance(reaction, StatefulReactionFunction)
            else ReactionFunction
        )
        callables = []
        for name in ("react", "__call__", "compile_fast_path"):
            method = getattr(type(reaction), name, None)
            if method is not None and method is not getattr(base, name, None):
                callables.append(method)
        for value in vars(reaction).values():
            if isinstance(value, types.FunctionType):
                callables.append(value)
        return callables
    if isinstance(reaction, functools.partial):
        return _reaction_callables(reaction.func)
    if not isinstance(reaction, (types.FunctionType, types.MethodType)):
        # An arbitrary callable instance: analyze its __call__ plus any
        # plain functions it stores.  Builtins (and C extension callables)
        # have neither a __dict__ nor a Python-level __call__ worth
        # analyzing — fall through and let the no-source path say UNKNOWN.
        call = getattr(type(reaction), "__call__", None)
        if isinstance(call, types.FunctionType):
            return [call] + [
                value
                for value in getattr(reaction, "__dict__", {}).values()
                if isinstance(value, types.FunctionType)
            ]
    return [reaction]


def verify_reaction(
    reaction, *, node: int | None = None, declared_stateful: bool = False
) -> ReactionVerdict:
    """Classify one reaction callable as PURE / STATEFUL / UNKNOWN.

    ``declared_stateful`` marks reactions reached through a protocol whose
    ``is_stateful`` flag is set; they (and any
    :class:`~repro.core.reaction.StatefulReactionFunction`) classify
    ``STATEFUL`` by declaration, without needing body evidence.
    """
    target = _classpath(reaction)
    primary = next(iter(_reaction_callables(reaction)), None)
    path, line = (None, None)
    if primary is not None:
        path, line = _source_location(primary)

    if declared_stateful or isinstance(reaction, StatefulReactionFunction):
        return ReactionVerdict(
            verdict=Purity.STATEFUL,
            target=target,
            node=node,
            path=path,
            line=line,
            diagnostics=(
                Diagnostic(
                    rule="purity/declared-stateful",
                    severity="info",
                    message="reads its own outgoing labels by declaration"
                    " (is_stateful) — the Theorem B.11 stateful model",
                    path=path,
                    line=line,
                ),
            ),
        )

    analyzer = _Analyzer()
    for fn in _reaction_callables(reaction):
        analyzer.analyze_function(fn)
    if analyzer.stateful:
        verdict = Purity.STATEFUL
    elif analyzer.unknown:
        verdict = Purity.UNKNOWN
    else:
        verdict = Purity.PURE
    return ReactionVerdict(
        verdict=verdict,
        target=target,
        node=node,
        path=path,
        line=line,
        diagnostics=tuple(analyzer.diagnostics),
    )


def verify_protocol_purity(protocol) -> PurityReport:
    """Per-node purity verdicts for a protocol, cross-checked with its flag.

    A declared-stateless protocol containing a reaction with hidden-state
    evidence yields an ``error`` diagnostic (``purity/undeclared-state``):
    the runtime would treat that node as pure — fingerprint it, lift it
    into batch tables — while its behavior depends on state the engine
    never sees.  The converse (declared stateful, no evidence) is only an
    ``info``: the flag is conservative-safe.
    """
    declared = bool(getattr(protocol, "is_stateful", False))
    verdicts = tuple(
        verify_reaction(reaction, node=i, declared_stateful=declared)
        for i, reaction in enumerate(protocol.reactions)
    )
    diagnostics: list[Diagnostic] = []
    if not declared:
        for verdict in verdicts:
            if verdict.verdict is Purity.STATEFUL:
                diagnostics.append(
                    Diagnostic(
                        rule="purity/undeclared-state",
                        severity="error",
                        message=f"node {verdict.node}: hidden state in a"
                        f" declared-stateless protocol ({verdict.target})",
                        path=verdict.path,
                        line=verdict.line,
                    )
                )
    return PurityReport(
        protocol=getattr(protocol, "name", type(protocol).__name__),
        declared_stateful=declared,
        verdicts=verdicts,
        diagnostics=tuple(diagnostics),
    )
