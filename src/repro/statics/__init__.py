"""Static analysis for the stateless-computation model.

Three passes, one premise: the paper's guarantees hold only for *pure*
reactions, and promises like that should be checked at the boundary, not
discovered at runtime.

* :mod:`repro.statics.purity` — classify every reaction ``PURE /
  STATEFUL / UNKNOWN`` by AST + closure inspection, cross-checked against
  the protocol's declared ``is_stateful`` flag.
* :mod:`repro.statics.preflight` — predict a plan's batch liftability
  partition and fingerprint-safety before any work is enqueued
  (``SweepService.submit(..., preflight=)`` records the result in JOB
  records next to the admission decision).
* :mod:`repro.statics.lint` — repo-invariant AST checks: unified-policy
  parameters, no internal legacy keywords, no wall clocks in kernel
  paths, and lock discipline over the threaded service.

``python -m repro.statics [src/ | PLAN.pkl]`` runs the passes from the
command line with a machine-readable report (:mod:`repro.statics.__main__`).
"""

from repro.statics.lint import lint_paths, lint_source
from repro.statics.preflight import (
    NodeLift,
    PlanPreflight,
    ProtocolPreflight,
    fingerprint_offenders,
    verify_plan,
    verify_protocol,
)
from repro.statics.purity import (
    Purity,
    PurityReport,
    ReactionVerdict,
    verify_protocol_purity,
    verify_reaction,
)

__all__ = [
    "NodeLift",
    "PlanPreflight",
    "ProtocolPreflight",
    "Purity",
    "PurityReport",
    "ReactionVerdict",
    "fingerprint_offenders",
    "lint_paths",
    "lint_source",
    "verify_plan",
    "verify_protocol",
    "verify_protocol_purity",
    "verify_reaction",
]
