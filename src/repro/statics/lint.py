"""Repo-invariant lint: AST checks a generic linter cannot express.

Four rules, each encoding a convention this codebase relies on but ruff
has no vocabulary for:

* ``lint/policy-parameter`` — any function carrying an ``UNSET``-defaulted
  legacy keyword must also accept ``policy=``: the deprecation shim
  (:func:`repro.policy.resolve_policy`) only works when there is a policy
  to resolve *into*, so an entry point that grows a legacy knob without
  the unified one has broken the migration contract.
* ``lint/legacy-kwarg`` — no internal call site passes the deprecated
  ``processes=`` / ``executor=`` / ``kernel=`` keywords to a public entry
  point.  The shims exist for *downstream* callers; first-party code that
  still uses them resets the deprecation clock and exercises the warning
  path in production.
* ``lint/wall-clock`` — no ``time.*`` / ``datetime.now`` / ``os.environ``
  reads inside the kernel and fingerprint paths.  Simulation is a pure
  function of (protocol, schedule, seeds) and fingerprints are content
  addresses; a clock or environment read in either would make results
  run-dependent.
* ``lint/lock-discipline`` — a lightweight static race detector for
  classes that construct their own ``threading.Lock``/``Condition`` in
  ``__init__`` (the :class:`~repro.service.jobs.SweepService` shape).  Any
  ``self.<attr>`` ever touched inside a ``with self._lock:`` block is
  *guarded*; touching a guarded attribute outside such a block, in any
  method other than ``__init__``, is flagged.  Helper methods that are
  only ever invoked with the lock already held opt out by stating so in
  their docstring — the literal sentence ``"Caller holds the lock."``
  (see ``SweepService._finish``) — which keeps the waiver next to the
  code it excuses and greppable.

The detector is intentionally lexical: it sees ``with``-block nesting,
not call graphs, so a guarded attribute reached through an unmarked helper
is a finding even if every current caller holds the lock.  That is the
point — the marker documents the contract the analysis then enforces.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.exceptions import Diagnostic

#: Entry points whose legacy keywords are deprecated shims.
ENTRY_POINTS = frozenset(
    {
        "execute_plan",
        "iter_shards",
        "plan_resilience_sweep",
        "plan_sweep",
        "run_resilience_sweep",
        "run_sweep",
        "submit",
        "submit_plan",
    }
)

#: The deprecated scattered keywords `ExecutionPolicy` replaced.
LEGACY_KWARGS = frozenset({"processes", "executor", "kernel"})

#: Path suffixes of the kernel/fingerprint modules where wall-clock and
#: environment reads would make pure computations run-dependent.
KERNEL_PATH_SUFFIXES = (
    "core/engine.py",
    "core/compiled.py",
    "core/batch.py",
    "core/batch_kernels.py",
    "service/fingerprint.py",
)

#: ``time``-module calls that read the wall clock.
WALL_CLOCK_FUNCTIONS = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns", "time", "time_ns"}
)

#: Docstring sentence that waives the lock-discipline check for a method
#: whose contract is to be called with the lock already held.
LOCK_WAIVER = "Caller holds the lock."

#: ``threading`` constructors whose result makes an attribute a lock.
LOCK_CONSTRUCTORS = frozenset({"Condition", "Lock", "RLock"})


def _is_unset_default(node) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "UNSET"
    return isinstance(node, ast.Attribute) and node.attr == "UNSET"


def _call_name(func) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _ModuleLint(ast.NodeVisitor):
    """One module's walk for the three module-local rules."""

    def __init__(self, path: str, kernel_path: bool):
        self.path = path
        self.kernel_path = kernel_path
        self.diagnostics: list[Diagnostic] = []
        #: local alias -> imported module name ("t" -> "time").
        self.module_aliases: dict[str, str] = {}
        #: local name -> (module, original name) for from-imports.
        self.from_imports: dict[str, tuple[str, str]] = {}

    def _flag(self, rule, node, message):
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity="error",
                message=message,
                path=self.path,
                line=getattr(node, "lineno", None),
            )
        )

    def visit_Import(self, node):
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name] = alias.name

    def visit_ImportFrom(self, node):
        if node.module:
            for alias in node.names:
                self.from_imports[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )

    def _check_function(self, node):
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        if any(_is_unset_default(d) for d in defaults):
            names = {a.arg for a in args.args} | {a.arg for a in args.kwonlyargs}
            if "policy" not in names:
                self._flag(
                    "lint/policy-parameter",
                    node,
                    f"{node.name}() takes UNSET-defaulted legacy keywords"
                    f" but no `policy=` — the deprecation shim has nothing"
                    f" to resolve into",
                )
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function

    def visit_Call(self, node):
        name = _call_name(node.func)
        if name in ENTRY_POINTS:
            for keyword in node.keywords:
                if keyword.arg in LEGACY_KWARGS:
                    self._flag(
                        "lint/legacy-kwarg",
                        node,
                        f"{name}(..., {keyword.arg}=) uses a deprecated"
                        f" legacy keyword — pass"
                        f" policy=ExecutionPolicy({keyword.arg}=...)",
                    )
        if self.kernel_path:
            self._check_wall_clock(node)
        self.generic_visit(node)

    def visit_Attribute(self, node):
        if self.kernel_path and isinstance(node.value, ast.Name):
            module = self.module_aliases.get(node.value.id)
            if module == "os" and node.attr == "environ":
                self._flag(
                    "lint/wall-clock",
                    node,
                    "os.environ read in a kernel/fingerprint path — the"
                    " environment must not influence pure computations",
                )
        self.generic_visit(node)

    def _check_wall_clock(self, node):
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self.module_aliases.get(func.value.id)
            if module == "time" and func.attr in WALL_CLOCK_FUNCTIONS:
                self._flag(
                    "lint/wall-clock",
                    node,
                    f"time.{func.attr}() in a kernel/fingerprint path —"
                    f" results must not depend on the wall clock",
                )
            elif module == "datetime" and func.attr in ("now", "utcnow", "today"):
                self._flag(
                    "lint/wall-clock",
                    node,
                    f"datetime {func.attr}() in a kernel/fingerprint path",
                )
        elif isinstance(func, ast.Name):
            origin = self.from_imports.get(func.id)
            if origin is not None:
                module, original = origin
                if module == "time" and original in WALL_CLOCK_FUNCTIONS:
                    self._flag(
                        "lint/wall-clock",
                        node,
                        f"time.{original}() in a kernel/fingerprint path —"
                        f" results must not depend on the wall clock",
                    )


class _LockDiscipline:
    """Per-class lock-discipline analysis (see the module docstring)."""

    def __init__(self, path: str, class_node: ast.ClassDef):
        self.path = path
        self.class_node = class_node
        self.method_names = {
            item.name
            for item in class_node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.lock_attrs = self._find_lock_attrs()

    def _find_lock_attrs(self) -> set[str]:
        """Attributes ``__init__`` binds to a ``threading`` lock object."""
        locks: set[str] = set()
        init = next(
            (
                item
                for item in self.class_node.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return locks
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            name = _call_name(node.value.func)
            if name not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
        return locks

    def _is_lock_context(self, item) -> bool:
        expr = item.context_expr
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.lock_attrs
        )

    def _collect(self, node, inside: bool, guarded, bare) -> None:
        """Partition ``self.X`` accesses by lexical lock-block membership."""
        if isinstance(node, ast.With) and any(
            self._is_lock_context(item) for item in node.items
        ):
            inside = True
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr not in self.lock_attrs
            and node.attr not in self.method_names
        ):
            (guarded if inside else bare).append(node)
        for child in ast.iter_child_nodes(node):
            self._collect(child, inside, guarded, bare)

    def run(self) -> list[Diagnostic]:
        guarded_attrs: set[str] = set()
        bare_by_method: list[tuple[str, list]] = []
        for item in self.class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue  # construction precedes sharing
            docstring = ast.get_docstring(item) or ""
            guarded: list = []
            bare: list = []
            self._collect(item, False, guarded, bare)
            guarded_attrs.update(node.attr for node in guarded)
            if LOCK_WAIVER not in docstring:
                bare_by_method.append((item.name, bare))

        diagnostics = []
        for method, bare in bare_by_method:
            for node in bare:
                if node.attr in guarded_attrs:
                    diagnostics.append(
                        Diagnostic(
                            rule="lint/lock-discipline",
                            severity="error",
                            message=f"{self.class_node.name}.{method}"
                            f" touches self.{node.attr} outside the lock"
                            f" that guards it elsewhere — take the lock, or"
                            f" state {LOCK_WAIVER!r} in the docstring",
                            path=self.path,
                            line=node.lineno,
                        )
                    )
        return diagnostics


def lint_source(source: str, path: str = "<string>") -> tuple:
    """All four rules over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return (
            Diagnostic(
                rule="lint/syntax",
                severity="error",
                message=f"cannot parse: {error.msg}",
                path=path,
                line=error.lineno,
            ),
        )
    kernel_path = path.replace("\\", "/").endswith(KERNEL_PATH_SUFFIXES)
    walker = _ModuleLint(path, kernel_path)
    walker.visit(tree)
    diagnostics = list(walker.diagnostics)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            analysis = _LockDiscipline(path, node)
            if analysis.lock_attrs:
                diagnostics.extend(analysis.run())
    diagnostics.sort(key=lambda d: (d.path or "", d.line or 0, d.rule))
    return tuple(diagnostics)


def lint_paths(paths) -> tuple:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    diagnostics: list[Diagnostic] = []
    for file in files:
        diagnostics.extend(lint_source(file.read_text(), str(file)))
    return tuple(diagnostics)
