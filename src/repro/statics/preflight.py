"""Plan preflight: predict batch liftability and fingerprint-safety early.

Two runtime surprises this module moves to submit time:

* **Silent fallback demotion.**  :class:`repro.core.batch.BatchSimulator`
  decides per node whether to lift it into a lookup table or fall back to
  per-row Python apply (``src/repro/core/batch.py``, ``node_liftable`` and
  ``_assemble``).  The decision is correct either way, but a sweep the
  author believed vectorized can quietly run 100x slower.
  :func:`verify_protocol` reproduces the static part of the gate —
  statefulness, label-space enumerability, the ``|Sigma|**degree`` table
  budget — and :func:`verify_plan` adds the per-case part (unhashable
  private inputs), so the predicted partition is known before any work is
  enqueued.
* **Late fingerprint failure.**  A lambda reaction, a closed-over
  ``random.Random``, or an unregistered type inside a ``CaseSpec`` tree
  only fails once :mod:`repro.service.fingerprint` is deep in
  canonicalization — a bare :class:`~repro.exceptions.FingerprintError`
  with no pointer to the offending object.  :func:`fingerprint_offenders`
  walks the same tree shape canonicalization does, but *collects* located
  diagnostics (lambda source positions, the attribute path that reached the
  RNG) instead of raising on the first one.

The predictions must stay glued to the runtime: ``tests/test_statics.py``
property-tests :func:`verify_plan`'s predicted partition against the
``lifted_nodes`` the assembled :class:`~repro.core.batch.BatchSimulator`
actually reports.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import random
import types
from collections.abc import Mapping, Set
from dataclasses import dataclass

from repro.core.compiled import compile_protocol
from repro.exceptions import Diagnostic, StaticAnalysisError
from repro.service.fingerprint import _EXTRACTORS

try:  # batch.py self-guards its numpy import, but stay importable anywhere.
    from repro.core.batch import DEFAULT_MAX_TABLE_SIZE
except ImportError:  # pragma: no cover - exercised only on broken installs
    DEFAULT_MAX_TABLE_SIZE = 1 << 16

#: Why a node is predicted to land in the batch fallback path.
LIFT_REASONS = {
    "stateful": "the protocol is stateful: reactions read their own"
    " outgoing labels, so no input-only table exists",
    "space": "the label space exceeds the table budget, so no codes are"
    " enumerated at all",
    "table": "|Sigma|**in_degree exceeds max_table_size for this node",
    "unhashable-input": "the case's private input for this node is not"
    " hashable, so no (node, input) table can be cached",
}


@dataclass(frozen=True)
class NodeLift:
    """One node's predicted lift decision and, when demoted, the reason."""

    node: int
    lifted: bool
    reason: str | None = None
    degree: int = 0
    table_rows: int | None = None

    def record(self) -> dict:
        return {
            "node": self.node,
            "lifted": self.lifted,
            "reason": self.reason,
            "degree": self.degree,
            "table_rows": self.table_rows,
        }


@dataclass(frozen=True)
class ProtocolPreflight:
    """Predicted batch partition for one protocol (input-independent part).

    ``space_size`` is the enumerated code population — ``0`` when the label
    space exceeds the table budget, exactly as
    :class:`~repro.core.batch.BatchCompiledProtocol` would see it.
    """

    protocol: str
    is_stateful: bool
    space_size: int
    max_table_size: int
    lifts: tuple

    @property
    def predicted_lifted(self) -> tuple:
        return tuple(lift.node for lift in self.lifts if lift.lifted)

    @property
    def predicted_fallback(self) -> tuple:
        return tuple(lift.node for lift in self.lifts if not lift.lifted)

    @property
    def fully_lifted(self) -> bool:
        return not self.predicted_fallback

    def record(self) -> dict:
        return {
            "protocol": self.protocol,
            "is_stateful": self.is_stateful,
            "space_size": self.space_size,
            "max_table_size": self.max_table_size,
            "predicted_lifted": list(self.predicted_lifted),
            "predicted_fallback": [
                lift.record() for lift in self.lifts if not lift.lifted
            ],
        }

    def describe(self) -> str:
        lifted = len(self.predicted_lifted)
        return (
            f"{self.protocol}: {lifted}/{len(self.lifts)} nodes lift"
            f" (table budget {self.max_table_size})"
        )


@dataclass(frozen=True)
class PlanPreflight:
    """A plan's full preflight: partition, per-case demotions, fingerprints.

    ``case_demotions`` lists ``(case_index, node)`` pairs the plan's own
    inputs demote beyond the protocol-level prediction;
    ``fingerprint_diagnostics`` are the located offenders canonicalization
    would otherwise only reject one at a time, deep in the walk.
    """

    kind: str
    cases: int
    protocol: ProtocolPreflight
    case_demotions: tuple = ()
    fingerprint_diagnostics: tuple = ()
    diagnostics: tuple = ()

    @property
    def fingerprint_safe(self) -> bool:
        return not any(
            d.severity == "error" for d in self.fingerprint_diagnostics
        )

    @property
    def errors(self) -> tuple:
        return tuple(
            d
            for d in (*self.fingerprint_diagnostics, *self.diagnostics)
            if d.severity == "error"
        )

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_for_errors(self) -> None:
        """Raise :class:`StaticAnalysisError` when any error-severity
        diagnostic is present (the ``preflight="strict"`` submit path)."""
        errors = self.errors
        if errors:
            raise StaticAnalysisError(
                f"plan preflight found {len(errors)} blocking problem(s)",
                diagnostics=errors,
            )

    def record(self) -> dict:
        """The JSON-able form stored in JOB records next to admission."""
        return {
            "ok": self.ok,
            "kind": self.kind,
            "cases": self.cases,
            "fingerprint_safe": self.fingerprint_safe,
            "protocol": self.protocol.record(),
            "case_demotions": [list(pair) for pair in self.case_demotions],
            "diagnostics": [
                d.record()
                for d in (*self.fingerprint_diagnostics, *self.diagnostics)
            ],
        }

    def describe(self) -> str:
        safety = "safe" if self.fingerprint_safe else "UNSAFE"
        return (
            f"{self.protocol.describe()}; {len(self.case_demotions)}"
            f" case-level demotions; fingerprints {safety}"
        )


def verify_protocol(
    protocol, max_table_size: int = DEFAULT_MAX_TABLE_SIZE
) -> ProtocolPreflight:
    """Predict the batch lift partition for ``protocol``.

    Mirrors :meth:`repro.core.batch.BatchCompiledProtocol.node_liftable`
    without importing numpy or building any tables: stateful protocols and
    over-budget label spaces demote every node; otherwise each node lifts
    exactly when its ``|Sigma|**in_degree`` table fits ``max_table_size``.
    """
    compiled = compile_protocol(protocol)
    space = protocol.label_space
    space_size = space.size if space.size <= max_table_size else 0
    declared_stateful = bool(protocol.is_stateful)

    lifts = []
    for i in range(compiled.n):
        degree = len(compiled.in_positions[i])
        if declared_stateful:
            lifts.append(NodeLift(node=i, lifted=False, reason="stateful",
                                  degree=degree))
        elif space_size == 0:
            lifts.append(NodeLift(node=i, lifted=False, reason="space",
                                  degree=degree))
        else:
            rows = space_size**degree
            if rows <= max_table_size:
                lifts.append(NodeLift(node=i, lifted=True, degree=degree,
                                      table_rows=rows))
            else:
                lifts.append(NodeLift(node=i, lifted=False, reason="table",
                                      degree=degree, table_rows=rows))
    return ProtocolPreflight(
        protocol=getattr(protocol, "name", type(protocol).__name__),
        is_stateful=declared_stateful,
        space_size=space_size,
        max_table_size=max_table_size,
        lifts=tuple(lifts),
    )


def _lambda_location(fn) -> tuple[str | None, int | None]:
    code = getattr(fn, "__code__", None)
    if code is None:
        return None, None
    return code.co_filename, code.co_firstlineno


def _walk_offenders(obj, where: str, stack: list, out: list) -> None:
    """Collect fingerprint offenders in ``obj``, mirroring the shape of
    :func:`repro.service.fingerprint.canonical`'s recursion."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return

    identity = id(obj)
    if identity in stack:
        out.append(
            Diagnostic(
                rule="preflight/cycle",
                severity="error",
                message=f"{where}: cyclic object graph cannot be"
                f" canonicalized",
            )
        )
        return
    stack.append(identity)
    try:
        if isinstance(obj, (tuple, list)):
            for i, item in enumerate(obj):
                _walk_offenders(item, f"{where}[{i}]", stack, out)
            return
        if isinstance(obj, (Set, frozenset)):
            for item in obj:
                _walk_offenders(item, f"{where}{{...}}", stack, out)
            return
        if isinstance(obj, Mapping):
            for key, value in obj.items():
                _walk_offenders(key, f"{where} key", stack, out)
                _walk_offenders(value, f"{where}[{key!r}]", stack, out)
            return
        if isinstance(obj, enum.Enum):
            return
        if isinstance(obj, types.FunctionType):
            if "<lambda>" in obj.__qualname__:
                path, line = _lambda_location(obj)
                out.append(
                    Diagnostic(
                        rule="preflight/lambda",
                        severity="error",
                        message=f"{where}: lambda reactions cannot be"
                        f" fingerprinted (every lambda in a module shares"
                        f" the qualified name '<lambda>') — use a named"
                        f" function",
                        path=path,
                        line=line,
                    )
                )
                return
            for i, value in enumerate(obj.__defaults__ or ()):
                _walk_offenders(value, f"{where} default[{i}]", stack, out)
            if obj.__closure__:
                for name, cell in zip(
                    obj.__code__.co_freevars, obj.__closure__
                , strict=True):
                    try:
                        contents = cell.cell_contents
                    except ValueError:
                        continue
                    _walk_offenders(
                        contents, f"{where} closure[{name}]", stack, out
                    )
            return
        if isinstance(obj, types.MethodType):
            _walk_offenders(obj.__self__, f"{where}.__self__", stack, out)
            return
        if isinstance(obj, functools.partial):
            _walk_offenders(obj.func, f"{where}.func", stack, out)
            _walk_offenders(obj.args, f"{where}.args", stack, out)
            _walk_offenders(dict(obj.keywords), f"{where}.keywords", stack, out)
            return
        if isinstance(obj, random.Random):
            out.append(
                Diagnostic(
                    rule="preflight/rng-state",
                    severity="error",
                    message=f"{where}: random.Random carries mutable RNG"
                    f" state — fingerprint the seed, not the generator",
                )
            )
            return
        if isinstance(obj, (types.ModuleType, types.GeneratorType)):
            out.append(
                Diagnostic(
                    rule="preflight/process-local",
                    severity="error",
                    message=f"{where}: {type(obj).__name__} state is"
                    f" process-local and cannot be canonicalized",
                )
            )
            return

        extractor = _EXTRACTORS.get(type(obj))
        if extractor is not None:
            _walk_offenders(extractor(obj), where, stack, out)
            return
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            for field in dataclasses.fields(obj):
                _walk_offenders(
                    getattr(obj, field.name),
                    f"{where}.{field.name}",
                    stack,
                    out,
                )
            return
        state = dict(getattr(obj, "__dict__", ()) or ())
        for cls in type(obj).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name != "__dict__" and hasattr(obj, name):
                    state.setdefault(name, getattr(obj, name))
        if not state:
            out.append(
                Diagnostic(
                    rule="preflight/unregistered-type",
                    severity="error",
                    message=f"{where}: {type(obj).__module__}."
                    f"{type(obj).__qualname__} has no registered extractor"
                    f" and no instance attributes (register one with"
                    f" repro.service.register_fingerprint)",
                )
            )
            return
        for name, value in sorted(state.items()):
            _walk_offenders(value, f"{where}.{name}", stack, out)
    finally:
        stack.pop()


def fingerprint_offenders(obj, where: str = "plan") -> tuple:
    """Every object in ``obj``'s tree that canonicalization would refuse.

    Unlike :func:`repro.service.fingerprint.canonical` — which raises on
    the *first* offender with no location — this collects all of them as
    located :class:`~repro.exceptions.Diagnostic` records, with the
    attribute path (``plan.protocol.reactions[2] closure[fn]``) that
    reached each one.
    """
    out: list[Diagnostic] = []
    _walk_offenders(obj, where, [], out)
    return tuple(out)


def verify_plan(
    plan, max_table_size: int | None = None
) -> PlanPreflight:
    """Full preflight of a :class:`~repro.service.plan.SweepPlan`.

    Combines :func:`verify_protocol` (static lift partition, honoring the
    plan policy's ``batch_min_rows``-adjacent ``max_table_size`` default),
    per-case input hashability (the dynamic half of the lift gate), and
    :func:`fingerprint_offenders` over the protocol and every spec.
    """
    if max_table_size is None:
        max_table_size = DEFAULT_MAX_TABLE_SIZE
    protocol_preflight = verify_protocol(plan.protocol, max_table_size)

    demotions = []
    diagnostics = []
    lifted = set(protocol_preflight.predicted_lifted)
    for spec in plan.specs:
        for node, x in enumerate(spec.case.inputs):
            if node not in lifted:
                continue
            try:
                hash(x)
            except TypeError:
                demotions.append((spec.index, node))
                diagnostics.append(
                    Diagnostic(
                        rule="preflight/unhashable-input",
                        severity="warning",
                        message=f"case {spec.index}, node {node}: private"
                        f" input of type {type(x).__name__} is unhashable —"
                        f" this node falls back to per-row Python apply for"
                        f" this case",
                    )
                )

    offenders = list(fingerprint_offenders(plan.protocol, "plan.protocol"))
    for spec in plan.specs:
        offenders.extend(
            fingerprint_offenders(spec, f"plan.specs[{spec.index}]")
        )
    # The same lambda (or RNG) is typically shared by every spec; collapse
    # duplicate findings so the report stays one line per offender.
    unique, seen = [], set()
    for diagnostic in offenders:
        key = (diagnostic.rule, diagnostic.path, diagnostic.line,
               diagnostic.message.split(": ", 1)[-1])
        if key not in seen:
            seen.add(key)
            unique.append(diagnostic)

    return PlanPreflight(
        kind=plan.kind,
        cases=len(plan.specs),
        protocol=protocol_preflight,
        case_demotions=tuple(demotions),
        fingerprint_diagnostics=tuple(unique),
        diagnostics=tuple(diagnostics),
    )
