"""``python -m repro.statics [src/ ... | PLAN.pkl ...]`` — the static gate.

Each argument is dispatched by shape:

* a directory or ``.py`` file runs the repo-invariant lint pass
  (:func:`repro.statics.lint.lint_paths`);
* a ``.pkl``/``.pickle`` file is unpickled as a
  :class:`~repro.service.plan.SweepPlan` (or a protocol) and preflighted:
  predicted batch partition, fingerprint-safety, and the purity verdicts
  of its reactions.

``--json`` emits one machine-readable report object; the human format is
one :meth:`~repro.exceptions.Diagnostic.describe` line per finding plus a
summary.  Exit status: ``1`` when any *error* diagnostic was produced,
``--strict`` additionally fails on warnings (the CI setting, so "the
analysis could not prove it" never rots into an ignored column of yellow).
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from pathlib import Path

from repro.statics.lint import lint_paths
from repro.statics.preflight import verify_plan, verify_protocol
from repro.statics.purity import verify_protocol_purity


def _preflight_target(path: Path) -> dict:
    """Preflight one pickled plan (or bare protocol) into a report dict."""
    with path.open("rb") as handle:
        target = pickle.load(handle)
    if hasattr(target, "specs"):  # a SweepPlan
        preflight = verify_plan(target)
        purity = verify_protocol_purity(target.protocol)
        diagnostics = [
            *preflight.fingerprint_diagnostics,
            *preflight.diagnostics,
            *purity.errors,
        ]
        return {
            "target": str(path),
            "kind": "plan",
            "preflight": preflight.record(),
            "purity": purity.record(),
            "diagnostics": [d.record() for d in diagnostics],
            "_objects": diagnostics,
        }
    preflight = verify_protocol(target)
    purity = verify_protocol_purity(target)
    return {
        "target": str(path),
        "kind": "protocol",
        "preflight": preflight.record(),
        "purity": purity.record(),
        "diagnostics": [d.record() for d in purity.errors],
        "_objects": list(purity.errors),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="static statelessness verifier, plan preflight, and"
        " repo-invariant lint",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="directories / .py files to lint, .pkl plans to preflight",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors (the CI setting)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON report on stdout",
    )
    args = parser.parse_args(argv)

    lint_targets = []
    plan_targets = []
    for raw in args.targets:
        path = Path(raw)
        if not path.exists():
            parser.error(f"no such target: {raw}")
        if path.suffix in (".pkl", ".pickle"):
            plan_targets.append(path)
        else:
            lint_targets.append(path)

    diagnostics = list(lint_paths(lint_targets)) if lint_targets else []
    report: dict = {
        "lint": {
            "targets": [str(path) for path in lint_targets],
            "diagnostics": [d.record() for d in diagnostics],
        },
        "preflight": [],
    }
    for path in plan_targets:
        entry = _preflight_target(path)
        diagnostics.extend(entry.pop("_objects"))
        report["preflight"].append(entry)

    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = sum(1 for d in diagnostics if d.severity == "warning")
    failed = errors > 0 or (args.strict and warnings > 0)
    report["summary"] = {
        "errors": errors,
        "warnings": warnings,
        "strict": args.strict,
        "ok": not failed,
    }

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.describe())
        for entry in report["preflight"]:
            preflight = entry["preflight"]
            purity = entry["purity"]
            fallback = preflight.get("protocol", preflight).get(
                "predicted_fallback", []
            )
            print(
                f"{entry['target']}: {entry['kind']} preflight —"
                f" {len(fallback)} predicted fallback node(s),"
                f" purity {purity['counts']}"
            )
        status = "FAIL" if failed else "ok"
        print(
            f"repro.statics: {status} ({errors} error(s),"
            f" {warnings} warning(s), strict={args.strict})"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
