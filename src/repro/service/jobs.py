"""The sweep job service: submit plans, watch shards land, fetch reports.

:class:`SweepService` wraps the plan executor (:mod:`repro.service.executor`)
in a submit/status/stream/result/cancel lifecycle backed by a small pool of
worker threads.  Each submitted :class:`~repro.service.plan.SweepPlan` runs
shard by shard through :func:`~repro.service.executor.iter_shards` against
the service's shared result cache, so

* a long sweep streams incremental aggregates instead of blocking callers
  until the end (:meth:`SweepService.stream`);
* resubmitting an identical plan is served from the cache — same report,
  bit for bit, at one fingerprint lookup per case;
* overlapping plans (same cases at different positions, tags, or recovery
  criteria) share cached case results.

Threads, not processes, carry the jobs: the simulation kernels release no
GIL, but per-case ``processes=`` fan-out still happens *inside* a job via
the executor, and the thread pool's job is overlap of cache-served jobs
with simulating ones plus a responsive control plane (status/cancel while
running).

Completed jobs can leave a BENCH-style JSON record behind (``records_dir``):
``JOB_<plan-fingerprint prefix>.json`` with the latest run under
``entries`` and every earlier run folded into ``history`` (newest last,
bounded), mirroring the ``benchmarks/_runner.py`` conventions so the same
tooling can read both.
"""

from __future__ import annotations

import enum
import itertools
import json
import queue
import threading
import time
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import JobError, ValidationError
from repro.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.service.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    predict_plan_cost,
)
from repro.service.cache import InMemoryCache, ResultCache
from repro.service.executor import ShardProgress, iter_shards
from repro.service.plan import SweepPlan

#: Oldest job-record history snapshots are dropped past this many
#: (newest kept) — matches ``benchmarks/_runner.py``.
HISTORY_LIMIT = 50

#: How often a blocked ``result()``/``stream()`` call reprices a queue-held
#: job, in seconds.  The service also reprices after every job it completes
#: itself, but a cache shared with *other* services (or processes) can grow
#: without any local completion — polling keeps held jobs live either way.
HELD_REPRICE_INTERVAL = 0.1


class JobState(enum.Enum):
    """Lifecycle of a submitted job.

    ``PENDING -> RUNNING -> {DONE, FAILED, CANCELLED}``; cancellation can
    also strike a job that never started, and a service with an admission
    policy can move an over-budget submission straight to ``REJECTED`` (or
    hold it in ``PENDING`` until the cache makes its predicted cost fit).
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Refused by the admission policy at submission time (terminal).
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.REJECTED,
        )


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job (safe to hold across updates)."""

    job_id: str
    state: JobState
    kind: str
    total_cases: int
    cases_done: int
    shards_done: int
    total_shards: int | None
    cache_hits: int
    cache_misses: int
    error: str | None = None
    #: Admission verdict (``"accept"``/``"reject"``/``"queue"``), or
    #: ``None`` on services without an admission policy.
    admission: str | None = None

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.state.value},"
            f" {self.cases_done}/{self.total_cases} cases"
            f" (cache {self.cache_hits} hits / {self.cache_misses} misses)"
        )


@dataclass
class _Job:
    """Mutable per-job record; every field is guarded by the service lock."""

    job_id: str
    plan: SweepPlan
    options: dict
    state: JobState = JobState.PENDING
    progress: list[ShardProgress] = field(default_factory=list)
    report: object = None
    error: str | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    started_at: float | None = None
    finished_at: float | None = None
    #: Latest admission verdict (None without an admission policy).
    admission: AdmissionDecision | None = None
    #: Preflight report (None when submitted with ``preflight="off"``).
    preflight: object = None
    #: True while the job is held back by a "queue" admission verdict.
    held: bool = False


class SweepService:
    """A local sweep job service: worker threads, shared cache, job table.

    ``cache=None`` gives the service its own :class:`InMemoryCache`; pass a
    :class:`~repro.service.cache.SqliteCache` for a cache that survives the
    process.  ``records_dir`` (optional) receives one BENCH-style JSON
    record per completed job.

    ``admission`` (optional :class:`~repro.service.admission.AdmissionPolicy`)
    turns on admission control: every submission's cost is predicted first
    (:func:`~repro.service.admission.predict_plan_cost`, against this
    service's cache — warm cases are discounted), and over-budget plans are
    either REJECTED outright or held PENDING and re-evaluated whenever a
    job finishes (completed jobs warm the cache, so a held plan's predicted
    cost only falls).  The verdict is recorded on the job and in its JSON
    record.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        *,
        workers: int = 1,
        records_dir=None,
        admission: AdmissionPolicy | None = None,
    ):
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        self.cache = cache if cache is not None else InMemoryCache()
        self.records_dir = Path(records_dir) if records_dir is not None else None
        self.admission = admission
        self._held: list[str] = []
        self._jobs: dict[str, _Job] = {}
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._updated = threading.Condition(self._lock)
        self._sequence = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"sweep-service-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- lifecycle ---------------------------------------------------------

    def submit(
        self,
        plan: SweepPlan,
        *,
        policy: ExecutionPolicy | None = None,
        shard_size: int | None = None,
        strict: bool = False,
        processes: int | None = UNSET,
        executor: str = UNSET,
        kernel: str | None = UNSET,
        recovered=None,
        preflight: str = "warn",
    ) -> str:
        """Queue a plan for execution and return its job id.

        The execution options mirror :func:`repro.service.execute_plan`:
        ``policy`` (:class:`repro.ExecutionPolicy`) carries the performance
        knobs, defaulting to the plan's own attached policy; the scattered
        ``processes=`` / ``executor=`` / ``kernel=`` keywords are
        deprecated shims.  The id embeds the plan fingerprint, so identical
        resubmissions are visibly related (``job-3-0f0b5a…`` vs
        ``job-7-0f0b5a…``).

        ``preflight`` runs :func:`repro.statics.verify_plan` on the
        submission: ``"warn"`` (default) records the predicted batch
        partition and fingerprint-safety report on the job — it lands in
        the JSON job record next to the admission decision — ``"strict"``
        additionally raises :class:`~repro.exceptions.StaticAnalysisError`
        before anything is enqueued when the plan carries a blocking
        problem, and ``"off"`` skips the check.

        On a service with an admission policy, an over-budget plan is
        REJECTED (the returned job id stays queryable and the decision is
        recorded) or held PENDING for re-evaluation, per the policy's
        ``over_budget`` action.
        """
        if preflight not in ("off", "warn", "strict"):
            raise ValidationError(
                f"preflight must be 'off', 'warn', or 'strict',"
                f" not {preflight!r}"
            )
        policy = resolve_policy(
            policy,
            {"processes": processes, "executor": executor, "kernel": kernel},
            api="SweepService.submit",
            fallback=plan.policy,
        )
        check = None
        if preflight != "off":
            # Imported here: repro.statics.preflight reaches back into
            # repro.service for the fingerprint extractor registry, so a
            # module-level import would be circular.
            from repro.statics.preflight import verify_plan

            check = verify_plan(plan)
            if preflight == "strict":
                check.raise_for_errors()
        decision = None
        if self.admission is not None:
            estimate = predict_plan_cost(plan, policy, cache=self.cache)
            decision = self.admission.decide(estimate)
        with self._lock:
            if self._closed:
                raise JobError("service is closed")
            job_id = f"job-{next(self._sequence)}-{plan.plan_fingerprint[:12]}"
            job = _Job(
                job_id=job_id,
                plan=plan,
                options={
                    "shard_size": shard_size,
                    "policy": policy,
                    "strict": strict,
                    "recovered": recovered,
                },
                admission=decision,
                preflight=check,
            )
            self._jobs[job_id] = job
            if decision is not None and decision.action == "reject":
                job.error = f"admission rejected: {decision.reason}"
                self._finish(job, JobState.REJECTED)
            elif decision is not None and decision.action == "queue":
                job.held = True
                self._held.append(job_id)
        if job.state is JobState.REJECTED:
            self._write_record(job)
            return job_id
        if not job.held:
            self._queue.put(job_id)
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """A snapshot of the job's state and progress counters."""
        with self._lock:
            job = self._require(job_id)
            latest = job.progress[-1] if job.progress else None
            return JobStatus(
                job_id=job.job_id,
                state=job.state,
                kind=job.plan.kind,
                total_cases=len(job.plan),
                cases_done=len(latest.aggregate) if latest else 0,
                shards_done=len(job.progress),
                total_shards=latest.total_shards if latest else None,
                cache_hits=latest.cache_hits if latest else 0,
                cache_misses=latest.cache_misses if latest else 0,
                error=job.error,
                admission=job.admission.action if job.admission else None,
            )

    def stream(self, job_id: str) -> Iterator[ShardProgress]:
        """Yield the job's shard progress live, catching up from the start.

        Ends when the job reaches a terminal state; raises :class:`JobError`
        if that state is FAILED or CANCELLED (after yielding whatever
        progress the job made).
        """
        seen = 0
        while True:
            with self._updated:
                job = self._require(job_id)
                self._updated.wait_for(
                    lambda: len(job.progress) > seen or job.state.terminal,
                    timeout=HELD_REPRICE_INTERVAL if job.held else None,
                )
                fresh = job.progress[seen:]
                seen += len(fresh)
                state, error = job.state, job.error
                held = job.held
            if held:
                self._review_held()
            yield from fresh
            if state.terminal and seen == len(job.progress):
                if state is JobState.FAILED:
                    raise JobError(f"job {job_id} failed: {error}")
                if state is JobState.CANCELLED:
                    raise JobError(f"job {job_id} was cancelled")
                if state is JobState.REJECTED:
                    raise JobError(f"job {job_id} was rejected: {error}")
                return

    def result(self, job_id: str, timeout: float | None = None):
        """Block until the job finishes and return its report.

        While the job is queue-held, its cost is repriced against the cache
        every :data:`HELD_REPRICE_INTERVAL` seconds, so warmth contributed by
        *other* services sharing the cache releases it too.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._updated:
                job = self._require(job_id)
                if job.state.terminal:
                    if job.state is JobState.FAILED:
                        raise JobError(f"job {job_id} failed: {job.error}")
                    if job.state is JobState.CANCELLED:
                        raise JobError(f"job {job_id} was cancelled")
                    if job.state is JobState.REJECTED:
                        raise JobError(
                            f"job {job_id} was rejected: {job.error}"
                        )
                    return job.report
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise JobError(
                            f"job {job_id} did not finish within {timeout}s"
                        )
                held = job.held
                slice_ = HELD_REPRICE_INTERVAL if held else remaining
                if remaining is not None and slice_ is not None:
                    slice_ = min(slice_, remaining)
                self._updated.wait(timeout=slice_)
            if held:
                self._review_held()

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``True`` if the job will not run to DONE.

        A PENDING job is cancelled outright; a RUNNING one stops at the next
        shard boundary (its partial progress stays readable).  Cancelling a
        terminal job returns ``False``.
        """
        with self._updated:
            job = self._require(job_id)
            if job.state.terminal:
                return False
            job.cancel_event.set()
            if job.state is JobState.PENDING:
                self._finish(job, JobState.CANCELLED)
            return True

    def jobs(self) -> list[JobStatus]:
        """Snapshots of every known job, in submission order."""
        with self._lock:
            ids = list(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and shut the workers down.

        With ``wait=True`` queued jobs finish first; otherwise pending jobs
        are cancelled and only the in-flight ones run to their next shard
        boundary.
        """
        with self._updated:
            if self._closed:
                return
            self._closed = True
            # Admission-held jobs are not in the worker queue and can never
            # finish on their own — cancel them regardless of ``wait``.
            for job_id in self._held:
                job = self._jobs[job_id]
                if not job.state.terminal:
                    job.cancel_event.set()
                    self._finish(job, JobState.CANCELLED)
            self._held.clear()
            if not wait:
                for job in self._jobs.values():
                    if not job.state.terminal:
                        job.cancel_event.set()
                        if job.state is JobState.PENDING:
                            self._finish(job, JobState.CANCELLED)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- internals ---------------------------------------------------------

    def _require(self, job_id: str) -> _Job:
        """Look up a job or raise. Caller holds the lock."""
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job {job_id!r}")
        return job

    def _finish(self, job: _Job, state: JobState) -> None:
        """Move a job to a terminal state and wake every waiter.

        Caller holds the lock.
        """
        job.state = state
        job.finished_at = time.time()
        self._updated.notify_all()

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._updated:
                job = self._jobs[job_id]
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_at = time.time()
                self._updated.notify_all()
            try:
                self._run(job)
            except Exception as error:  # pragma: no cover - defensive
                with self._updated:
                    job.error = f"{type(error).__name__}: {error}"
                    self._finish(job, JobState.FAILED)
            self._write_record(job)
            # Whatever just ran warmed the cache; held plans may now fit.
            self._review_held()

    def _review_held(self) -> None:
        """Re-admit queue-held jobs whose predicted cost now fits.

        Called after every completed job and by blocked ``result()``/
        ``stream()`` polls: cache entries only accumulate, so a held plan's
        predicted cost is monotonically non-increasing and re-evaluation is
        safe to repeat.  Only the caller that flips ``held`` off enqueues
        the job, so concurrent reviews cannot start it twice.
        """
        if self.admission is None:
            return
        with self._lock:
            candidates = list(self._held)
        for job_id in candidates:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state is not JobState.PENDING:
                    if job_id in self._held:
                        self._held.remove(job_id)
                    continue
            estimate = predict_plan_cost(
                job.plan, job.options["policy"], cache=self.cache
            )
            decision = self.admission.decide(estimate)
            release = decision.action == "accept"
            with self._updated:
                if job.state is not JobState.PENDING or not job.held:
                    continue
                job.admission = decision
                if release:
                    job.held = False
                    if job_id in self._held:
                        self._held.remove(job_id)
                    self._updated.notify_all()
            if release:
                self._queue.put(job_id)

    def _run(self, job: _Job) -> None:
        try:
            shards = iter_shards(job.plan, cache=self.cache, **job.options)
            report = job.plan.empty_report()
            for progress in shards:
                report = progress.aggregate
                with self._updated:
                    job.progress.append(progress)
                    self._updated.notify_all()
                if job.cancel_event.is_set():
                    with self._updated:
                        self._finish(job, JobState.CANCELLED)
                    return
        except Exception as error:
            with self._updated:
                job.error = f"{type(error).__name__}: {error}"
                self._finish(job, JobState.FAILED)
            return
        with self._updated:
            job.report = report
            if job.cancel_event.is_set():
                self._finish(job, JobState.CANCELLED)
            else:
                self._finish(job, JobState.DONE)

    # -- job records -------------------------------------------------------

    def _write_record(self, job: _Job) -> None:
        """Persist one BENCH-style record for a finished job (best effort)."""
        if self.records_dir is None:
            return
        self.records_dir.mkdir(parents=True, exist_ok=True)
        out_path = (
            self.records_dir / f"JOB_{job.plan.plan_fingerprint[:16]}.json"
        )
        record = {
            "job": job.job_id,
            "plan_fingerprint": job.plan.plan_fingerprint,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "entries": self._record_entries(job),
        }
        record = _merge_record_history(out_path, record)
        out_path.write_text(json.dumps(record, indent=2) + "\n")

    def _record_entries(self, job: _Job) -> dict:
        latest = job.progress[-1] if job.progress else None
        elapsed = None
        if job.started_at is not None and job.finished_at is not None:
            elapsed = job.finished_at - job.started_at
        policy = job.options["policy"]
        entries = {
            "state": job.state.value,
            "kind": job.plan.kind,
            "cases": len(job.plan),
            "cases_done": len(latest.aggregate) if latest else 0,
            "max_steps": job.plan.max_steps,
            "executor": policy.executor if policy else "serial",
            "shard_size": job.options["shard_size"],
            "elapsed_s": elapsed,
            "cache_hits": latest.cache_hits if latest else 0,
            "cache_misses": latest.cache_misses if latest else 0,
        }
        if job.admission is not None:
            entries["admission"] = job.admission.record()
        if job.preflight is not None:
            entries["preflight"] = job.preflight.record()
        if job.error is not None:
            entries["error"] = job.error
        if latest is not None:
            entries["outcomes"] = dict(
                Counter(
                    result.outcome.value for result in latest.aggregate.results
                )
            )
            if job.plan.kind == "resilience":
                entries["recovered"] = latest.aggregate.recovered_count
        return entries


def _merge_record_history(out_path: Path, record: dict) -> dict:
    """Fold the previous job record into ``record["history"]``, newest last.

    Same convention as ``benchmarks/_runner.py``: the committed file's own
    history is carried over, its top-level run appended as one more snapshot
    (skipped when identical), the tail bounded by :data:`HISTORY_LIMIT`.
    """
    history: list = []
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            previous = None
        if isinstance(previous, dict) and previous.get("entries"):
            history = [
                item
                for item in previous.get("history", [])
                if isinstance(item, dict)
            ]
            snapshot = {
                key: previous[key]
                for key in ("job", "recorded_at", "entries")
                if key in previous
            }
            if not history or history[-1].get("entries") != snapshot["entries"]:
                history.append(snapshot)
    record["history"] = history[-HISTORY_LIMIT:]
    return record
