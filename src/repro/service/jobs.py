"""The sweep job service: submit plans, watch shards land, fetch reports.

:class:`SweepService` wraps the plan executor (:mod:`repro.service.executor`)
in a submit/status/stream/result/cancel lifecycle backed by a small pool of
worker threads.  Each submitted :class:`~repro.service.plan.SweepPlan` runs
shard by shard through :func:`~repro.service.executor.iter_shards` against
the service's shared result cache, so

* a long sweep streams incremental aggregates instead of blocking callers
  until the end (:meth:`SweepService.stream`);
* resubmitting an identical plan is served from the cache — same report,
  bit for bit, at one fingerprint lookup per case;
* overlapping plans (same cases at different positions, tags, or recovery
  criteria) share cached case results.

Threads, not processes, carry the jobs: the simulation kernels release no
GIL, but per-case ``processes=`` fan-out still happens *inside* a job via
the executor, and the thread pool's job is overlap of cache-served jobs
with simulating ones plus a responsive control plane (status/cancel while
running).

Completed jobs can leave a BENCH-style JSON record behind (``records_dir``):
``JOB_<plan-fingerprint prefix>.json`` with the latest run under
``entries`` and every earlier run folded into ``history`` (newest last,
bounded), mirroring the ``benchmarks/_runner.py`` conventions so the same
tooling can read both.
"""

from __future__ import annotations

import enum
import itertools
import json
import queue
import threading
import time
from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import JobError, ValidationError
from repro.service.cache import InMemoryCache, ResultCache
from repro.service.executor import ShardProgress, iter_shards
from repro.service.plan import SweepPlan

#: Oldest job-record history snapshots are dropped past this many
#: (newest kept) — matches ``benchmarks/_runner.py``.
HISTORY_LIMIT = 50


class JobState(enum.Enum):
    """Lifecycle of a submitted job.

    ``PENDING -> RUNNING -> {DONE, FAILED, CANCELLED}``; cancellation can
    also strike a job that never started.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobStatus:
    """A point-in-time snapshot of one job (safe to hold across updates)."""

    job_id: str
    state: JobState
    kind: str
    total_cases: int
    cases_done: int
    shards_done: int
    total_shards: int | None
    cache_hits: int
    cache_misses: int
    error: str | None = None

    def describe(self) -> str:
        return (
            f"{self.job_id}: {self.state.value},"
            f" {self.cases_done}/{self.total_cases} cases"
            f" (cache {self.cache_hits} hits / {self.cache_misses} misses)"
        )


@dataclass
class _Job:
    """Mutable per-job record; every field is guarded by the service lock."""

    job_id: str
    plan: SweepPlan
    options: dict
    state: JobState = JobState.PENDING
    progress: list[ShardProgress] = field(default_factory=list)
    report: object = None
    error: str | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    started_at: float | None = None
    finished_at: float | None = None


class SweepService:
    """A local sweep job service: worker threads, shared cache, job table.

    ``cache=None`` gives the service its own :class:`InMemoryCache`; pass a
    :class:`~repro.service.cache.SqliteCache` for a cache that survives the
    process.  ``records_dir`` (optional) receives one BENCH-style JSON
    record per completed job.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        *,
        workers: int = 1,
        records_dir=None,
    ):
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        self.cache = cache if cache is not None else InMemoryCache()
        self.records_dir = Path(records_dir) if records_dir is not None else None
        self._jobs: dict[str, _Job] = {}
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._updated = threading.Condition(self._lock)
        self._sequence = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"sweep-service-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- lifecycle ---------------------------------------------------------

    def submit(
        self,
        plan: SweepPlan,
        *,
        shard_size: int | None = None,
        processes: int | None = None,
        strict: bool = False,
        executor: str = "serial",
        kernel: str | None = None,
        recovered=None,
    ) -> str:
        """Queue a plan for execution and return its job id.

        The execution options mirror :func:`repro.service.execute_plan`.
        The id embeds the plan fingerprint, so identical resubmissions are
        visibly related (``job-3-0f0b5a…`` vs ``job-7-0f0b5a…``).
        """
        with self._lock:
            if self._closed:
                raise JobError("service is closed")
            job_id = f"job-{next(self._sequence)}-{plan.plan_fingerprint[:12]}"
            job = _Job(
                job_id=job_id,
                plan=plan,
                options={
                    "shard_size": shard_size,
                    "processes": processes,
                    "strict": strict,
                    "executor": executor,
                    "kernel": kernel,
                    "recovered": recovered,
                },
            )
            self._jobs[job_id] = job
        self._queue.put(job_id)
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """A snapshot of the job's state and progress counters."""
        with self._lock:
            job = self._require(job_id)
            latest = job.progress[-1] if job.progress else None
            return JobStatus(
                job_id=job.job_id,
                state=job.state,
                kind=job.plan.kind,
                total_cases=len(job.plan),
                cases_done=len(latest.aggregate) if latest else 0,
                shards_done=len(job.progress),
                total_shards=latest.total_shards if latest else None,
                cache_hits=latest.cache_hits if latest else 0,
                cache_misses=latest.cache_misses if latest else 0,
                error=job.error,
            )

    def stream(self, job_id: str) -> Iterator[ShardProgress]:
        """Yield the job's shard progress live, catching up from the start.

        Ends when the job reaches a terminal state; raises :class:`JobError`
        if that state is FAILED or CANCELLED (after yielding whatever
        progress the job made).
        """
        seen = 0
        while True:
            with self._updated:
                job = self._require(job_id)
                self._updated.wait_for(
                    lambda: len(job.progress) > seen or job.state.terminal
                )
                fresh = job.progress[seen:]
                seen += len(fresh)
                state, error = job.state, job.error
            yield from fresh
            if state.terminal and seen == len(job.progress):
                if state is JobState.FAILED:
                    raise JobError(f"job {job_id} failed: {error}")
                if state is JobState.CANCELLED:
                    raise JobError(f"job {job_id} was cancelled")
                return

    def result(self, job_id: str, timeout: float | None = None):
        """Block until the job finishes and return its report."""
        with self._updated:
            job = self._require(job_id)
            if not self._updated.wait_for(
                lambda: job.state.terminal, timeout=timeout
            ):
                raise JobError(f"job {job_id} did not finish within {timeout}s")
            if job.state is JobState.FAILED:
                raise JobError(f"job {job_id} failed: {job.error}")
            if job.state is JobState.CANCELLED:
                raise JobError(f"job {job_id} was cancelled")
            return job.report

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``True`` if the job will not run to DONE.

        A PENDING job is cancelled outright; a RUNNING one stops at the next
        shard boundary (its partial progress stays readable).  Cancelling a
        terminal job returns ``False``.
        """
        with self._updated:
            job = self._require(job_id)
            if job.state.terminal:
                return False
            job.cancel_event.set()
            if job.state is JobState.PENDING:
                self._finish(job, JobState.CANCELLED)
            return True

    def jobs(self) -> list[JobStatus]:
        """Snapshots of every known job, in submission order."""
        with self._lock:
            ids = list(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and shut the workers down.

        With ``wait=True`` queued jobs finish first; otherwise pending jobs
        are cancelled and only the in-flight ones run to their next shard
        boundary.
        """
        with self._updated:
            if self._closed:
                return
            self._closed = True
            if not wait:
                for job in self._jobs.values():
                    if not job.state.terminal:
                        job.cancel_event.set()
                        if job.state is JobState.PENDING:
                            self._finish(job, JobState.CANCELLED)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- internals ---------------------------------------------------------

    def _require(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobError(f"unknown job {job_id!r}")
        return job

    def _finish(self, job: _Job, state: JobState) -> None:
        """Move a job to a terminal state and wake every waiter.

        Caller holds the lock.
        """
        job.state = state
        job.finished_at = time.time()
        self._updated.notify_all()

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._updated:
                job = self._jobs[job_id]
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_at = time.time()
                self._updated.notify_all()
            try:
                self._run(job)
            except Exception as error:  # pragma: no cover - defensive
                with self._updated:
                    job.error = f"{type(error).__name__}: {error}"
                    self._finish(job, JobState.FAILED)
            self._write_record(job)

    def _run(self, job: _Job) -> None:
        try:
            shards = iter_shards(job.plan, cache=self.cache, **job.options)
            report = job.plan.empty_report()
            for progress in shards:
                report = progress.aggregate
                with self._updated:
                    job.progress.append(progress)
                    self._updated.notify_all()
                if job.cancel_event.is_set():
                    with self._updated:
                        self._finish(job, JobState.CANCELLED)
                    return
        except Exception as error:
            with self._updated:
                job.error = f"{type(error).__name__}: {error}"
                self._finish(job, JobState.FAILED)
            return
        with self._updated:
            job.report = report
            if job.cancel_event.is_set():
                self._finish(job, JobState.CANCELLED)
            else:
                self._finish(job, JobState.DONE)

    # -- job records -------------------------------------------------------

    def _write_record(self, job: _Job) -> None:
        """Persist one BENCH-style record for a finished job (best effort)."""
        if self.records_dir is None:
            return
        self.records_dir.mkdir(parents=True, exist_ok=True)
        out_path = (
            self.records_dir / f"JOB_{job.plan.plan_fingerprint[:16]}.json"
        )
        record = {
            "job": job.job_id,
            "plan_fingerprint": job.plan.plan_fingerprint,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "entries": self._record_entries(job),
        }
        record = _merge_record_history(out_path, record)
        out_path.write_text(json.dumps(record, indent=2) + "\n")

    def _record_entries(self, job: _Job) -> dict:
        latest = job.progress[-1] if job.progress else None
        elapsed = None
        if job.started_at is not None and job.finished_at is not None:
            elapsed = job.finished_at - job.started_at
        entries = {
            "state": job.state.value,
            "kind": job.plan.kind,
            "cases": len(job.plan),
            "cases_done": len(latest.aggregate) if latest else 0,
            "max_steps": job.plan.max_steps,
            "executor": job.options["executor"],
            "shard_size": job.options["shard_size"],
            "elapsed_s": elapsed,
            "cache_hits": latest.cache_hits if latest else 0,
            "cache_misses": latest.cache_misses if latest else 0,
        }
        if job.error is not None:
            entries["error"] = job.error
        if latest is not None:
            entries["outcomes"] = dict(
                Counter(
                    result.outcome.value for result in latest.aggregate.results
                )
            )
            if job.plan.kind == "resilience":
                entries["recovered"] = latest.aggregate.recovered_count
        return entries


def _merge_record_history(out_path: Path, record: dict) -> dict:
    """Fold the previous job record into ``record["history"]``, newest last.

    Same convention as ``benchmarks/_runner.py``: the committed file's own
    history is carried over, its top-level run appended as one more snapshot
    (skipped when identical), the tail bounded by :data:`HISTORY_LIMIT`.
    """
    history: list = []
    if out_path.exists():
        try:
            previous = json.loads(out_path.read_text())
        except json.JSONDecodeError:
            previous = None
        if isinstance(previous, dict) and previous.get("entries"):
            history = [
                item
                for item in previous.get("history", [])
                if isinstance(item, dict)
            ]
            snapshot = {
                key: previous[key]
                for key in ("job", "recorded_at", "entries")
                if key in previous
            }
            if not history or history[-1].get("entries") != snapshot["entries"]:
                history.append(snapshot)
    record["history"] = history[-HISTORY_LIMIT:]
    return record
