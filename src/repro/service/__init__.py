"""repro.service — the sweep job service.

The layer above :mod:`repro.analysis`: a planner/executor split with
content-addressed result caching and a submit/stream/result job lifecycle.

* :mod:`repro.service.plan` — :func:`plan_sweep` /
  :func:`plan_resilience_sweep` build a :class:`SweepPlan` of picklable
  :class:`CaseSpec`\\ s with deterministic fingerprints.
* :mod:`repro.service.executor` — :func:`execute_plan` /
  :func:`iter_shards` run plans (optionally sharded and cached), yielding
  :class:`ShardProgress` aggregates that merge to exactly the one-shot
  report.
* :mod:`repro.service.cache` — :class:`InMemoryCache` /
  :class:`SqliteCache` content-addressed stores with hit/miss counters.
* :mod:`repro.service.fingerprint` — the canonicalization scheme behind
  the cache keys (:func:`fingerprint`, :func:`canonical`,
  :data:`ENGINE_VERSION`).
* :mod:`repro.service.jobs` / :mod:`repro.service.client` —
  :class:`SweepService` worker pool and the :class:`ServiceClient` /
  :class:`JobHandle` front-end.  ``python -m repro.service`` is the CLI.
* :mod:`repro.service.admission` — cost-model-backed admission control:
  :func:`predict_plan_cost` prices a plan (cache-hit-aware) and an
  :class:`AdmissionPolicy` accepts, rejects, or queues each submission.

The legacy one-shot entry points (:func:`repro.analysis.run_sweep`,
:func:`repro.analysis.run_resilience_sweep`) are thin wrappers over this
layer, so "plan then execute" and "run" are the same computation.
"""

from repro.service.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    predict_plan_cost,
)
from repro.service.cache import (
    CacheStats,
    InMemoryCache,
    ResultCache,
    SqliteCache,
)
from repro.service.client import JobHandle, ServiceClient
from repro.service.executor import (
    ShardProgress,
    execute_plan,
    iter_shards,
    resolve_plan_runner,
)
from repro.service.fingerprint import (
    ENGINE_VERSION,
    canonical,
    fingerprint,
    register_fingerprint,
)
from repro.service.jobs import JobState, JobStatus, SweepService
from repro.service.plan import (
    PLAN_KINDS,
    CaseSpec,
    SweepPlan,
    plan_resilience_sweep,
    plan_sweep,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "predict_plan_cost",
    "CacheStats",
    "InMemoryCache",
    "ResultCache",
    "SqliteCache",
    "JobHandle",
    "ServiceClient",
    "ShardProgress",
    "execute_plan",
    "iter_shards",
    "resolve_plan_runner",
    "ENGINE_VERSION",
    "canonical",
    "fingerprint",
    "register_fingerprint",
    "JobState",
    "JobStatus",
    "SweepService",
    "PLAN_KINDS",
    "CaseSpec",
    "SweepPlan",
    "plan_resilience_sweep",
    "plan_sweep",
]
