"""Canonical content fingerprints for sweep work.

Every object the paper's experiments run — a verdict, a witness, a
``SweepReport`` — is a pure function of its inputs: protocol, topology,
schedule, fault plan, seeds.  The service layer exploits that purity by
content-addressing results: :func:`fingerprint` maps any of the model
objects to a stable SHA-256 hex digest, and two objects share a digest
exactly when they describe the same computation.

The digest is computed over a *canonical tree*: a nested structure of
primitives (ints, strings, tagged tuples) built by :func:`canonical`.  The
rules that matter for cache soundness:

* **Stability.**  The tree depends only on constructor-level state, never on
  memoized or derived state.  Seeded random schedules fingerprint by
  ``(n, r, p, seed)`` — their realized activation sets are a deterministic
  function of the seed, so the memo is irrelevant; ``random.Random``
  instances and other mutable-state objects are refused outright
  (:class:`~repro.exceptions.FingerprintError`) rather than hashed unstably.
* **Injectivity (best effort, fail closed).**  Distinct computations must
  not collide.  Known model classes (topologies, label spaces, reactions,
  schedules, fault models and plans) have registered extractors covering
  exactly their defining state; unknown objects fall back to *all* of their
  instance attributes plus their class path; plain functions are identified
  by module, qualified name, defaults, and recursively-canonicalized closure
  cells.  Anonymous ``lambda``s are refused — every lambda in a module
  shares the qualified name ``<lambda>``, so two different ones could
  collide — use a named function for reactions that should be cacheable.
* **Name-keyed code.**  A named reaction function is identified by *name*,
  not bytecode (bytecode differs across interpreter versions, which would
  shard the cache per Python minor version for no semantic reason).  Editing
  a function's body without renaming it therefore does NOT change its
  fingerprint: when engine or reaction semantics change, bump
  :data:`ENGINE_VERSION` — it salts every digest and retires the whole
  cache at once.  The golden-fingerprint fixtures in
  ``tests/test_service_fingerprint.py`` fail when canonicalization drifts
  accidentally.

Cosmetic state — protocol/topology/label-space ``name`` strings, case
``tag``s — is excluded: renaming a protocol must hit the same cache entry.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import random
import types
from collections.abc import Callable, Mapping, Set

from repro.core.configuration import Configuration, Labeling
from repro.core.labels import (
    BitStrings,
    ExplicitLabelSpace,
    IntegerRange,
    ProductSpace,
)
from repro.core.protocol import StatefulProtocol, StatelessProtocol
from repro.core.reaction import (
    ConstantReaction,
    LambdaReaction,
    LambdaStatefulReaction,
    TabularReaction,
    UniformReaction,
)
from repro.core.schedule import (
    ExplicitSchedule,
    LassoSchedule,
    RandomRFairSchedule,
    RoundRobinSchedule,
    ShiftedSchedule,
    SynchronousSchedule,
)
from repro.exceptions import FingerprintError
from repro.faults.schedules import (
    BurstFault,
    ComposedFaultSchedule,
    NoFaults,
    OneShotFault,
    PeriodicFault,
    WindowFault,
)
from repro.graphs.topology import Topology

#: The engine/kernel version salt.  Mixed into every digest; bump it when
#: the engine's observable run semantics change (or when canonicalization
#: itself changes), which invalidates every previously cached result in one
#: stroke instead of silently serving stale reports.
ENGINE_VERSION = "repro-engine-1"

#: Registered state extractors, keyed by *exact* type (subclasses fall back
#: to the generic attribute walk so state added by a subclass is never
#: silently dropped from the digest).
_EXTRACTORS: dict[type, Callable] = {}


def register_fingerprint(cls: type):
    """Register ``fn(obj) -> state`` as the canonical state of ``cls``.

    The extractor must return exactly the constructor-level state that
    determines the object's behavior — nothing memoized, nothing cosmetic.
    It applies to instances of ``cls`` itself only, never to subclasses.
    """

    def decorate(fn):
        _EXTRACTORS[cls] = fn
        return fn

    return decorate


def _classpath(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _canonical_function(fn, stack) -> tuple:
    qualname = fn.__qualname__
    if "<lambda>" in qualname:
        raise FingerprintError(
            f"cannot fingerprint lambda {fn.__module__}.{qualname}: every"
            f" lambda in a module shares that name, so two different ones"
            f" could collide in the cache — use a named function"
        )
    closure = ()
    if fn.__closure__:
        closure = tuple(
            _canonical(cell.cell_contents, stack) for cell in fn.__closure__
        )
    defaults = ()
    if fn.__defaults__:
        defaults = tuple(_canonical(value, stack) for value in fn.__defaults__)
    return ("F", fn.__module__, qualname, defaults, closure)


def _object_state(obj) -> dict:
    """Every instance attribute of ``obj`` (``__dict__`` plus slots)."""
    state = dict(getattr(obj, "__dict__", ()) or ())
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name != "__dict__" and hasattr(obj, name):
                state.setdefault(name, getattr(obj, name))
    return state


def _sort_key(tree) -> str:
    return repr(tree)


def _canonical(obj, stack: list) -> object:
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, float):
        return ("f", repr(obj))

    identity = id(obj)
    if identity in stack:
        raise FingerprintError(
            f"cannot fingerprint {type(obj).__name__}: cyclic object graph"
        )
    stack.append(identity)
    try:
        if isinstance(obj, (tuple, list)):
            return ("T", tuple(_canonical(item, stack) for item in obj))
        if isinstance(obj, Set):
            items = sorted(
                (_canonical(item, stack) for item in obj), key=_sort_key
            )
            return ("S", tuple(items))
        if isinstance(obj, Mapping):
            pairs = sorted(
                (
                    (_canonical(key, stack), _canonical(value, stack))
                    for key, value in obj.items()
                ),
                key=_sort_key,
            )
            return ("M", tuple(pairs))
        if isinstance(obj, enum.Enum):
            return ("E", _classpath(type(obj)), obj.name)
        if isinstance(obj, types.FunctionType):
            return _canonical_function(obj, stack)
        if isinstance(obj, types.MethodType):
            return (
                "B",
                _canonical(obj.__self__, stack),
                obj.__func__.__qualname__,
            )
        if isinstance(obj, functools.partial):
            return (
                "P",
                _canonical(obj.func, stack),
                _canonical(obj.args, stack),
                _canonical(dict(obj.keywords), stack),
            )
        if isinstance(obj, (random.Random, types.ModuleType, types.GeneratorType)):
            raise FingerprintError(
                f"cannot fingerprint {type(obj).__name__}: its state is"
                f" mutable or process-local, so a digest over it would be"
                f" unstable"
            )

        extractor = _EXTRACTORS.get(type(obj))
        if extractor is not None:
            return (
                "O",
                _classpath(type(obj)),
                _canonical(extractor(obj), stack),
            )
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            fields = tuple(
                (field.name, _canonical(getattr(obj, field.name), stack))
                for field in dataclasses.fields(obj)
            )
            return ("D", _classpath(type(obj)), fields)
        state = _object_state(obj)
        if not state:
            raise FingerprintError(
                f"cannot fingerprint {type(obj).__name__}: no registered"
                f" extractor and no instance attributes to derive state from"
                f" (register one with repro.service.register_fingerprint)"
            )
        attrs = tuple(
            (name, _canonical(value, stack))
            for name, value in sorted(state.items())
        )
        return ("O", _classpath(type(obj)), attrs)
    finally:
        stack.pop()


def canonical(obj) -> object:
    """The canonical tree of ``obj`` (deterministic, version-stable).

    Raises :class:`~repro.exceptions.FingerprintError` for objects that
    cannot be canonicalized stably (lambdas, RNG instances, cycles).
    """
    return _canonical(obj, [])


def fingerprint(obj) -> str:
    """SHA-256 hex digest of ``obj``'s canonical tree, salted with
    :data:`ENGINE_VERSION`."""
    tree = ("repro", ENGINE_VERSION, canonical(obj))
    return hashlib.sha256(repr(tree).encode()).hexdigest()


# -- registered extractors for the model classes ------------------------------
#
# Each extractor returns exactly the behavior-determining constructor state.
# ``name`` strings are cosmetic everywhere and deliberately excluded.

register_fingerprint(Topology)(lambda t: (t.n, t.edges))
register_fingerprint(Labeling)(lambda l: (l.topology, l.values))
register_fingerprint(Configuration)(lambda c: (c.labeling, c.outputs))

register_fingerprint(ExplicitLabelSpace)(lambda s: (s.values,))
register_fingerprint(BitStrings)(lambda s: (s.k,))
register_fingerprint(IntegerRange)(lambda s: (s.size,))
register_fingerprint(ProductSpace)(lambda s: (s.components,))

register_fingerprint(StatelessProtocol)(
    lambda p: (p.topology, p.label_space, p.reactions)
)
register_fingerprint(StatefulProtocol)(
    lambda p: (p.topology, p.label_space, p.reactions)
)

register_fingerprint(LambdaReaction)(lambda r: (r._fn,))
register_fingerprint(LambdaStatefulReaction)(lambda r: (r._fn,))
register_fingerprint(UniformReaction)(lambda r: (r._out_edges, r._fn))
register_fingerprint(ConstantReaction)(
    lambda r: (r._out_edges, r._label, r._output)
)
register_fingerprint(TabularReaction)(
    lambda r: (r.in_edges, r.out_edges, r.table)
)

register_fingerprint(SynchronousSchedule)(lambda s: (s.n,))
register_fingerprint(RoundRobinSchedule)(lambda s: (s.n,))
register_fingerprint(ExplicitSchedule)(lambda s: (s.n, s.steps, s.cycle))
register_fingerprint(LassoSchedule)(lambda s: (s.n, s._prefix, s._loop))
# Realized activation sets are a deterministic function of (n, r, p, seed);
# the memo and RNG state are irrelevant and must not enter the digest.
register_fingerprint(RandomRFairSchedule)(lambda s: (s.n, s.r, s.p, s.seed))
register_fingerprint(ShiftedSchedule)(lambda s: (s.base, s.offset))

register_fingerprint(NoFaults)(lambda f: ())
register_fingerprint(OneShotFault)(lambda f: (f.time, f.model))
register_fingerprint(BurstFault)(lambda f: (f.times, f.model))
register_fingerprint(WindowFault)(lambda f: (f.start, f.stop, f.model))
register_fingerprint(PeriodicFault)(
    lambda f: (f.period, f.start, f.stop, f.model)
)
register_fingerprint(ComposedFaultSchedule)(lambda f: (f.parts,))
