"""Admission control for the sweep service: predict, then decide.

The service's cost loop closes here.  The symbolic cost model
(:mod:`repro.analysis.costmodel`) prices a sweep before it runs;
:func:`predict_plan_cost` grounds that price in a concrete
:class:`~repro.service.plan.SweepPlan` — node count and degree from the
plan's protocol, the step budget as the per-case work bound, and the
service's result cache probed fingerprint by fingerprint so already-stored
cases are discounted to a lookup.  An :class:`AdmissionPolicy` then turns
the :class:`~repro.analysis.costmodel.CostEstimate` into an
:class:`AdmissionDecision`:

* within budget → ``"accept"``: the job queues normally;
* over budget, ``over_budget="reject"`` → ``"reject"``: the job lands in
  the terminal REJECTED state (still queryable, still recorded);
* over budget, ``over_budget="queue"`` → ``"queue"``: the job is held
  PENDING and re-evaluated whenever another job completes — the cache only
  grows, so a held plan's predicted cost is monotonically non-increasing
  and the hold resolves as soon as enough of its cases are warm.

Decisions are pure functions of the estimate and the policy — no clocks,
no load sampling — so an admission outcome is reproducible from the
recorded numbers alone.

Budgets can be set in *work units* (the model's elementary-operation
counts; robust across machines) or *seconds* (via the model's coarse
per-layer calibration constants; convenient but machine-dependent — leave
headroom).  This module imports without sympy; only
:func:`predict_plan_cost` reaches into :mod:`repro.analysis.costmodel`,
so a service without an admission policy never needs the ``costmodel``
extra.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.policy import ExecutionPolicy
from repro.service.plan import SweepPlan

#: What an :class:`AdmissionPolicy` may do with an over-budget plan.
OVER_BUDGET_ACTIONS = ("reject", "queue")


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict, with the numbers that produced it.

    ``action`` is ``"accept"``, ``"reject"``, or ``"queue"``; ``reason``
    is the human-readable justification that job errors and records carry.
    The estimate's headline figures are denormalized in so the decision
    serializes into job records without dragging the estimate along.
    """

    action: str
    reason: str
    predicted_work: float
    predicted_seconds: float
    cases: int
    cached_cases: int

    def record(self) -> dict:
        """The JSON-able form stored under a job record's ``admission``."""
        return {
            "action": self.action,
            "reason": self.reason,
            "predicted_work": self.predicted_work,
            "predicted_seconds": self.predicted_seconds,
            "cases": self.cases,
            "cached_cases": self.cached_cases,
        }

    def describe(self) -> str:
        return f"AdmissionDecision({self.action}: {self.reason})"


@dataclass(frozen=True)
class AdmissionPolicy:
    """A deterministic work/time budget for submitted plans.

    ``max_work`` bounds the predicted work units, ``max_seconds`` the
    predicted wall time; either may be ``None`` (unbounded), but not both —
    a policy that cannot refuse anything is a configuration error.
    ``over_budget`` picks what happens to a plan that exceeds any set
    bound: ``"reject"`` refuses it outright, ``"queue"`` holds it until
    cache warming brings its prediction within budget.
    """

    max_work: float | None = None
    max_seconds: float | None = None
    over_budget: str = "reject"

    def __post_init__(self):
        if self.max_work is None and self.max_seconds is None:
            raise ValidationError(
                "AdmissionPolicy needs max_work and/or max_seconds;"
                " omit the admission policy entirely to admit everything"
            )
        for name, value in (
            ("max_work", self.max_work),
            ("max_seconds", self.max_seconds),
        ):
            if value is not None and value <= 0:
                raise ValidationError(f"{name} must be positive; got {value}")
        if self.over_budget not in OVER_BUDGET_ACTIONS:
            raise ValidationError(
                f"unknown over_budget action {self.over_budget!r};"
                f" expected one of {OVER_BUDGET_ACTIONS}"
            )

    def decide(self, estimate) -> AdmissionDecision:
        """Judge one :class:`~repro.analysis.costmodel.CostEstimate`."""
        overruns = []
        if self.max_work is not None and estimate.predicted_work > self.max_work:
            overruns.append(
                f"predicted work {estimate.predicted_work:,.0f}"
                f" > budget {self.max_work:,.0f}"
            )
        if (
            self.max_seconds is not None
            and estimate.predicted_seconds > self.max_seconds
        ):
            overruns.append(
                f"predicted time {estimate.predicted_seconds:.3g}s"
                f" > budget {self.max_seconds:.3g}s"
            )
        if overruns:
            action = self.over_budget
            reason = "; ".join(overruns)
            if estimate.cached_cases:
                reason += (
                    f" (after discounting {estimate.cached_cases}"
                    f"/{estimate.cases} warm cases)"
                )
        else:
            action = "accept"
            reason = (
                f"predicted work {estimate.predicted_work:,.0f}"
                f" (~{estimate.predicted_seconds:.3g}s,"
                f" {estimate.cached_cases}/{estimate.cases} warm)"
                f" within budget"
            )
        return AdmissionDecision(
            action=action,
            reason=reason,
            predicted_work=estimate.predicted_work,
            predicted_seconds=estimate.predicted_seconds,
            cases=estimate.cases,
            cached_cases=estimate.cached_cases,
        )

    def describe(self) -> str:
        bounds = []
        if self.max_work is not None:
            bounds.append(f"max_work={self.max_work:,.0f}")
        if self.max_seconds is not None:
            bounds.append(f"max_seconds={self.max_seconds:g}")
        return (
            f"AdmissionPolicy({', '.join(bounds)},"
            f" over_budget={self.over_budget!r})"
        )


def predict_plan_cost(
    plan: SweepPlan,
    policy: ExecutionPolicy | None = None,
    *,
    cache=None,
):
    """Price a concrete plan under a policy, cache-hit-aware.

    Grounds :func:`repro.analysis.costmodel.estimate_sweep_cost` in the
    plan: node count and maximum in-degree from the plan's protocol, the
    plan's step budget as the per-case work bound, and — when a
    ``cache`` (:class:`~repro.service.cache.ResultCache`) is given — each
    case fingerprint probed with :meth:`~ResultCache.contains` (stat-free)
    so stored cases are discounted to a cache-hit lookup.  ``policy``
    defaults to the plan's own attached policy, then the library default.
    Returns a :class:`~repro.analysis.costmodel.CostEstimate`.
    """
    from repro.analysis.costmodel import estimate_sweep_cost

    cached = 0
    if cache is not None and len(plan):
        cached = sum(
            1 for key in plan.case_fingerprints() if cache.contains(key)
        )
    protocol = plan.protocol
    degree = max(
        (protocol.topology.in_degree(i) for i in range(protocol.n)),
        default=0,
    )
    return estimate_sweep_cost(
        cases=len(plan),
        nodes=protocol.n,
        degree=degree,
        max_steps=plan.max_steps,
        policy=policy if policy is not None else plan.policy,
        cached_cases=cached,
    )
