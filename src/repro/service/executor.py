"""Plan execution: run a :class:`~repro.service.plan.SweepPlan`.

The executor half of the planner/executor split.  It consumes plans and
produces exactly the reports the one-shot runners produce — the legacy
entry points (:func:`repro.analysis.sweeps.run_sweep`,
:func:`repro.analysis.resilience.run_resilience_sweep`) are thin wrappers
over :func:`plan_sweep` + :func:`execute_plan`, so "plan then execute" and
"run" are the same computation by construction.

On top of the one-shot behavior the executor adds the two service
capabilities:

* **Content-addressed caching.**  With a ``cache``
  (:mod:`repro.service.cache`), every case is first looked up by its
  fingerprint; only misses are simulated (through the ordinary serial or
  batch runners, with the usual ``processes`` fan-out), and their results
  are stored for next time.  Hits are re-attached to their position/tag (and
  for resilience sweeps re-judged under the sweep's recovery criterion), so
  a fully warm execution returns a report equal to a cold one, bit for bit.
  Fingerprints are only computed when a cache is present — cacheless
  execution pays nothing for the machinery.
* **Incremental aggregation.**  :func:`iter_shards` splits the plan into
  contiguous shards and yields a :class:`ShardProgress` as each completes:
  the shard's own results, the running merged report
  (:meth:`SweepReport.merge`), and cumulative cache counters.  Consumers
  see aggregates grow instead of blocking on the full sweep; the final
  aggregate equals the one-shot report exactly.
"""

from __future__ import annotations

import functools
from collections.abc import Iterator
from dataclasses import dataclass, replace

from repro.analysis import resilience as _resilience
from repro.analysis import sweeps as _sweeps
from repro.analysis.resilience import ResilienceReport, resolve_criterion
from repro.analysis.sweeps import SweepReport, fan_out, resolve_executor
from repro.exceptions import ValidationError
from repro.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.service.cache import ResultCache
from repro.service.plan import CaseSpec, SweepPlan


def resolve_plan_runner(
    kind: str, executor: str, kernel: str | None, chunk_rows: int | None = None
):
    """The case-runner callable for a plan kind / executor / kernel triple.

    Validation (and the error messages) match the legacy one-shot entry
    points, which call this before touching cases or factories.
    """
    if kind == "sweep":
        table = _sweeps.EXECUTORS
    elif kind == "resilience":
        table = _resilience.EXECUTORS
    else:
        raise ValidationError(
            f"unknown plan kind {kind!r}; expected 'sweep' or 'resilience'"
        )
    runner = resolve_executor(executor, table)
    batch_options = {}
    if kernel is not None:
        if executor != "batch":
            raise ValidationError(
                "kernel= selects a batch compute kernel;"
                " it requires executor='batch'"
            )
        batch_options["kernel"] = kernel
    if chunk_rows is not None:
        if executor != "batch":
            raise ValidationError(
                "chunk_rows= sizes batch sub-batches;"
                " it requires executor='batch'"
            )
        batch_options["chunk_rows"] = chunk_rows
    if batch_options:
        runner = functools.partial(runner, **batch_options)
    return runner


@dataclass(frozen=True)
class ShardProgress:
    """One completed shard of a plan execution.

    ``results`` holds just this shard's condensed case results (in case
    order); ``aggregate`` is the merge of every shard completed so far, so
    the last progress item's aggregate is the full report.  The cache
    counters are cumulative over this execution (zero when no cache was
    given).
    """

    shard: int
    total_shards: int
    results: tuple
    aggregate: SweepReport | ResilienceReport
    cache_hits: int
    cache_misses: int

    @property
    def done(self) -> bool:
        return self.shard + 1 == self.total_shards

    def describe(self) -> str:
        return (
            f"shard {self.shard + 1}/{self.total_shards}:"
            f" +{len(self.results)} cases"
            f" -> {len(self.aggregate)} aggregated"
            f" (cache {self.cache_hits} hits / {self.cache_misses} misses)"
        )


def _normalize_for_cache(result):
    """Strip position, tag, and criterion verdict before storing.

    The same physical case may appear at another index, with another tag,
    or under another recovery criterion in a later sweep; the stored entry
    must serve all of them.
    """
    updates = {"index": -1, "tag": None}
    if isinstance(result, _resilience.FaultCaseResult):
        updates["recovered"] = False
    return replace(result, **updates)


def _run_specs(plan, specs, runner, processes, strict):
    """Simulate a list of specs through the plan's runner.

    Results come back in spec order with each result's ``index`` taken from
    its spec (the runner numbers a slice contiguously from a start index,
    which only matches when the specs are contiguous — cache-miss lists are
    not, so indices are always re-attached here).
    """
    if not specs:
        return []
    cases = [spec.case for spec in specs]
    per_case = [spec.work_item() for spec in specs]
    results = None
    if processes is not None and processes > 1 and len(specs) > 1:
        results = fan_out(
            runner,
            plan.protocol,
            cases,
            per_case,
            plan.max_steps,
            processes,
            strict=strict,
        )
    if results is None:
        results = runner(plan.protocol, cases, per_case, plan.max_steps, 0)
    return [
        result if result.index == spec.index else replace(result, index=spec.index)
        for spec, result in zip(specs, results, strict=True)
    ]


def _execute_specs(plan, specs, runner, cache, processes, strict):
    """One shard: cache lookups, simulate the misses, fill the store.

    Returns ``(results, hits, misses)`` with results in spec order.
    """
    if cache is None:
        return _run_specs(plan, specs, runner, processes, strict), 0, 0

    by_index: dict[int, object] = {}
    missing: list[tuple[CaseSpec, str]] = []
    hits = 0
    for spec in specs:
        key = plan.case_fingerprint(spec)
        value = cache.get(key)
        if value is None:
            missing.append((spec, key))
        else:
            hits += 1
            by_index[spec.index] = replace(
                value, index=spec.index, tag=spec.case.tag
            )
    if missing:
        computed = _run_specs(
            plan, [spec for spec, _ in missing], runner, processes, strict
        )
        for (spec, key), result in zip(missing, computed, strict=True):
            cache.put(key, _normalize_for_cache(result))
            by_index[spec.index] = result
    return [by_index[spec.index] for spec in specs], hits, len(missing)


def _shard_bounds(total: int, shard_size: int | None) -> list[tuple[int, int]]:
    if shard_size is None or shard_size >= total:
        return [(0, total)] if total else []
    if shard_size < 1:
        raise ValidationError("shard_size must be >= 1")
    return [
        (lo, min(lo + shard_size, total)) for lo in range(0, total, shard_size)
    ]


def iter_shards(
    plan: SweepPlan,
    *,
    cache: ResultCache | None = None,
    shard_size: int | None = None,
    policy: ExecutionPolicy | None = None,
    strict: bool = False,
    processes: int | None = UNSET,
    executor: str = UNSET,
    kernel: str | None = UNSET,
    recovered=None,
) -> Iterator[ShardProgress]:
    """Execute a plan shard by shard, yielding progress as each completes.

    ``policy`` (:class:`repro.ExecutionPolicy`) selects the case backend,
    kernel, fan-out width, and batch chunking; when omitted, the plan's own
    attached policy (:attr:`SweepPlan.policy`) applies, then the defaults.
    The scattered ``processes=`` / ``executor=`` / ``kernel=`` keywords are
    deprecated shims for the policy fields.  ``recovered`` names (or is)
    the recovery criterion for resilience plans (default ``"label"``, as in
    the one-shot runner); it is rejected for plain sweep plans.  Empty
    plans yield nothing — callers wanting a report either way use
    :func:`execute_plan`.
    """
    policy = resolve_policy(
        policy,
        {"processes": processes, "executor": executor, "kernel": kernel},
        api="iter_shards",
        fallback=plan.policy,
    )
    processes = policy.processes
    runner = resolve_plan_runner(
        plan.kind, policy.executor, policy.kernel, policy.chunk_rows
    )
    if plan.kind == "resilience":
        criterion = resolve_criterion("label" if recovered is None else recovered)
    else:
        if recovered is not None:
            raise ValidationError(
                "recovered= is a resilience criterion; this is a plain"
                " sweep plan"
            )
        criterion = None

    bounds = _shard_bounds(len(plan.specs), shard_size)
    aggregate = plan.empty_report()
    hits = misses = 0
    for shard, (lo, hi) in enumerate(bounds):
        results, shard_hits, shard_misses = _execute_specs(
            plan, plan.specs[lo:hi], runner, cache, processes, strict
        )
        hits += shard_hits
        misses += shard_misses
        if criterion is not None:
            results = [
                replace(result, recovered=criterion(result))
                for result in results
            ]
        shard_report = type(aggregate)(results=tuple(results))
        aggregate = aggregate.merge(shard_report)
        yield ShardProgress(
            shard=shard,
            total_shards=len(bounds),
            results=tuple(results),
            aggregate=aggregate,
            cache_hits=hits,
            cache_misses=misses,
        )


def execute_plan(
    plan: SweepPlan,
    *,
    cache: ResultCache | None = None,
    shard_size: int | None = None,
    policy: ExecutionPolicy | None = None,
    strict: bool = False,
    processes: int | None = UNSET,
    executor: str = UNSET,
    kernel: str | None = UNSET,
    recovered=None,
) -> SweepReport | ResilienceReport:
    """Execute a plan to completion and return the aggregated report.

    With the defaults (no cache, one shard, no policy beyond the plan's
    own) this is exactly the legacy one-shot runner on the plan's cases —
    same runners, same fan-out, same warnings, same report.  The scattered
    ``processes=`` / ``executor=`` / ``kernel=`` keywords are deprecated
    shims for :class:`repro.ExecutionPolicy` fields.
    """
    policy = resolve_policy(
        policy,
        {"processes": processes, "executor": executor, "kernel": kernel},
        api="execute_plan",
        fallback=plan.policy,
    )
    report = plan.empty_report()
    for progress in iter_shards(
        plan,
        cache=cache,
        shard_size=shard_size,
        policy=policy,
        strict=strict,
        recovered=recovered,
    ):
        report = progress.aggregate
    return report
