"""CLI front-end for the sweep service: ``python -m repro.service``.

Three subcommands:

``demo``
    Build a small Example-1 clique sweep, submit it through a local
    :class:`~repro.service.jobs.SweepService`, stream the shard progress,
    then resubmit the identical plan to show the content-addressed cache
    serving it (and assert the two reports are equal, bit for bit).

``run PLAN.pkl``
    Execute a pickled :class:`~repro.service.plan.SweepPlan` (built with
    :func:`repro.service.plan_sweep` / :func:`plan_resilience_sweep` and
    ``pickle.dump``-ed), streaming progress to stdout.

``inspect PLAN.pkl``
    Print a plan's shape and fingerprints without running anything.

Both ``demo`` and ``run`` take ``--cache PATH`` to back the service with an
on-disk :class:`~repro.service.cache.SqliteCache` — rerunning the same
command then starts from a warm cache.
"""

from __future__ import annotations

import argparse
import pickle
import random
import sys

from repro.core import Labeling
from repro.core.schedule import SynchronousSchedule
from repro.policy import ExecutionPolicy
from repro.service.cache import InMemoryCache, SqliteCache
from repro.service.client import ServiceClient
from repro.service.jobs import SweepService
from repro.service.plan import SweepPlan, plan_sweep


def _open_cache(path):
    return InMemoryCache() if path is None else SqliteCache(path)


def _load_plan(path) -> SweepPlan:
    with open(path, "rb") as stream:
        plan = pickle.load(stream)
    if not isinstance(plan, SweepPlan):
        raise SystemExit(f"{path} does not contain a SweepPlan: {plan!r}")
    return plan


def _stream_job(handle, out) -> None:
    for progress in handle.stream():
        print(f"  {progress.describe()}", file=out, flush=True)


def _demo_plan(cases: int, max_steps: int) -> SweepPlan:
    from repro.analysis.sweeps import SweepCase
    from repro.stabilization.example_clique import example1_protocol

    protocol = example1_protocol(4)
    topology = protocol.topology
    rng = random.Random(0)
    population = [
        SweepCase(
            (0,) * topology.n,
            Labeling(
                topology, tuple(rng.randrange(2) for _ in range(topology.m))
            ),
            tag=k,
        )
        for k in range(cases)
    ]
    return plan_sweep(
        protocol,
        population,
        lambda i, case: SynchronousSchedule(topology.n),
        max_steps=max_steps,
    )


def cmd_demo(args, out=sys.stdout) -> int:
    plan = _demo_plan(args.cases, args.max_steps)
    print(f"plan: {plan.describe()}", file=out)
    print(f"plan fingerprint: {plan.plan_fingerprint}", file=out)
    with _open_cache(args.cache) as cache:
        with ServiceClient(cache=cache, records_dir=args.records_dir) as client:
            options = {
                "policy": ExecutionPolicy(executor=args.executor),
                "shard_size": args.shard_size,
            }
            print("cold submission:", file=out)
            first = client.submit_plan(plan, **options)
            _stream_job(first, out)
            print("warm resubmission (same plan):", file=out)
            second = client.submit_plan(plan, **options)
            _stream_job(second, out)
            cold, warm = first.result(), second.result()
            assert warm == cold, "cache-served report differs from computed"
            print(f"report: {cold.describe()}", file=out)
            print(f"cache: {cache.stats.describe()}", file=out)
    return 0


def cmd_run(args, out=sys.stdout) -> int:
    plan = _load_plan(args.plan)
    print(f"plan: {plan.describe()}", file=out)
    with _open_cache(args.cache) as cache:
        service = SweepService(cache=cache, records_dir=args.records_dir)
        with service:
            handle = ServiceClient(service).submit_plan(
                plan,
                policy=ExecutionPolicy(executor=args.executor),
                shard_size=args.shard_size,
                recovered=args.recovered,
            )
            _stream_job(handle, out)
            report = handle.result()
            print(f"report: {report.describe()}", file=out)
            print(f"cache: {cache.stats.describe()}", file=out)
    return 0


def cmd_inspect(args, out=sys.stdout) -> int:
    plan = _load_plan(args.plan)
    print(f"plan: {plan.describe()}", file=out)
    print(f"plan fingerprint: {plan.plan_fingerprint}", file=out)
    for spec, digest in zip(plan.specs, plan.case_fingerprints(), strict=True):
        tag = "" if spec.case.tag is None else f"  tag={spec.case.tag!r}"
        print(f"  case {spec.index}: {digest}{tag}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_execution_options(sub):
        sub.add_argument(
            "--cache",
            default=None,
            metavar="PATH",
            help="back the service with an on-disk sqlite cache",
        )
        sub.add_argument(
            "--executor", default="serial", choices=["serial", "batch"]
        )
        sub.add_argument("--shard-size", type=int, default=None)
        sub.add_argument(
            "--records-dir",
            default=None,
            metavar="DIR",
            help="write a BENCH-style JOB_*.json record per finished job",
        )

    demo = commands.add_parser("demo", help="run the built-in demo sweep")
    demo.add_argument("--cases", type=int, default=32)
    demo.add_argument("--max-steps", type=int, default=200)
    add_execution_options(demo)
    demo.set_defaults(fn=cmd_demo, shard_size=8)

    run = commands.add_parser("run", help="execute a pickled SweepPlan")
    run.add_argument("plan", help="path to a pickled SweepPlan")
    run.add_argument(
        "--recovered",
        default=None,
        help="recovery criterion name (resilience plans only)",
    )
    add_execution_options(run)
    run.set_defaults(fn=cmd_run)

    inspect = commands.add_parser(
        "inspect", help="print a pickled plan's fingerprints"
    )
    inspect.add_argument("plan", help="path to a pickled SweepPlan")
    inspect.set_defaults(fn=cmd_inspect)
    return parser


def main(argv=None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args, out=out)


if __name__ == "__main__":
    raise SystemExit(main())
