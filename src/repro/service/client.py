"""Programmatic front-end for the sweep service.

:class:`ServiceClient` is the convenience layer over
:class:`~repro.service.jobs.SweepService`: it plans and submits in one call
and hands back a :class:`JobHandle` — a small object bound to one job id
with ``status`` / ``stream`` / ``result`` / ``cancel`` methods, so call
sites hold a handle instead of threading job ids through their code.

A client can own its service (default: a fresh single-worker
:class:`SweepService` with an in-memory cache, shut down when the client
closes) or wrap one that is shared across clients (``ServiceClient(service)``
— the caller keeps ownership).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.analysis.resilience import FaultFactory, ResilienceReport
from repro.analysis.sweeps import ScheduleFactory, SweepCase, SweepReport
from repro.core.engine import DEFAULT_MAX_STEPS
from repro.core.protocol import Protocol
from repro.service.executor import ShardProgress
from repro.service.jobs import JobStatus, SweepService
from repro.service.plan import SweepPlan, plan_resilience_sweep, plan_sweep


class JobHandle:
    """One submitted job, as seen by the caller."""

    def __init__(self, service: SweepService, job_id: str):
        self.service = service
        self.job_id = job_id

    def status(self) -> JobStatus:
        return self.service.status(self.job_id)

    def stream(self) -> Iterator[ShardProgress]:
        """Live shard progress; see :meth:`SweepService.stream`."""
        return self.service.stream(self.job_id)

    def result(self, timeout: float | None = None) -> SweepReport:
        """Block until done and return the aggregated report."""
        return self.service.result(self.job_id, timeout=timeout)

    def cancel(self) -> bool:
        return self.service.cancel(self.job_id)

    def __repr__(self) -> str:
        return f"JobHandle({self.job_id!r})"


class ServiceClient:
    """Plan-and-submit convenience wrapper around a :class:`SweepService`."""

    def __init__(self, service: SweepService | None = None, **service_options):
        if service is not None and service_options:
            raise TypeError(
                "pass either an existing service or options for a new one"
            )
        self._owned = service is None
        self.service = SweepService(**service_options) if self._owned else service

    def submit_plan(self, plan: SweepPlan, **options) -> JobHandle:
        """Submit an already-built plan; options as in
        :meth:`SweepService.submit`."""
        return JobHandle(self.service, self.service.submit(plan, **options))

    def submit_sweep(
        self,
        protocol: Protocol,
        cases: Iterable[SweepCase | tuple],
        schedule_factory: ScheduleFactory,
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        **options,
    ) -> JobHandle:
        """Plan a sweep (factories run here, in the caller) and submit it."""
        plan = plan_sweep(protocol, cases, schedule_factory, max_steps=max_steps)
        return self.submit_plan(plan, **options)

    def submit_resilience_sweep(
        self,
        protocol: Protocol,
        cases: Iterable[SweepCase | tuple],
        schedule_factory: ScheduleFactory,
        fault_factory: FaultFactory,
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        **options,
    ) -> JobHandle:
        """Plan a resilience sweep and submit it."""
        plan = plan_resilience_sweep(
            protocol,
            cases,
            schedule_factory,
            fault_factory,
            max_steps=max_steps,
        )
        return self.submit_plan(plan, **options)

    def run_sweep(self, *args, **kwargs) -> SweepReport:
        """Submit a sweep and block for its report (cache-aware one-shot)."""
        return self.submit_sweep(*args, **kwargs).result()

    def run_resilience_sweep(self, *args, **kwargs) -> ResilienceReport:
        """Submit a resilience sweep and block for its report."""
        return self.submit_resilience_sweep(*args, **kwargs).result()

    def close(self) -> None:
        """Shut down the service if this client owns it."""
        if self._owned:
            self.service.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
