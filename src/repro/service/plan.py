"""Sweep planning: turn (cases, factories) into an executable plan.

The planner half of the service layer's planner/executor split.  A
:class:`SweepPlan` is a fully materialized description of a sweep or
resilience sweep: one self-describing, picklable :class:`CaseSpec` per case
— inputs, initial labeling, the *realized* schedule, and (for resilience
plans) the fault plan — plus the protocol and the step budget.  Everything a
worker needs ships inside the plan; nothing is re-derived at execution time.

Planning preserves the one-shot runners' reproducibility contract: the
schedule and fault factories are invoked here, in the calling process, in
case order — so stateful seeded factories see exactly the call sequence
they would see in :func:`repro.analysis.sweeps.run_sweep`, and a plan built
twice from the same seeds is the same plan.

Fingerprints are computed lazily (planning costs nothing beyond the factory
calls): :meth:`SweepPlan.case_fingerprint` combines the protocol digest —
computed once per plan — with the case's own state, the step budget, and
the engine version salt (:mod:`repro.service.fingerprint`).  Two cases get
the same fingerprint exactly when the engine would produce the same
condensed result for both, which is what makes results content-addressable.
Cosmetic state (case ``tag``s, case order, protocol names) is excluded.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from dataclasses import dataclass, field
from functools import cached_property

from repro.analysis.resilience import FaultFactory, ResilienceReport
from repro.analysis.sweeps import (
    ScheduleFactory,
    SweepCase,
    SweepReport,
    _coerce_case,
)
from repro.core.engine import DEFAULT_MAX_STEPS
from repro.core.protocol import Protocol
from repro.core.schedule import Schedule
from repro.exceptions import (
    FingerprintError,
    StaticAnalysisError,
    ValidationError,
)
from repro.faults.schedules import FaultSchedule
from repro.policy import ExecutionPolicy
from repro.service.fingerprint import ENGINE_VERSION, canonical, fingerprint

#: Plan kinds and the report type each aggregates into.
PLAN_KINDS = {"sweep": SweepReport, "resilience": ResilienceReport}


def _located_fingerprint_error(where, obj, error):
    """Upgrade a bare :class:`FingerprintError` into a located one.

    Canonicalization raises on the *first* offender with no pointer to it;
    re-walking the object with the preflight offender collector turns the
    same failure into a :class:`StaticAnalysisError` whose diagnostics name
    the attribute path and (for lambdas) the source position.  Falls back
    to the original error when the walk finds nothing (e.g. exotic state
    only canonicalization's own recursion trips over).
    """
    from repro.statics.preflight import fingerprint_offenders

    diagnostics = fingerprint_offenders(obj, where)
    if not diagnostics:
        return error
    return StaticAnalysisError(
        f"cannot fingerprint {where}: {error}", diagnostics=diagnostics
    )


@dataclass(frozen=True)
class CaseSpec:
    """One unit of planned work: a case plus its realized schedule.

    Self-describing and picklable (given module-level reactions), so specs
    ship to worker processes and serialize into job submissions as-is.
    ``faults`` is ``None`` exactly on plain-sweep plans; resilience plans
    carry a :class:`~repro.faults.schedules.FaultSchedule` (possibly
    :class:`~repro.faults.NoFaults`) per spec.
    """

    index: int
    case: SweepCase
    schedule: Schedule
    faults: FaultSchedule | None = None

    def work_item(self):
        """The per-case payload the sweep runners expect."""
        return self.schedule if self.faults is None else (self.schedule, self.faults)


@dataclass(frozen=True)
class SweepPlan:
    """A materialized sweep: protocol, specs, step budget, and kind.

    ``policy`` (optional) is the plan's *suggested*
    :class:`repro.ExecutionPolicy` — the executor applies it when the call
    passes none of its own.  It is cosmetic: excluded from case and plan
    fingerprints (and from plan equality), because it changes how fast the
    results arrive, never what they are.
    """

    protocol: Protocol
    specs: tuple[CaseSpec, ...]
    kind: str
    max_steps: int = DEFAULT_MAX_STEPS
    policy: ExecutionPolicy | None = field(default=None, compare=False)
    _fingerprints: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self):
        if self.kind not in PLAN_KINDS:
            raise ValidationError(
                f"unknown plan kind {self.kind!r};"
                f" expected one of {sorted(PLAN_KINDS)}"
            )

    def __getstate__(self):
        # The memo dict is keyed by object ids, which are process-local;
        # a pickled plan must rebuild it from scratch on the other side.
        state = self.__dict__.copy()
        state["_fingerprints"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def report_type(self) -> type[SweepReport]:
        return PLAN_KINDS[self.kind]

    def empty_report(self) -> SweepReport:
        return self.report_type(results=())

    @cached_property
    def protocol_fingerprint(self) -> str:
        """Digest of the protocol's compile-level state (topology, label
        space, reactions) — computed once and shared by every case key.

        Raises :class:`~repro.exceptions.StaticAnalysisError` with located
        diagnostics when the protocol cannot be fingerprinted (lambda
        reactions, closed-over RNG state, ...), instead of the bare
        :class:`~repro.exceptions.FingerprintError` canonicalization
        produces deep inside its walk.
        """
        try:
            return fingerprint(self.protocol)
        except FingerprintError as error:
            raise _located_fingerprint_error(
                "plan.protocol", self.protocol, error
            ) from error

    def case_fingerprint(self, spec: CaseSpec) -> str:
        """The content address of one case's condensed result.

        Covers everything the result depends on — protocol digest, inputs,
        initial labeling values, initial outputs, realized schedule, fault
        plan, step budget, plan kind, engine salt — and nothing it does not
        (``tag`` and ``index`` are cosmetic).  Memoized per plan: shared
        schedule objects canonicalize once, not once per case.
        """
        cache_key = id(spec)
        cached = self._fingerprints.get(cache_key)
        if cached is not None:
            return cached
        case = spec.case
        try:
            tree = (
                "case",
                ENGINE_VERSION,
                self.kind,
                self.protocol_fingerprint,
                canonical(case.inputs),
                canonical(case.labeling.values),
                canonical(case.initial_outputs),
                self._component_fingerprint(spec.schedule),
                self._component_fingerprint(spec.faults),
                self.max_steps,
            )
        except FingerprintError as error:
            raise _located_fingerprint_error(
                f"plan.specs[{spec.index}]", spec, error
            ) from error
        digest = hashlib.sha256(repr(tree).encode()).hexdigest()
        self._fingerprints[cache_key] = digest
        return digest

    def _component_fingerprint(self, component) -> object:
        """Canonicalize a (possibly shared) schedule or fault plan once."""
        if component is None:
            return None
        cache_key = id(component)
        cached = self._fingerprints.get(cache_key)
        if cached is None:
            cached = self._fingerprints[cache_key] = canonical(component)
        return cached

    def case_fingerprints(self) -> list[str]:
        """All case fingerprints, in case order."""
        return [self.case_fingerprint(spec) for spec in self.specs]

    @cached_property
    def plan_fingerprint(self) -> str:
        """Digest of the whole plan (used to key per-job records)."""
        tree = (
            "plan",
            ENGINE_VERSION,
            self.kind,
            self.max_steps,
            tuple(self.case_fingerprints()),
        )
        return hashlib.sha256(repr(tree).encode()).hexdigest()

    def describe(self) -> str:
        return (
            f"SweepPlan(kind={self.kind}, cases={len(self.specs)},"
            f" max_steps={self.max_steps})"
        )


def plan_sweep(
    protocol: Protocol,
    cases: Iterable[SweepCase | tuple],
    schedule_factory: ScheduleFactory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    policy: ExecutionPolicy | None = None,
    preflight: bool = False,
) -> SweepPlan:
    """Plan a sweep: coerce cases and materialize one schedule per case.

    The factory is invoked here, in the calling process, in case order —
    exactly as :func:`repro.analysis.sweeps.run_sweep` always did — so
    seeded stateful factories produce identical plans no matter how the
    plan is later executed or sharded.  ``policy`` attaches a suggested
    :class:`repro.ExecutionPolicy` to the plan (cosmetic: fingerprints and
    reports are unchanged by it).  ``preflight=True`` runs
    :func:`repro.statics.verify_plan` on the finished plan and raises
    :class:`~repro.exceptions.StaticAnalysisError` — with located
    diagnostics — while the offending reaction is still one stack frame
    away, instead of at first fingerprint use.
    """
    case_list = [_coerce_case(case) for case in cases]
    specs = tuple(
        CaseSpec(index=i, case=case, schedule=schedule_factory(i, case))
        for i, case in enumerate(case_list)
    )
    plan = SweepPlan(
        protocol=protocol,
        specs=specs,
        kind="sweep",
        max_steps=max_steps,
        policy=policy,
    )
    if preflight:
        _preflight_plan(plan)
    return plan


def plan_resilience_sweep(
    protocol: Protocol,
    cases: Iterable[SweepCase | tuple],
    schedule_factory: ScheduleFactory,
    fault_factory: FaultFactory,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    policy: ExecutionPolicy | None = None,
    preflight: bool = False,
) -> SweepPlan:
    """Plan a resilience sweep: schedules *and* fault plans per case.

    Factory invocation order matches
    :func:`repro.analysis.resilience.run_resilience_sweep`: for each case in
    order, the schedule factory then the fault factory.  ``policy`` and
    ``preflight`` behave as in :func:`plan_sweep`.
    """
    case_list = [_coerce_case(case) for case in cases]
    specs = tuple(
        CaseSpec(
            index=i,
            case=case,
            schedule=schedule_factory(i, case),
            faults=fault_factory(i, case),
        )
        for i, case in enumerate(case_list)
    )
    plan = SweepPlan(
        protocol=protocol,
        specs=specs,
        kind="resilience",
        max_steps=max_steps,
        policy=policy,
    )
    if preflight:
        _preflight_plan(plan)
    return plan


def _preflight_plan(plan: SweepPlan) -> None:
    """Run the static preflight and raise on blocking diagnostics."""
    from repro.statics.preflight import verify_plan

    verify_plan(plan).raise_for_errors()
