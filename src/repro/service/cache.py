"""Content-addressed result stores for the sweep service.

A :class:`ResultCache` maps case fingerprints
(:meth:`repro.service.plan.SweepPlan.case_fingerprint`) to condensed case
results.  Because a fingerprint covers everything the result depends on —
including the engine version salt — a hit can be served without looking at
the case again, and re-submitting an identical sweep costs one lookup per
case instead of one simulation.

Values are stored in *normalized* form (``index=-1``, ``tag=None``; for
resilience results additionally ``recovered=False``): the same physical
case may appear at different positions, with different tags, or under
different recovery criteria in different sweeps, and all of those variants
share one entry.  The executor re-attaches position, tag, and criterion
verdict on the way out.

Two stores ship here:

* :class:`InMemoryCache` — a dict behind a lock; the default for a
  long-running service process.
* :class:`SqliteCache` — one small sqlite database file, results pickled
  into a blob column; survives restarts and is shared between processes on
  one machine.  Pickle keeps label values exact (reports served from a warm
  cache are equal to freshly computed ones, bit for bit), which a JSON
  store could not guarantee for arbitrary label types.

Both stores count hits and misses (:attr:`ResultCache.stats`); the service
layer surfaces the counters in job records and shard progress.
"""

from __future__ import annotations

import pickle
import sqlite3
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters, plus the derived hit rate."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when untouched)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def describe(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses},"
            f" hit_rate={self.hit_rate:.2%})"
        )


class ResultCache(ABC):
    """A content-addressed store of condensed case results."""

    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    @abstractmethod
    def _load(self, key: str):
        """The stored value for ``key``, or ``None``."""

    @abstractmethod
    def _store(self, key: str, value) -> None:
        """Persist ``value`` under ``key`` (overwriting is allowed)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    def get(self, key: str):
        """The cached result for ``key`` (``None`` on miss), counting."""
        with self._lock:
            value = self._load(key)
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
            return value

    def contains(self, key: str) -> bool:
        """Whether ``key`` is stored, *without* counting a hit or miss.

        Admission control probes the store to predict a plan's warm-case
        discount before deciding whether to run it; a probe is a prophecy,
        not a lookup, and must not skew the hit-rate counters.
        """
        with self._lock:
            return self._load(key) is not None

    def put(self, key: str, value) -> None:
        with self._lock:
            self._store(key, value)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses)

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class InMemoryCache(ResultCache):
    """A plain in-process dict store."""

    def __init__(self):
        super().__init__()
        self._entries: dict[str, object] = {}

    def _load(self, key: str):
        return self._entries.get(key)

    def _store(self, key: str, value) -> None:
        self._entries[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"InMemoryCache(entries={len(self._entries)})"


class SqliteCache(ResultCache):
    """A one-file sqlite store with pickled result blobs.

    ``path`` may be a filesystem path or ``":memory:"``.  The connection is
    shared across threads behind the cache's lock (sqlite's own
    same-thread check is disabled); writes commit immediately so a crashed
    job loses at most the entry being written.
    """

    def __init__(self, path):
        super().__init__()
        self.path = str(path)
        self._connection = sqlite3.connect(
            self.path, check_same_thread=False
        )
        with self._connection:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS results"
                " (key TEXT PRIMARY KEY, value BLOB NOT NULL)"
            )

    def _load(self, key: str):
        row = self._connection.execute(
            "SELECT value FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return pickle.loads(row[0])

    def _store(self, key: str, value) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO results (key, value) VALUES (?, ?)",
                (key, blob),
            )

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            return count

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __repr__(self) -> str:
        return f"SqliteCache(path={self.path!r})"
