"""The fooling-set method for label-complexity lower bounds (Theorem 6.2).

A *fooling set* for ``f : {0,1}^n -> {0,1}`` (Definition 6.1) is a set
``S`` of pairs ``(x, y) in {0,1}^m x {0,1}^{n-m}`` such that (1) all pairs
share the same value ``f(x,y) = b`` and (2) crossing any two distinct pairs
breaks the value: ``f(x,y') != b`` or ``f(x',y) != b``.

Theorem 6.2: let ``C``/``D`` be the edges leaving/entering the node set
``{0..m-1}``.  If all pairs in S agree on the inputs of the C-sources and
D-sources (the cut condition), then every **label-stabilizing** protocol
computing f needs

    L_n >= log2(|S|) / (|C| + |D|).

(The proof splices the stabilized labelings of two pairs along the cut; if
they agreed on C u D the splice would be a global fixed point with the wrong
output.)

Everything here is machine-checked: fooling property, cut condition, and the
resulting bound.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.reaction import Edge
from repro.exceptions import ValidationError
from repro.graphs.topology import Topology

BooleanFunction = Callable[[Sequence[int]], int]


@dataclass(frozen=True)
class FoolingSet:
    """A fooling set for a function split as {0,1}^m x {0,1}^{n-m}."""

    n: int
    m: int
    pairs: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]
    value: int

    def __post_init__(self):
        if not 0 < self.m < self.n:
            raise ValidationError("split position must be inside 1..n-1")
        for (x, y) in self.pairs:
            if len(x) != self.m or len(y) != self.n - self.m:
                raise ValidationError("pair has wrong part lengths")
        if len(set(self.pairs)) != len(self.pairs):
            raise ValidationError("fooling set contains duplicate pairs")

    @property
    def size(self) -> int:
        return len(self.pairs)


def verify_fooling_set(f: BooleanFunction, fooling: FoolingSet) -> bool:
    """Check Definition 6.1 exhaustively."""
    b = fooling.value
    for (x, y) in fooling.pairs:
        if f(tuple(x) + tuple(y)) != b:
            return False
    pairs = fooling.pairs
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            (x, y), (x2, y2) = pairs[i], pairs[j]
            if f(tuple(x) + tuple(y2)) == b and f(tuple(x2) + tuple(y)) == b:
                return False
    return True


def cut_edges(topology: Topology, m: int) -> tuple[list[Edge], list[Edge]]:
    """The C (leaving {0..m-1}) and D (entering {0..m-1}) edge sets."""
    if not 0 < m < topology.n:
        raise ValidationError("cut position must be inside 1..n-1")
    out_cut = [(i, j) for (i, j) in topology.edges if i < m <= j]
    in_cut = [(i, j) for (i, j) in topology.edges if j < m <= i]
    return out_cut, in_cut


def verify_cut_condition(
    fooling: FoolingSet, out_cut: Sequence[Edge], in_cut: Sequence[Edge]
) -> bool:
    """Theorem 6.2's agreement requirement on cut-adjacent inputs.

    Every C-edge source i (< m) must have ``x_i`` constant over the set;
    every D-edge source i (>= m) must have ``y_{i-m}`` constant.
    """
    fixed_x = {i for (i, _) in out_cut}
    fixed_y = {i - fooling.m for (i, _) in in_cut}
    reference_x, reference_y = fooling.pairs[0]
    for (x, y) in fooling.pairs[1:]:
        if any(x[i] != reference_x[i] for i in fixed_x):
            return False
        if any(y[i] != reference_y[i] for i in fixed_y):
            return False
    return True


def label_complexity_bound(
    fooling: FoolingSet, out_cut: Sequence[Edge], in_cut: Sequence[Edge]
) -> float:
    """Theorem 6.2: L_n >= log2(|S|) / (|C| + |D|)."""
    crossing = len(out_cut) + len(in_cut)
    if crossing == 0:
        raise ValidationError("the cut crosses no edges")
    return math.log2(fooling.size) / crossing


def ring_bound(topology: Topology, m: int, fooling: FoolingSet) -> float:
    """Convenience: verify the cut condition on ``topology`` and compute the
    Theorem 6.2 bound."""
    out_cut, in_cut = cut_edges(topology, m)
    if not verify_cut_condition(fooling, out_cut, in_cut):
        raise ValidationError("fooling set violates the cut condition")
    return label_complexity_bound(fooling, out_cut, in_cut)
