"""Label-complexity lower bounds (Section 6)."""

from repro.lowerbounds.corollaries import (
    equality_bound,
    equality_fooling_set,
    equality_function,
    majority_bound,
    majority_fooling_set,
    majority_function,
    paper_equality_bound,
    paper_majority_bound,
)
from repro.lowerbounds.fooling import (
    FoolingSet,
    cut_edges,
    label_complexity_bound,
    ring_bound,
    verify_cut_condition,
    verify_fooling_set,
)

__all__ = [
    "FoolingSet",
    "cut_edges",
    "equality_bound",
    "equality_fooling_set",
    "equality_function",
    "label_complexity_bound",
    "majority_bound",
    "majority_fooling_set",
    "majority_function",
    "paper_equality_bound",
    "paper_majority_bound",
    "ring_bound",
    "verify_cut_condition",
    "verify_fooling_set",
]
