"""Concrete fooling-set lower bounds: equality and majority on the ring
(Corollaries 6.3 and 6.4).

The paper's functions:
* ``Eq_n(x) = 1`` iff n is even and the first half equals the second half;
* ``Maj_n(x) = 1`` iff ``sum(x) >= n/2``.

A faithfulness note (recorded in EXPERIMENTS.md): the fooling sets written in
the paper's corollaries pin only ``x_1``, but Theorem 6.2's cut condition on
the bidirectional ring also constrains the *other* cut-adjacent coordinate
(``x_{n/2}``, and the mirrored y-coordinates).  We therefore pin both
boundary coordinates, shrinking the sets slightly:

* equality: ``S = {(x, x) : x_0 = x_{m-1} = 1}`` of size ``2^{n/2-2}``,
  giving ``L_n >= (n-4)/8`` (paper: ``(n-2)/8``);
* majority: the chain ``(1, 1^k 0^{m-1-k})`` restricted to ``k <= m-2`` so
  the last coordinate stays 0, of size ``floor(n/2) - 1``, giving
  ``L_n >= log2(floor(n/2)-1)/4`` (paper: ``log2(floor(n/2))/4``).

Both sets are machine-verified (fooling property + cut condition) by the
test suite; the asymptotics — linear for equality, logarithmic for majority —
are exactly the paper's.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import ValidationError
from repro.lowerbounds.fooling import FoolingSet

from itertools import product


def equality_function(x: Sequence[int]) -> int:
    """The paper's Eq_n."""
    n = len(x)
    if n % 2 == 1:
        return 0
    half = n // 2
    return 1 if tuple(x[:half]) == tuple(x[half:]) else 0


def majority_function(x: Sequence[int]) -> int:
    """The paper's Maj_n."""
    return 1 if sum(x) >= len(x) / 2 else 0


def equality_fooling_set(n: int) -> FoolingSet:
    """Corollary 6.3's set with both cut coordinates pinned to 1."""
    if n % 2 == 1 or n < 6:
        raise ValidationError("the equality bound needs even n >= 6")
    half = n // 2
    pairs = []
    for middle in product((0, 1), repeat=half - 2):
        x = (1, *middle, 1)
        pairs.append((x, x))
    return FoolingSet(n=n, m=half, pairs=tuple(pairs), value=1)


def equality_bound(n: int) -> float:
    """Our verified bound: (n-4)/8."""
    return (n - 4) / 8


def paper_equality_bound(n: int) -> float:
    """The paper's stated (n-2)/8."""
    return (n - 2) / 8


def majority_fooling_set(n: int) -> FoolingSet:
    """Corollary 6.4's chain with the last x-coordinate kept fixed.

    Pairs are ``(x, complement(x))`` (with a 1 appended for odd n), where x
    runs over ``(1, 1^k 0^{m-1-k})`` for k = 0 .. m-2.
    """
    if n < 6:
        raise ValidationError("the majority bound needs n >= 6")
    m = n // 2
    pairs = []
    for k in range(m - 1):
        x = (1,) + (1,) * k + (0,) * (m - 1 - k)
        complement = tuple(1 - bit for bit in x)
        y = complement + ((1,) if n % 2 == 1 else ())
        pairs.append((x, y))
    return FoolingSet(n=n, m=m, pairs=tuple(pairs), value=1)


def majority_bound(n: int) -> float:
    """Our verified bound: log2(floor(n/2) - 1)/4."""
    return math.log2(n // 2 - 1) / 4


def paper_majority_bound(n: int) -> float:
    """The paper's stated log2(floor(n/2))/4."""
    return math.log2(n // 2) / 4
