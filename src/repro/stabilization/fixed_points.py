"""Stable labelings (global fixed points of all reaction functions).

Section 3 of the paper: a *stable labeling* for a protocol ``(Sigma, delta)``
is a labeling ``l`` with ``delta_i(l_{-i}, x_i) = (l_{+i}, y_i)`` for every
node ``i``.  Theorem 3.1 shows that having two of them rules out label
(n-1)-stabilization, so enumerating stable labelings is the entry point of
every impossibility experiment.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from itertools import product
from typing import Any

from repro.core.configuration import Labeling
from repro.core.labels import LabelSpace
from repro.core.protocol import Protocol
from repro.exceptions import SearchBudgetExceeded
from repro.graphs.topology import Topology

DEFAULT_ENUMERATION_BUDGET = 2_000_000


def is_stable_labeling(
    protocol: Protocol, inputs: Sequence[Any], labeling: Labeling
) -> bool:
    """True when every node's reaction fixes its outgoing labels under ``labeling``."""
    for i in range(protocol.n):
        incoming = labeling.incoming(i)
        own = labeling.outgoing(i)
        if protocol.is_stateful:
            outgoing, _ = protocol.reaction(i)(incoming, own, inputs[i])
        else:
            outgoing, _ = protocol.reaction(i)(incoming, inputs[i])
        if any(outgoing[edge] != own[edge] for edge in own):
            return False
    return True


def all_labelings(
    topology: Topology,
    space: LabelSpace,
    budget: int = DEFAULT_ENUMERATION_BUDGET,
) -> Iterator[Labeling]:
    """Every labeling in ``Sigma^E`` (guarded by an explicit state budget)."""
    total = space.size ** topology.m
    if total > budget:
        raise SearchBudgetExceeded(
            f"{total} labelings exceed the enumeration budget of {budget}"
        )
    for values in product(tuple(space), repeat=topology.m):
        yield Labeling(topology, values)


def broadcast_labelings(
    topology: Topology,
    space: LabelSpace,
    budget: int = DEFAULT_ENUMERATION_BUDGET,
) -> Iterator[Labeling]:
    """Labelings where each node writes one label on all its outgoing edges.

    The paper's clique constructions (Example 1, Appendix B) all have this
    shape, shrinking the search space from ``|Sigma|^m`` to ``|Sigma|^n``.
    """
    total = space.size ** topology.n
    if total > budget:
        raise SearchBudgetExceeded(
            f"{total} broadcast labelings exceed the enumeration budget of {budget}"
        )
    for per_node in product(tuple(space), repeat=topology.n):
        values = tuple(per_node[u] for (u, _) in topology.edges)
        yield Labeling(topology, values)


def stable_labelings(
    protocol: Protocol,
    inputs: Sequence[Any],
    candidates: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_ENUMERATION_BUDGET,
) -> list[Labeling]:
    """All stable labelings among ``candidates`` (default: the full space)."""
    if candidates is None:
        candidates = all_labelings(protocol.topology, protocol.label_space, budget)
    return [
        labeling
        for labeling in candidates
        if is_stable_labeling(protocol, inputs, labeling)
    ]
