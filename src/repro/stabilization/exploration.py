"""Unified exploration core for the Theorem 3.1 states-graph.

Every exact question this repository answers — r-stabilization verdicts
(Theorem 3.1 / 4.2), attractor regions, and the adversary layer's
worst-case-delay search — is a walk over the same directed graph ``G' =
(V', E')`` whose vertices are ``(labeling, [outputs,] countdown)`` states:
the labeling lives in ``Sigma^E``, the optional output component enriches
the graph for output-stabilization questions, and the countdown ``x in
[r]^n`` records how many more steps each node may stay inactive under an
r-fair schedule.  There is an edge for every *valid* activation set ``T``
(nonempty and containing every node whose countdown hit 1), leading to
``(delta(l, T), c(x, T))`` with

    c(x, T)_i = r        if i in T
    c(x, T)_i = x_i - 1  otherwise.

:class:`ExplorationGraph` materializes the reachable fragment of that graph
**once**, with the representation tuned for exhaustive search:

* **Interned components.**  Labeling value-tuples, output tuples, countdown
  vectors, and activation sets are each interned to small integer ids on
  first sight, so a state is a triple of ints and every visited-set lookup
  hashes three machine words instead of re-hashing ``O(m + n)`` tuples.
* **Packed edge and parent arrays.**  Successor lists and BFS-tree parent
  links live in flat append-only arrays (``array.array`` in RAM, numpy
  memmaps under ``spill_dir``) instead of one Python list-of-tuples per
  state; :attr:`successors` and :attr:`parent` are lazy views with the
  historical shape.  Graphs outgrow RAM by spilling, not by crashing.
* **A shared activation-set cache** with second-chance eviction
  (:func:`valid_activation_sets`): the valid activation sets of a countdown
  vector are enumerated once per distinct countdown and cached module-wide;
  when the cache hits its cap, only entries not referenced since the last
  sweep are evicted, so a greedy-adversary sweep feeding near-unique
  countdowns can no longer dump an exhaustive search's working set.
* **A transition cache.**  The successor labeling (and outputs) of a state
  depend only on ``(labeling, [outputs,] T)`` — not on the countdown — so
  states that share a labeling reuse one evaluation per activation set.
* **Frontier-parallel expansion** (``frontier="auto"``).  The BFS runs
  level-synchronously; before expanding a level it collects every uncached
  ``(labeling, outputs, T)`` transition the level needs, groups them by
  activation set, and evaluates each group as one ``(B, m)`` packed-code
  kernel call through the batch backend
  (:meth:`repro.core.batch.BatchSimulator.step_codes`).  Results are
  staged and *interned in the serial scan order*, so state indices, parent
  links, successor arrays — and everything built on them — stay
  bit-identical to the serial expansion.
* **Symmetry quotient** (``symmetry="auto"``).  When a verified symmetry
  group is available (:func:`repro.graphs.automorphisms
  .protocol_symmetry_group`), every discovered state is canonicalized to
  the least element of its orbit before interning, so the graph holds one
  state per orbit.  Edges carry the group element mapping the raw
  successor to its canonical form plus a pre-canonicalization
  changed-labeling/changed-output flag; parent links carry the element
  chain that lets :meth:`path_to` / :meth:`lift_pairs` /
  :meth:`lift_loop_pairs` replay concrete witnesses through the group
  action.  Verdicts, delays, and attractor membership are invariant (the
  projection onto the quotient is a graph homomorphism and stability is
  orbit-invariant under verified symmetries), so consumers get unchanged
  answers from a graph that is smaller by up to the group order.
* **Parent links** for witness replay (:meth:`path_to` / :meth:`root_of`),
  and **pluggable payloads**: ``track_outputs=True`` enriches states with
  the per-node output vector for output-stabilization checking.

Exploration order is level-synchronous BFS with activation sets enumerated
in canonical order (forced set plus optional subsets by size,
lexicographic), which is exactly the order the pre-core implementations
used — so in the default ``symmetry="none"`` mode, state indices,
successor lists, parent links, and everything built on them (verdicts,
oscillation witnesses, attractor regions, worst-case delays) are
bit-identical to the historical results.

Consumers: :class:`repro.stabilization.states_graph.StatesGraph` (a thin
label-only view), the model checker's ``decide_label_r_stabilizing`` /
``decide_output_r_stabilizing`` (iterative Tarjan + witness builder on
top), and ``repro.faults.adversary.exhaustive_worst_case_delay`` /
``MinimaxAdversarySchedule`` (longest-path search on top).
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass
from itertools import combinations
from typing import Any

try:  # pragma: no cover - numpy is present in CI
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from repro.core.compiled import CompiledProtocol, compile_protocol
from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.exceptions import SearchBudgetExceeded, ValidationError
from repro.graphs.automorphisms import SymmetryGroup, protocol_symmetry_group
from repro.policy import (
    DEFAULT_BATCH_MIN_ROWS,
    UNSET,
    ExecutionPolicy,
    resolve_policy,
)

DEFAULT_STATE_BUDGET = 400_000

#: Module-wide activation-set cache, shared by every consumer (states-graph
#: construction, model checking, adversary search, greedy candidate
#: generation).  Keyed by ``(countdown, n)``; each value is a mutable
#: ``[sets, referenced]`` pair for the second-chance sweep below.
_ACTIVATION_SETS: dict[tuple[tuple[int, ...], int], list] = {}
_ACTIVATION_SETS_CAP = 1 << 16


def _evict_activation_sets(cap: int) -> None:
    """Second-chance partial eviction at the cap.

    Entries not referenced since the previous sweep are dropped first;
    survivors get their reference bit cleared (one more round of grace).
    Paper-sized exhaustive searches re-touch their few thousand countdowns
    constantly, so their working set survives even when a long
    greedy-adversary sweep floods the cache with near-unique countdowns —
    the failure mode of the previous wholesale ``clear()``.  The cache is
    still hard-bounded: if the unreferenced victims alone do not bring it
    under the cap, the oldest survivors go too.
    """
    victims = []
    survivors = []
    for key, entry in _ACTIVATION_SETS.items():
        if entry[1]:
            entry[1] = False
            survivors.append(key)
        else:
            victims.append(key)
    shortfall = len(_ACTIVATION_SETS) - len(victims) - (cap - 1)
    if shortfall > 0:
        victims.extend(survivors[:shortfall])
    for key in victims:
        del _ACTIVATION_SETS[key]


def _cached_activation_sets(
    countdown: tuple[int, ...], n: int
) -> tuple[frozenset[int], ...]:
    """All nonempty T containing every node whose countdown is 1 (cached)."""
    key = (countdown, n)
    entry = _ACTIVATION_SETS.get(key)
    if entry is not None:
        entry[1] = True
        return entry[0]
    forced = frozenset(i for i in range(n) if countdown[i] == 1)
    optional = [i for i in range(n) if i not in forced]
    sets = []
    for size in range(len(optional) + 1):
        for extra in combinations(optional, size):
            t = forced | frozenset(extra)
            if t:
                sets.append(t)
    cached = tuple(sets)
    if len(_ACTIVATION_SETS) >= _ACTIVATION_SETS_CAP:
        _evict_activation_sets(_ACTIVATION_SETS_CAP)
    _ACTIVATION_SETS[key] = [cached, True]
    return cached


def valid_activation_sets(countdown: Sequence[int], n: int) -> list[frozenset[int]]:
    """All nonempty T containing every node whose countdown is 1.

    Enumeration order is canonical: the forced set first, then forced-set
    unions with the optional nodes' subsets by size and lexicographic rank.
    Results are cached per distinct ``(countdown, n)`` and shared across
    all consumers; the returned list is a fresh copy, safe to mutate.
    """
    return list(_cached_activation_sets(tuple(countdown), n))


@dataclass(frozen=True)
class ExplorationStats:
    """Construction-time observability for one :class:`ExplorationGraph`.

    ``covered_states`` sums the orbit sizes of the stored states: equal to
    ``states`` without a quotient, and the number of concrete states the
    quotient stands for otherwise (exact when the initial labelings are
    closed under the group, e.g. broadcast or exhaustive initial sets).
    """

    states: int
    edges: int
    initial_states: int
    labeling_pool: int
    output_pool: int
    countdown_pool: int
    activation_set_pool: int
    transition_cache_hits: int
    transition_cache_misses: int
    activation_cache_hits: int
    activation_cache_misses: int
    peak_frontier: int
    frontier_mode: str
    batch_calls: int
    batch_rows: int
    symmetry_order: int
    covered_states: int
    canonicalizations: int
    canonical_cache_hits: int
    spilled: bool

    @property
    def reduction_factor(self) -> float:
        """Concrete states represented per stored state (>= 1.0)."""
        return self.covered_states / self.states if self.states else 1.0

    def as_dict(self) -> dict:
        record = asdict(self)
        record["reduction_factor"] = self.reduction_factor
        return record


class _Vec:
    """Append-only packed int vector.

    ``array.array`` in RAM; a capacity-doubling numpy memmap when a spill
    directory is given, so edge/parent stores can outgrow RAM.
    """

    __slots__ = ("_data", "_len", "_path")

    _DTYPES = {"q": "int64", "i": "int32", "B": "uint8"}

    def __init__(self, typecode: str, spill_dir: str | None = None, name: str = "vec"):
        self._len = 0
        if spill_dir is None:
            self._path = None
            self._data = array(typecode)
        else:
            self._path = os.path.join(spill_dir, f"{name}.dat")
            self._data = np.memmap(
                self._path, dtype=np.dtype(self._DTYPES[typecode]),
                mode="w+", shape=(1024,),
            )

    def append(self, value: int) -> None:
        if self._path is None:
            self._data.append(value)
        else:
            if self._len >= self._data.shape[0]:
                self._grow()
            self._data[self._len] = value
        self._len += 1

    def _grow(self) -> None:
        capacity = self._data.shape[0] * 2
        dtype = self._data.dtype
        self._data.flush()
        del self._data
        with open(self._path, "r+b") as handle:
            handle.truncate(capacity * dtype.itemsize)
        self._data = np.memmap(self._path, dtype=dtype, mode="r+", shape=(capacity,))

    def __len__(self) -> int:
        return self._len

    def __getitem__(self, k: int) -> int:
        if k < 0:
            k += self._len
        if not 0 <= k < self._len:
            raise IndexError(k)
        return int(self._data[k])


class _SuccessorsView(Sequence):
    """``successors[k]`` as a list of ``(successor index, activation set)``.

    A lazy, read-only view over the packed edge arrays with the historical
    list-of-lists shape (and list equality), so existing consumers and
    golden tests keep working unchanged.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "ExplorationGraph"):
        self._graph = graph

    def __len__(self) -> int:
        return len(self._graph.state_keys)

    def __getitem__(self, k):
        if isinstance(k, slice):
            return [self[i] for i in range(*k.indices(len(self)))]
        if k < 0:
            k += len(self)
        graph = self._graph
        pool = graph._sets
        dst = graph.edge_dst
        sid = graph.edge_sid
        return [
            (dst[e], pool[sid[e]])
            for e in range(graph.edge_offsets[k], graph.edge_offsets[k + 1])
        ]

    def __eq__(self, other) -> bool:
        if isinstance(other, (_SuccessorsView, list, tuple)):
            return len(self) == len(other) and all(
                self[k] == other[k] for k in range(len(self))
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result


class _ParentView(Sequence):
    """``parent[k]`` as ``(predecessor index, activation set)`` or ``None``."""

    __slots__ = ("_graph",)

    def __init__(self, graph: "ExplorationGraph"):
        self._graph = graph

    def __len__(self) -> int:
        return len(self._graph.state_keys)

    def __getitem__(self, k):
        if isinstance(k, slice):
            return [self[i] for i in range(*k.indices(len(self)))]
        if k < 0:
            k += len(self)
        graph = self._graph
        pred = graph.parent_idx[k]
        if pred < 0:
            return None
        return (pred, graph._sets[graph.parent_sid[k]])

    def __eq__(self, other) -> bool:
        if isinstance(other, (_ParentView, list, tuple)):
            return len(self) == len(other) and all(
                self[k] == other[k] for k in range(len(self))
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result


class ExplorationGraph:
    """The reachable fragment of the Theorem 3.1 states-graph, interned.

    States are ``(labeling, countdown)`` pairs, or ``(labeling, outputs,
    countdown)`` triples when ``track_outputs`` is set; components are
    interned to integer ids and states to integer indices (BFS discovery
    order).  ``successors[k]`` lists ``(successor index, activation set)``
    edges; ``parent[k]`` is the ``(predecessor index, activation set)``
    BFS-tree link used for witness replay (``None`` for initial states).
    Both are views over flat packed arrays (:attr:`edge_offsets` /
    :attr:`edge_dst` / :attr:`edge_sid` and :attr:`parent_idx` /
    :attr:`parent_sid`), which consumers may scan directly.

    ``frontier`` selects the expansion engine: ``"serial"`` steps one edge
    at a time through the compiled protocol; ``"batch"`` evaluates each
    level's uncached transitions as packed-code kernel calls grouped by
    activation set (requires numpy); ``"auto"`` (default) uses the batch
    route when it is available and the protocol's reactions lift to lookup
    tables.  All routes produce bit-identical graphs.

    ``symmetry`` opts into the automorphism quotient: ``"none"`` (default)
    explores concrete states; ``"auto"`` discovers and *verifies* the
    protocol's symmetry group and falls back to ``"none"`` when there is
    none; an explicit :class:`~repro.graphs.automorphisms.SymmetryGroup`
    asserts reaction equivariance on the caller's authority.  Quotient
    graphs store one canonical state per orbit; witnesses are lifted back
    to concrete runs via the per-edge group elements.

    ``spill_dir`` moves the packed edge/parent arrays onto disk-backed
    memmaps in that directory (created if missing; files are left behind
    for post-mortem inspection).

    All four knobs are fields of :class:`repro.ExecutionPolicy`; pass
    ``policy=`` to set them together (the scattered keywords are deprecated
    shims).  The policy is cosmetic here as everywhere: every route, every
    quotient, every spill produces the same graph up to state order.

    ``budget`` bounds the number of states; exceeding it raises
    :class:`SearchBudgetExceeded` with ``name`` in the message so callers
    (states-graph, model checker) keep their historical error texts.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        r: int,
        initial_labelings: Iterable[Labeling],
        budget: int = DEFAULT_STATE_BUDGET,
        track_outputs: bool = False,
        name: str = "exploration",
        policy: ExecutionPolicy | None = None,
        symmetry: str | SymmetryGroup | None = UNSET,
        frontier: str = UNSET,
        spill_dir: str | os.PathLike | None = UNSET,
        batch_min_rows: int = UNSET,
    ):
        policy = resolve_policy(
            policy,
            {
                "symmetry": symmetry,
                "frontier": frontier,
                "spill_dir": spill_dir,
                "batch_min_rows": batch_min_rows,
            },
            api="ExplorationGraph",
        )
        symmetry = policy.symmetry
        frontier = policy.frontier
        spill_dir = policy.spill_dir
        batch_min_rows = policy.batch_min_rows
        if r < 1:
            raise ValidationError("fairness parameter r must be >= 1")
        if frontier not in ("auto", "batch", "serial"):
            raise ValidationError(
                f"unknown frontier mode {frontier!r};"
                " expected 'auto', 'batch', or 'serial'"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.r = r
        self.track_outputs = track_outputs
        self.topology = protocol.topology
        self._compiled = compile_protocol(protocol)
        n = protocol.n
        self.n = n

        group = self._resolve_symmetry(symmetry)
        self._group = group
        self._canonicalizer = (
            group.canonicalizer(track_outputs) if group is not None else None
        )

        spill = None
        if spill_dir is not None:
            if np is None:
                raise ValidationError("spill_dir requires numpy (memmap backing)")
            spill = os.fspath(spill_dir)
            os.makedirs(spill, exist_ok=True)
        self.spill_dir = spill

        self._frontier_requested = frontier
        if frontier == "batch" and np is None:
            raise ValidationError(
                "frontier='batch' requires numpy; use 'serial' or 'auto'"
            )
        self._engine = None
        self._engine_enabled = frontier != "serial" and np is not None
        self._batch_min_rows = max(1, batch_min_rows)

        # Interning pools: id -> value, value -> id.
        none_outputs = (None,) * n
        self._none_outputs = none_outputs
        self._labels: list[tuple] = []
        self._label_ids: dict[tuple, int] = {}
        self._outs: list[tuple] = [none_outputs]
        self._out_ids: dict[tuple, int] = {none_outputs: 0}
        self._countdowns: list[tuple[int, ...]] = []
        self._countdown_ids: dict[tuple[int, ...], int] = {}
        self._sets: list[frozenset[int]] = []
        self._set_ids: dict[frozenset[int], int] = {}

        #: state index -> (labeling id, output id, countdown id).
        self.state_keys: list[tuple[int, int, int]] = []
        self._index: dict[tuple[int, int, int], int] = {}
        #: Packed edge store: edges of state k occupy the contiguous range
        #: ``edge_offsets[k]:edge_offsets[k+1]`` of edge_dst (successor
        #: index) and edge_sid (activation-set id); quotient graphs add
        #: edge_gid (group element mapping the raw successor to its
        #: canonical form) and edge_flags (bit 0: labeling changed, bit 1:
        #: outputs changed — computed before canonicalization).
        self.edge_offsets = _Vec("q", spill, "edge_offsets")
        self.edge_dst = _Vec("q", spill, "edge_dst")
        self.edge_sid = _Vec("i", spill, "edge_sid")
        self.edge_gid = _Vec("i", spill, "edge_gid") if group else None
        self.edge_flags = _Vec("B", spill, "edge_flags") if group else None
        #: Packed parent store: BFS-tree link of state k (or -1 for roots).
        #: Quotient graphs use parent_gid for the edge's group element —
        #: and, on roots, for the element mapping the concrete initial
        #: state to its canonical form.
        self.parent_idx = _Vec("q", spill, "parent_idx")
        self.parent_sid = _Vec("i", spill, "parent_sid")
        self.parent_gid = _Vec("i", spill, "parent_gid") if group else None
        self._orbit_sizes = _Vec("q", spill, "orbit_sizes") if group else None
        self.edge_offsets.append(0)

        self.initial_indices: list[int] = []
        self._initial_labeling_at: dict[int, Labeling] = {}

        # Per-countdown moves and counters.
        self._moves_by_cid: dict[
            int, tuple[tuple[frozenset[int], int, int], ...]
        ] = {}
        self._stats_counters = {
            "transition_hits": 0,
            "transition_misses": 0,
            "activation_hits": 0,
            "activation_misses": 0,
            "peak_frontier": 0,
            "batch_calls": 0,
            "batch_rows": 0,
            "canonicalizations": 0,
            "canonical_hits": 0,
        }
        self._covered = 0
        self._frontier_mode = "serial"

        # (labeling id, output id, activation-set id) -> successor.
        # Countdown-independent, so all states sharing a labeling reuse one
        # evaluation per set.  Plain mode stores (labeling id, output id);
        # quotient mode stores (raw labeling id, raw output id, labeling
        # changed, outputs changed) over separate raw pools.
        self._transitions: dict[tuple[int, int, int], tuple] = {}
        if group is not None:
            self._raw_labels: list[tuple] = []
            self._raw_label_ids: dict[tuple, int] = {}
            self._raw_outs: list[tuple] = [none_outputs]
            self._raw_out_ids: dict[tuple, int] = {none_outputs: 0}
            # (raw labeling id, raw output id, raw countdown id) ->
            # (canonical lid, oid, cid, group element, orbit size).
            self._canon_cache: dict[tuple[int, int, int], tuple] = {}

        self._explore(initial_labelings, budget, name)

        self.successors = _SuccessorsView(self)
        self.parent = _ParentView(self)

    # -- construction --------------------------------------------------------

    def _resolve_symmetry(self, symmetry) -> SymmetryGroup | None:
        if symmetry is None or symmetry == "none":
            return None
        if symmetry == "auto":
            return protocol_symmetry_group(self.protocol, self.inputs)
        if isinstance(symmetry, SymmetryGroup):
            if symmetry.topology != self.topology:
                raise ValidationError(
                    "symmetry group was built over a different topology"
                )
            return symmetry if symmetry.order > 1 else None
        raise ValidationError(
            f"unknown symmetry {symmetry!r}; expected 'none', 'auto',"
            " or a SymmetryGroup"
        )

    def _intern_countdown(self, countdown: tuple[int, ...]) -> int:
        cid = self._countdown_ids.get(countdown)
        if cid is None:
            cid = len(self._countdowns)
            self._countdown_ids[countdown] = cid
            self._countdowns.append(countdown)
        return cid

    def _intern_label(self, values: tuple) -> int:
        lid = self._label_ids.get(values)
        if lid is None:
            lid = len(self._labels)
            self._label_ids[values] = lid
            self._labels.append(values)
        return lid

    def _intern_out(self, outputs: tuple) -> int:
        oid = self._out_ids.get(outputs)
        if oid is None:
            oid = len(self._outs)
            self._out_ids[outputs] = oid
            self._outs.append(outputs)
        return oid

    def _moves(self, cid: int):
        """(activation set, set id, successor countdown id) for a countdown.

        The activation-set enumeration comes from the shared module-wide
        cache; the countdown arithmetic is r-specific, so it lives here.
        """
        cached = self._moves_by_cid.get(cid)
        if cached is not None:
            self._stats_counters["activation_hits"] += 1
            return cached
        self._stats_counters["activation_misses"] += 1
        countdown = self._countdowns[cid]
        n = self.n
        r = self.r
        set_ids = self._set_ids
        sets = self._sets
        entries = []
        for t in _cached_activation_sets(countdown, n):
            tid = set_ids.get(t)
            if tid is None:
                tid = len(sets)
                set_ids[t] = tid
                sets.append(t)
            next_countdown = tuple(
                r if i in t else countdown[i] - 1 for i in range(n)
            )
            entries.append((t, tid, self._intern_countdown(next_countdown)))
        cached = tuple(entries)
        self._moves_by_cid[cid] = cached
        return cached

    def _add_state(self, key, pred: int, sid: int, gid: int, orbit: int) -> int:
        k = len(self.state_keys)
        self._index[key] = k
        self.state_keys.append(key)
        self.parent_idx.append(pred)
        self.parent_sid.append(sid)
        if self._group is not None:
            self.parent_gid.append(gid)
            self._orbit_sizes.append(orbit)
            self._covered += orbit
        else:
            self._covered += 1
        return k

    def _canonical_root(self, values: tuple, start_cid: int):
        """Canonicalize one initial state; countdowns start uniform, so
        only the labeling (and the all-None outputs) matter."""
        group = self._group
        self._check_universe(values)
        gid, ties = self._canonicalizer.canonical(
            values,
            self._none_outputs if self.track_outputs else None,
            self._countdowns[start_cid],
        )
        canon_values = group.apply_labeling(gid, values)
        return canon_values, gid, group.order // ties

    def _check_universe(self, values: tuple) -> None:
        universe = self._group.label_universe
        if universe is None:
            return
        for value in values:
            if value not in universe:
                raise ValidationError(
                    "symmetry quotient saw a label outside the declared"
                    f" label space ({value!r}); equivariance was only"
                    " verified over the declared space, so quotient"
                    " exploration refuses to continue"
                )

    def _explore(self, initial_labelings, budget: int, name: str) -> None:
        group = self._group
        counters = self._stats_counters
        index = self._index

        start_cid = self._intern_countdown((self.r,) * self.n)
        frontier: list[int] = []
        for labeling in initial_labelings:
            values = labeling.values
            if group is not None:
                values, gid, orbit = self._canonical_root(values, start_cid)
            else:
                gid, orbit = 0, 1
            lid = self._intern_label(values)
            key = (lid, 0, start_cid)
            if key in index:
                continue
            k = self._add_state(key, -1, -1, gid, orbit)
            self.initial_indices.append(k)
            self._initial_labeling_at[k] = labeling
            frontier.append(k)

        expand = self._expand_quotient if group is not None else self._expand
        while frontier:
            counters["peak_frontier"] = max(
                counters["peak_frontier"], len(frontier)
            )
            pending = self._stage_level(frontier)
            next_frontier: list[int] = []
            for k in frontier:
                expand(k, pending, next_frontier, budget, name)
            frontier = next_frontier

    def _expand(self, k, pending, next_frontier, budget, name) -> None:
        """Expand one concrete state: the historical serial scan, with
        staged batch results consumed at the same scan positions."""
        counters = self._stats_counters
        state_keys = self.state_keys
        index = self._index
        transitions = self._transitions
        track_outputs = self.track_outputs
        step = self._compiled.step_values
        inputs_t = self.inputs
        edge_dst = self.edge_dst
        edge_sid = self.edge_sid

        lid, oid, cid = state_keys[k]
        for (t, tid, next_cid) in self._moves(cid):
            tkey = (lid, oid, tid)
            nxt = transitions.get(tkey)
            if nxt is None:
                counters["transition_misses"] += 1
                staged = pending.pop((lid, oid, t), None) if pending else None
                if staged is not None:
                    new_values, new_outputs = staged
                elif track_outputs:
                    new_values, new_outputs = step(
                        self._labels[lid], self._outs[oid], t, inputs_t
                    )
                else:
                    new_values, _ = step(self._labels[lid], None, t, inputs_t)
                    new_outputs = None
                noid = self._intern_out(new_outputs) if track_outputs else 0
                nlid = self._intern_label(new_values)
                nxt = (nlid, noid)
                transitions[tkey] = nxt
            else:
                counters["transition_hits"] += 1
            nkey = (nxt[0], nxt[1], next_cid)
            j = index.get(nkey)
            if j is None:
                if len(state_keys) >= budget:
                    raise SearchBudgetExceeded(
                        f"{name} exceeded budget of {budget} states"
                    )
                j = self._add_state(nkey, k, tid, 0, 1)
                next_frontier.append(j)
            edge_dst.append(j)
            edge_sid.append(tid)
        self.edge_offsets.append(len(edge_dst))

    def _expand_quotient(self, k, pending, next_frontier, budget, name) -> None:
        """Expand one canonical state, canonicalizing every raw successor.

        The changed-labeling/changed-output flags compare the raw successor
        against the (canonical) source state *before* canonicalization —
        ``canon(u) == s`` does not imply ``u == s``, and the flags are what
        the model checker's changing-edge scan relies on.
        """
        counters = self._stats_counters
        group = self._group
        state_keys = self.state_keys
        index = self._index
        transitions = self._transitions
        track_outputs = self.track_outputs
        step = self._compiled.step_values
        inputs_t = self.inputs

        lid, oid, cid = state_keys[k]
        for (t, tid, next_cid) in self._moves(cid):
            tkey = (lid, oid, tid)
            entry = transitions.get(tkey)
            if entry is None:
                counters["transition_misses"] += 1
                staged = pending.pop((lid, oid, t), None) if pending else None
                if staged is not None:
                    new_values, new_outputs = staged
                elif track_outputs:
                    new_values, new_outputs = step(
                        self._labels[lid], self._outs[oid], t, inputs_t
                    )
                else:
                    new_values, _ = step(self._labels[lid], None, t, inputs_t)
                    new_outputs = None
                self._check_universe(new_values)
                label_changed = new_values != self._labels[lid]
                output_changed = bool(
                    track_outputs and new_outputs != self._outs[oid]
                )
                rid = self._raw_label_ids.get(new_values)
                if rid is None:
                    rid = len(self._raw_labels)
                    self._raw_label_ids[new_values] = rid
                    self._raw_labels.append(new_values)
                if track_outputs:
                    roid = self._raw_out_ids.get(new_outputs)
                    if roid is None:
                        roid = len(self._raw_outs)
                        self._raw_out_ids[new_outputs] = roid
                        self._raw_outs.append(new_outputs)
                else:
                    roid = 0
                entry = (rid, roid, label_changed, output_changed)
                transitions[tkey] = entry
            else:
                counters["transition_hits"] += 1
            rid, roid, label_changed, output_changed = entry

            ckey = (rid, roid, next_cid)
            canon = self._canon_cache.get(ckey)
            if canon is None:
                counters["canonicalizations"] += 1
                raw_values = self._raw_labels[rid]
                raw_outs = self._raw_outs[roid]
                gid, ties = self._canonicalizer.canonical(
                    raw_values,
                    raw_outs if track_outputs else None,
                    self._countdowns[next_cid],
                )
                nlid = self._intern_label(group.apply_labeling(gid, raw_values))
                noid = (
                    self._intern_out(group.apply_per_node(gid, raw_outs))
                    if track_outputs
                    else 0
                )
                nccid = self._intern_countdown(
                    group.apply_per_node(gid, self._countdowns[next_cid])
                )
                canon = (nlid, noid, nccid, gid, group.order // ties)
                self._canon_cache[ckey] = canon
            else:
                counters["canonical_hits"] += 1
            nlid, noid, nccid, gid, orbit = canon

            nkey = (nlid, noid, nccid)
            j = index.get(nkey)
            if j is None:
                if len(state_keys) >= budget:
                    raise SearchBudgetExceeded(
                        f"{name} exceeded budget of {budget} states"
                    )
                j = self._add_state(nkey, k, tid, gid, orbit)
                next_frontier.append(j)
            self.edge_dst.append(j)
            self.edge_sid.append(tid)
            self.edge_gid.append(gid)
            self.edge_flags.append(int(label_changed) | (int(output_changed) << 1))
        self.edge_offsets.append(len(self.edge_dst))

    # -- frontier batching ---------------------------------------------------

    def _ensure_engine(self):
        """The lazily built batch engine, or ``None`` when batching is off."""
        if not self._engine_enabled:
            return None
        if self._engine is None:
            from repro.core.batch import BatchSimulator

            try:
                engine = BatchSimulator(self.protocol, [self.inputs])
            except ValidationError:
                if self._frontier_requested == "batch":
                    raise
                self._engine_enabled = False
                return None
            if self._frontier_requested == "auto" and not engine.lifted_nodes:
                # Nothing lifts to tables: the kernel would run the same
                # per-row Python fallback as the serial scan, minus the
                # staging overhead.  Not worth it.
                self._engine_enabled = False
                return None
            self._engine = engine
            self._frontier_mode = "batch"
        return self._engine

    def _stage_level(self, frontier: list[int]):
        """Pass 1 of a level: batch-evaluate the level's uncached transitions.

        Collects every ``(labeling, outputs, T)`` key the level will need,
        groups the missing ones by activation set, and runs one
        ``step_codes`` kernel call per group that clears
        ``batch_min_rows``.  Results are staged in a dict keyed by the raw
        activation set; pass 2 (``_expand*``) pops them at the exact serial
        scan position.  Staging interns *nothing* (it reads the module
        activation-set cache and only looks pools up), so the interning
        order — and with it every id and index in the graph — is
        bit-identical no matter which route evaluated a transition.
        """
        engine = self._ensure_engine()
        if engine is None:
            return None
        counters = self._stats_counters
        transitions = self._transitions
        set_ids = self._set_ids
        n = self.n
        staged: set = set()
        buckets: dict[frozenset[int], list[tuple[int, int]]] = {}
        for k in frontier:
            lid, oid, cid = self.state_keys[k]
            countdown = self._countdowns[cid]
            for t in _cached_activation_sets(countdown, n):
                tid = set_ids.get(t)
                if tid is not None and (lid, oid, tid) in transitions:
                    continue
                pkey = (lid, oid, t)
                if pkey in staged:
                    continue
                staged.add(pkey)
                buckets.setdefault(t, []).append((lid, oid))

        pending: dict[tuple[int, int, frozenset[int]], tuple] = {}
        track_outputs = self.track_outputs
        interner = engine.batch_compiled.interner
        y_interners = engine.batch_compiled.y_interners
        for t, rows in buckets.items():
            if len(rows) < self._batch_min_rows:
                continue
            label_rows = [self._labels[lid] for (lid, _oid) in rows]
            codes = interner.bulk_encode(label_rows)
            if codes is None:
                codes = np.asarray(
                    [interner.encode_values(row) for row in label_rows],
                    dtype=np.int64,
                )
            if track_outputs:
                ocodes = np.asarray(
                    [
                        [
                            y_interners[i].encode(value)
                            for i, value in enumerate(self._outs[oid])
                        ]
                        for (_lid, oid) in rows
                    ],
                    dtype=np.int64,
                )
            else:
                ocodes = np.zeros((len(rows), n), dtype=np.int64)
            new_codes, new_ocodes = engine.step_codes(codes, ocodes, t)
            counters["batch_calls"] += 1
            counters["batch_rows"] += len(rows)
            for row, (lid, oid) in enumerate(rows):
                new_values = interner.decode_values(new_codes[row])
                if track_outputs:
                    new_outputs = tuple(
                        y_interners[i].decode(int(new_ocodes[row, i]))
                        for i in range(n)
                    )
                else:
                    new_outputs = None
                pending[(lid, oid, t)] = (new_values, new_outputs)
        return pending or None

    # -- component access ----------------------------------------------------

    @property
    def compiled(self) -> CompiledProtocol:
        """The shared compiled form of the protocol."""
        return self._compiled

    @property
    def quotient(self) -> bool:
        """Whether states are canonical orbit representatives."""
        return self._group is not None

    @property
    def symmetry_group(self) -> SymmetryGroup | None:
        """The verified symmetry group quotienting the graph, if any."""
        return self._group

    def __len__(self) -> int:
        return len(self.state_keys)

    @property
    def num_edges(self) -> int:
        return len(self.edge_dst)

    @property
    def num_labelings(self) -> int:
        """Distinct labelings seen (the interning pool size)."""
        return len(self._labels)

    @property
    def num_countdowns(self) -> int:
        """Distinct countdown vectors seen."""
        return len(self._countdowns)

    def labeling_of(self, k: int) -> tuple:
        """The interned labeling value-tuple of state ``k``."""
        return self._labels[self.state_keys[k][0]]

    def outputs_of(self, k: int) -> tuple:
        """The interned output tuple of state ``k`` (all-``None`` unless
        the graph tracks outputs)."""
        return self._outs[self.state_keys[k][1]]

    def countdown_of(self, k: int) -> tuple[int, ...]:
        """The interned countdown vector of state ``k``."""
        return self._countdowns[self.state_keys[k][2]]

    def label_id_of(self, k: int) -> int:
        """The interned labeling id of state ``k`` (cheap equality proxy)."""
        return self.state_keys[k][0]

    def output_id_of(self, k: int) -> int:
        """The interned output id of state ``k`` (cheap equality proxy)."""
        return self.state_keys[k][1]

    def labeling_id(self, values: tuple) -> int | None:
        """The id of a labeling value-tuple, or ``None`` if never reached."""
        return self._label_ids.get(values)

    def initial_labeling(self, k: int) -> Labeling:
        """The :class:`Labeling` object a root state was initialized from."""
        return self._initial_labeling_at[k]

    def activation_set(self, sid: int) -> frozenset[int]:
        """The interned activation set behind ``edge_sid``/``parent_sid``."""
        return self._sets[sid]

    def stats(self) -> ExplorationStats:
        """Construction statistics (pool sizes, cache hit rates, batching)."""
        counters = self._stats_counters
        return ExplorationStats(
            states=len(self.state_keys),
            edges=len(self.edge_dst),
            initial_states=len(self.initial_indices),
            labeling_pool=len(self._labels),
            output_pool=len(self._outs),
            countdown_pool=len(self._countdowns),
            activation_set_pool=len(self._sets),
            transition_cache_hits=counters["transition_hits"],
            transition_cache_misses=counters["transition_misses"],
            activation_cache_hits=counters["activation_hits"],
            activation_cache_misses=counters["activation_misses"],
            peak_frontier=counters["peak_frontier"],
            frontier_mode=self._frontier_mode,
            batch_calls=counters["batch_calls"],
            batch_rows=counters["batch_rows"],
            symmetry_order=self._group.order if self._group else 1,
            covered_states=self._covered,
            canonicalizations=counters["canonicalizations"],
            canonical_cache_hits=counters["canonical_hits"],
            spilled=self.spill_dir is not None,
        )

    # -- witness replay ------------------------------------------------------

    def _parent_chain(self, k: int) -> tuple[int, list[tuple[int, int]]]:
        """The BFS-tree edge chain root -> k as (set id, group element)."""
        pairs: list[tuple[int, int]] = []
        current = k
        while True:
            pred = self.parent_idx[current]
            if pred < 0:
                break
            gid = self.parent_gid[current] if self._group is not None else 0
            pairs.append((self.parent_sid[current], gid))
            current = pred
        pairs.reverse()
        return current, pairs

    def lift_pairs(
        self, pairs: Iterable[tuple[int, int]], h: int
    ) -> tuple[list[frozenset[int]], int]:
        """Concrete actions for quotient edges entered with accumulator ``h``.

        The exploration maintains the invariant ``concrete state = h^-1 .
        canonical state``; an edge with activation set ``T`` and element
        ``g`` concretely activates ``h^-1(T)`` and advances the accumulator
        to ``g . h``.  Plain graphs (``h`` ignored as 0) return the edge
        sets unchanged.
        """
        group = self._group
        sets = self._sets
        if group is None:
            return [sets[sid] for (sid, _gid) in pairs], 0
        actions = []
        for sid, gid in pairs:
            actions.append(group.apply_nodes(group.inverse(h), sets[sid]))
            h = group.compose(gid, h)
        return actions, h

    def lift_loop_pairs(
        self, pairs: Sequence[tuple[int, int]], h: int
    ) -> list[frozenset[int]]:
        """Concrete actions closing a concrete cycle for a quotient cycle.

        A canonical-graph cycle returns to the same canonical state, but
        concretely it lands on ``(c . h)^-1 . s`` where ``c`` is the
        product of the cycle's group elements — a (possibly) different
        orbit member.  Unrolling the cycle ``ord(c)`` times makes the
        concrete walk close exactly, which is what lets lasso witnesses
        replay on the engine.
        """
        group = self._group
        if group is None:
            return [self._sets[sid] for (sid, _gid) in pairs]
        c = 0
        for _sid, gid in pairs:
            c = group.compose(gid, c)
        actions: list[frozenset[int]] = []
        for _ in range(group.element_order(c)):
            step_actions, h = self.lift_pairs(pairs, h)
            actions.extend(step_actions)
        return actions

    def accumulated_element(self, k: int) -> int:
        """The group accumulator ``h`` of state ``k`` along its BFS tree
        path (``concrete state = h^-1 . canonical state``); 0 when
        unquotiented."""
        if self._group is None:
            return 0
        root, pairs = self._parent_chain(k)
        h = self.parent_gid[root]
        for _sid, gid in pairs:
            h = self._group.compose(gid, h)
        return h

    def root_accumulator(self, k: int) -> int:
        """The accumulator of a root state (its canonicalizing element)."""
        if self._group is None:
            return 0
        return self.parent_gid[k]

    def path_to(self, k: int) -> list[frozenset[int]]:
        """Activation sets leading from this state's root to state ``k``.

        On quotient graphs the actions are already lifted: replaying them
        on the engine from the root's *concrete* initial labeling visits
        the concrete counterparts of the tree path.
        """
        root, pairs = self._parent_chain(k)
        if self._group is None:
            return [self._sets[sid] for (sid, _gid) in pairs]
        actions, _h = self.lift_pairs(pairs, self.parent_gid[root])
        return actions

    def root_of(self, k: int) -> int:
        current = k
        while True:
            pred = self.parent_idx[current]
            if pred < 0:
                return current
            current = pred

    # -- attractor regions ---------------------------------------------------

    def attractor_region(self, target_labelings: Iterable[tuple]) -> set[int]:
        """States from which *every* path reaches one of the target labelings.

        ``target_labelings`` is an iterable of labeling value-tuples (as
        produced by :meth:`labeling_of` or ``Labeling.values``).

        This is the "attractor region" of the Theorem 3.1 proof, computed as
        the standard inevitability (AF) fixpoint: start from states already at
        a target and repeatedly add states all of whose successors are in the
        region.  Passing the set of *all* stable labelings characterizes label
        r-stabilization: the protocol stabilizes iff every initialization
        vertex lies in that attractor region.

        On quotient graphs the targets are closed under the symmetry group
        first (a state matches when its labeling is any orbit member of a
        target), so concrete targets keep working.
        """
        target_ids = set()
        for values in target_labelings:
            values = tuple(values)
            if self._group is not None:
                for g in range(self._group.order):
                    lid = self._label_ids.get(
                        self._group.apply_labeling(g, values)
                    )
                    if lid is not None:
                        target_ids.add(lid)
            else:
                lid = self._label_ids.get(values)
                if lid is not None:
                    target_ids.add(lid)
        total = len(self.state_keys)
        offsets = self.edge_offsets
        dst = self.edge_dst
        in_region = [False] * total
        remaining = [offsets[k + 1] - offsets[k] for k in range(total)]
        predecessors: list[list[int]] = [[] for _ in range(total)]
        for k in range(total):
            for e in range(offsets[k], offsets[k + 1]):
                predecessors[dst[e]].append(k)
        work: list[int] = []
        for k in range(total):
            if self.state_keys[k][0] in target_ids:
                in_region[k] = True
                work.append(k)
        cursor = 0
        while cursor < len(work):
            j = work[cursor]
            cursor += 1
            for k in predecessors[j]:
                if in_region[k]:
                    continue
                remaining[k] -= 1
                if remaining[k] == 0:
                    in_region[k] = True
                    work.append(k)
        return {k for k in range(total) if in_region[k]}
