"""Unified exploration core for the Theorem 3.1 states-graph.

Every exact question this repository answers — r-stabilization verdicts
(Theorem 3.1 / 4.2), attractor regions, and the adversary layer's
worst-case-delay search — is a walk over the same directed graph ``G' =
(V', E')`` whose vertices are ``(labeling, [outputs,] countdown)`` states:
the labeling lives in ``Sigma^E``, the optional output component enriches
the graph for output-stabilization questions, and the countdown ``x in
[r]^n`` records how many more steps each node may stay inactive under an
r-fair schedule.  There is an edge for every *valid* activation set ``T``
(nonempty and containing every node whose countdown hit 1), leading to
``(delta(l, T), c(x, T))`` with

    c(x, T)_i = r        if i in T
    c(x, T)_i = x_i - 1  otherwise.

:class:`ExplorationGraph` materializes the reachable fragment of that graph
**once**, with the representation tuned for exhaustive search:

* **Interned components.**  Labeling value-tuples, output tuples, countdown
  vectors, and activation sets are each interned to small integer ids on
  first sight, so a state is a triple of ints and every visited-set lookup
  hashes three machine words instead of re-hashing ``O(m + n)`` tuples
  (three times per edge, in the pre-core implementations).
* **A shared activation-set cache.**  The valid activation sets of a
  countdown vector are enumerated once per distinct countdown and cached
  module-wide (:func:`valid_activation_sets`), instead of re-running
  ``combinations(...)`` for every state as the seed ``StatesGraph`` did.
* **A transition cache.**  The successor labeling (and outputs) of a state
  depend only on ``(labeling, [outputs,] T)`` — not on the countdown — so
  states that share a labeling but differ in countdown (the vast majority:
  up to ``r^n`` countdowns per labeling) reuse one compiled
  ``step_values`` evaluation per activation set.
* **Parent links** for witness replay (:meth:`path_to` / :meth:`root_of`),
  and **pluggable payloads**: ``track_outputs=True`` enriches states with
  the per-node output vector for output-stabilization checking.

Exploration order is plain BFS with activation sets enumerated in canonical
order (forced set plus optional subsets by size, lexicographic), which is
exactly the order the pre-core implementations used — so state indices,
successor lists, parent links, and everything built on them (verdicts,
oscillation witnesses, attractor regions, worst-case delays) are
bit-identical to the historical results.

Consumers: :class:`repro.stabilization.states_graph.StatesGraph` (a thin
label-only view), the model checker's ``decide_label_r_stabilizing`` /
``decide_output_r_stabilizing`` (iterative Tarjan + witness builder on
top), and ``repro.faults.adversary.exhaustive_worst_case_delay`` /
``MinimaxAdversarySchedule`` (longest-path search on top).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from itertools import combinations
from typing import Any

from repro.core.compiled import CompiledProtocol, compile_protocol
from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.exceptions import SearchBudgetExceeded, ValidationError

DEFAULT_STATE_BUDGET = 400_000

#: Module-wide activation-set cache, shared by every consumer (states-graph
#: construction, model checking, adversary search, greedy candidate
#: generation).  Keyed by ``(countdown, n)``; paper-sized exhaustive
#: searches only ever touch a few thousand distinct countdowns, but
#: long-running greedy-adversary sweeps can feed a near-unique countdown
#: per simulated step, so the cache is bounded: when it reaches
#: ``_ACTIVATION_SETS_CAP`` entries it is cleared and refills from the
#: current workload (an exhaustive search re-touches its countdowns
#: immediately, so the amortized benefit survives eviction).
_ACTIVATION_SETS: dict[tuple[tuple[int, ...], int], tuple[frozenset[int], ...]] = {}
_ACTIVATION_SETS_CAP = 1 << 16


def _cached_activation_sets(
    countdown: tuple[int, ...], n: int
) -> tuple[frozenset[int], ...]:
    """All nonempty T containing every node whose countdown is 1 (cached)."""
    key = (countdown, n)
    cached = _ACTIVATION_SETS.get(key)
    if cached is None:
        forced = frozenset(i for i in range(n) if countdown[i] == 1)
        optional = [i for i in range(n) if i not in forced]
        sets = []
        for size in range(len(optional) + 1):
            for extra in combinations(optional, size):
                t = forced | frozenset(extra)
                if t:
                    sets.append(t)
        cached = tuple(sets)
        if len(_ACTIVATION_SETS) >= _ACTIVATION_SETS_CAP:
            _ACTIVATION_SETS.clear()
        _ACTIVATION_SETS[key] = cached
    return cached


def valid_activation_sets(countdown: Sequence[int], n: int) -> list[frozenset[int]]:
    """All nonempty T containing every node whose countdown is 1.

    Enumeration order is canonical: the forced set first, then forced-set
    unions with the optional nodes' subsets by size and lexicographic rank.
    Results are cached per distinct ``(countdown, n)`` and shared across
    all consumers; the returned list is a fresh copy, safe to mutate.
    """
    return list(_cached_activation_sets(tuple(countdown), n))


class ExplorationGraph:
    """The reachable fragment of the Theorem 3.1 states-graph, interned.

    States are ``(labeling, countdown)`` pairs, or ``(labeling, outputs,
    countdown)`` triples when ``track_outputs`` is set; components are
    interned to integer ids and states to integer indices (BFS discovery
    order).  ``successors[k]`` lists ``(successor index, activation set)``
    edges; ``parent[k]`` is the ``(predecessor index, activation set)``
    BFS-tree link used for witness replay (``None`` for initial states).

    ``budget`` bounds the number of states; exceeding it raises
    :class:`SearchBudgetExceeded` with ``name`` in the message so callers
    (states-graph, model checker) keep their historical error texts.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        r: int,
        initial_labelings: Iterable[Labeling],
        budget: int = DEFAULT_STATE_BUDGET,
        track_outputs: bool = False,
        name: str = "exploration",
    ):
        if r < 1:
            raise ValidationError("fairness parameter r must be >= 1")
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.r = r
        self.track_outputs = track_outputs
        self.topology = protocol.topology
        self._compiled = compile_protocol(protocol)
        n = protocol.n
        self.n = n

        # Interning pools: id -> value, value -> id.
        none_outputs = (None,) * n
        self._labels: list[tuple] = []
        self._label_ids: dict[tuple, int] = {}
        self._outs: list[tuple] = [none_outputs]
        self._out_ids: dict[tuple, int] = {none_outputs: 0}
        self._countdowns: list[tuple[int, ...]] = []
        self._countdown_ids: dict[tuple[int, ...], int] = {}

        #: state index -> (labeling id, output id, countdown id).
        self.state_keys: list[tuple[int, int, int]] = []
        self._index: dict[tuple[int, int, int], int] = {}
        #: successors[k] = list of (successor index, activation set).
        self.successors: list[list[tuple[int, frozenset[int]]]] = []
        #: (predecessor index, activation set) for witness paths; None for roots.
        self.parent: list[tuple[int, frozenset[int]] | None] = []
        self.initial_indices: list[int] = []
        self._initial_labeling_at: dict[int, Labeling] = {}

        labels = self._labels
        label_ids = self._label_ids
        outs = self._outs
        out_ids = self._out_ids
        countdowns = self._countdowns
        countdown_ids = self._countdown_ids
        state_keys = self.state_keys
        index = self._index
        successors = self.successors
        parent = self.parent

        def intern_countdown(countdown: tuple[int, ...]) -> int:
            cid = countdown_ids.get(countdown)
            if cid is None:
                cid = len(countdowns)
                countdown_ids[countdown] = cid
                countdowns.append(countdown)
            return cid

        # Per-countdown moves: (activation set, set id, successor countdown
        # id).  The activation-set enumeration comes from the shared
        # module-wide cache; the countdown arithmetic is r-specific, so it
        # lives here.
        set_ids: dict[frozenset[int], int] = {}
        moves_by_cid: dict[int, tuple[tuple[frozenset[int], int, int], ...]] = {}

        def moves(cid: int):
            cached = moves_by_cid.get(cid)
            if cached is None:
                countdown = countdowns[cid]
                entries = []
                for t in _cached_activation_sets(countdown, n):
                    tid = set_ids.setdefault(t, len(set_ids))
                    next_countdown = tuple(
                        r if i in t else countdown[i] - 1 for i in range(n)
                    )
                    entries.append((t, tid, intern_countdown(next_countdown)))
                cached = tuple(entries)
                moves_by_cid[cid] = cached
            return cached

        def add_state(key, parent_link) -> int:
            k = len(state_keys)
            index[key] = k
            state_keys.append(key)
            successors.append([])
            parent.append(parent_link)
            return k

        start_cid = intern_countdown((r,) * n)
        queue: deque[int] = deque()
        for labeling in initial_labelings:
            values = labeling.values
            lid = label_ids.get(values)
            if lid is None:
                lid = len(labels)
                label_ids[values] = lid
                labels.append(values)
            key = (lid, 0, start_cid)
            if key in index:
                continue
            k = add_state(key, None)
            self.initial_indices.append(k)
            self._initial_labeling_at[k] = labeling
            queue.append(k)

        # (labeling id, output id, activation-set id) -> successor
        # (labeling id, output id).  Countdown-independent, so all states
        # sharing a labeling reuse one compiled evaluation per set.
        transitions: dict[tuple[int, int, int], tuple[int, int]] = {}
        step = self._compiled.step_values
        inputs_t = self.inputs

        while queue:
            k = queue.popleft()
            lid, oid, cid = state_keys[k]
            succ_k = successors[k]
            for (t, tid, next_cid) in moves(cid):
                tkey = (lid, oid, tid)
                nxt = transitions.get(tkey)
                if nxt is None:
                    if track_outputs:
                        new_values, new_outputs = step(
                            labels[lid], outs[oid], t, inputs_t
                        )
                        noid = out_ids.get(new_outputs)
                        if noid is None:
                            noid = len(outs)
                            out_ids[new_outputs] = noid
                            outs.append(new_outputs)
                    else:
                        new_values, _ = step(labels[lid], None, t, inputs_t)
                        noid = 0
                    nlid = label_ids.get(new_values)
                    if nlid is None:
                        nlid = len(labels)
                        label_ids[new_values] = nlid
                        labels.append(new_values)
                    nxt = (nlid, noid)
                    transitions[tkey] = nxt
                nkey = (nxt[0], nxt[1], next_cid)
                j = index.get(nkey)
                if j is None:
                    if len(state_keys) >= budget:
                        raise SearchBudgetExceeded(
                            f"{name} exceeded budget of {budget} states"
                        )
                    j = add_state(nkey, (k, t))
                    queue.append(j)
                succ_k.append((j, t))

    # -- component access ----------------------------------------------------

    @property
    def compiled(self) -> CompiledProtocol:
        """The shared compiled form of the protocol."""
        return self._compiled

    def __len__(self) -> int:
        return len(self.state_keys)

    @property
    def num_labelings(self) -> int:
        """Distinct labelings seen (the interning pool size)."""
        return len(self._labels)

    @property
    def num_countdowns(self) -> int:
        """Distinct countdown vectors seen."""
        return len(self._countdowns)

    def labeling_of(self, k: int) -> tuple:
        """The interned labeling value-tuple of state ``k``."""
        return self._labels[self.state_keys[k][0]]

    def outputs_of(self, k: int) -> tuple:
        """The interned output tuple of state ``k`` (all-``None`` unless
        the graph tracks outputs)."""
        return self._outs[self.state_keys[k][1]]

    def countdown_of(self, k: int) -> tuple[int, ...]:
        """The interned countdown vector of state ``k``."""
        return self._countdowns[self.state_keys[k][2]]

    def label_id_of(self, k: int) -> int:
        """The interned labeling id of state ``k`` (cheap equality proxy)."""
        return self.state_keys[k][0]

    def output_id_of(self, k: int) -> int:
        """The interned output id of state ``k`` (cheap equality proxy)."""
        return self.state_keys[k][1]

    def labeling_id(self, values: tuple) -> int | None:
        """The id of a labeling value-tuple, or ``None`` if never reached."""
        return self._label_ids.get(values)

    def initial_labeling(self, k: int) -> Labeling:
        """The :class:`Labeling` object a root state was initialized from."""
        return self._initial_labeling_at[k]

    # -- witness replay ------------------------------------------------------

    def path_to(self, k: int) -> list[frozenset[int]]:
        """Activation sets leading from this state's root to state ``k``."""
        actions: list[frozenset[int]] = []
        current = k
        while self.parent[current] is not None:
            pred, action = self.parent[current]
            actions.append(action)
            current = pred
        actions.reverse()
        return actions

    def root_of(self, k: int) -> int:
        current = k
        while self.parent[current] is not None:
            current = self.parent[current][0]
        return current

    # -- attractor regions ---------------------------------------------------

    def attractor_region(self, target_labelings: Iterable[tuple]) -> set[int]:
        """States from which *every* path reaches one of the target labelings.

        ``target_labelings`` is an iterable of labeling value-tuples (as
        produced by :meth:`labeling_of` or ``Labeling.values``).

        This is the "attractor region" of the Theorem 3.1 proof, computed as
        the standard inevitability (AF) fixpoint: start from states already at
        a target and repeatedly add states all of whose successors are in the
        region.  Passing the set of *all* stable labelings characterizes label
        r-stabilization: the protocol stabilizes iff every initialization
        vertex lies in that attractor region.
        """
        target_ids = set()
        for values in target_labelings:
            lid = self._label_ids.get(tuple(values))
            if lid is not None:
                target_ids.add(lid)
        total = len(self.state_keys)
        in_region = [False] * total
        remaining = [len(succ) for succ in self.successors]
        predecessors: list[list[int]] = [[] for _ in range(total)]
        for k, succ in enumerate(self.successors):
            for (j, _) in succ:
                predecessors[j].append(k)
        work: deque[int] = deque()
        for k in range(total):
            if self.state_keys[k][0] in target_ids:
                in_region[k] = True
                work.append(k)
        while work:
            j = work.popleft()
            for k in predecessors[j]:
                if in_region[k]:
                    continue
                remaining[k] -= 1
                if remaining[k] == 0:
                    in_region[k] = True
                    work.append(k)
        return {k for k in range(total) if in_region[k]}
