"""Exact decision of r-stabilization for small systems.

Deciding whether a protocol is label r-stabilizing is PSPACE-complete in
general (Theorem 4.2), but for the paper-sized gadgets (cliques of 3-5 nodes,
binary labels) it is perfectly tractable to decide *exactly* by exhausting the
Theorem 3.1 states-graph:

* the protocol is **not** label r-stabilizing  iff  some reachable cycle
  contains a transition that changes the labeling;
* it is **not** output r-stabilizing  iff  some reachable cycle (in the graph
  enriched with output components) changes some node's output.

The reachable graph is materialized by the unified exploration core
(:class:`repro.stabilization.exploration.ExplorationGraph`, with
``track_outputs`` selecting the enriched state payload); both checks then
reduce to scanning strongly connected components for an internal "changing"
edge — an integer id comparison, thanks to the core's interning.  When one
is found the checker emits a concrete :class:`OscillationWitness` — an
initial labeling plus an eventually periodic r-fair schedule under which the
engine provably oscillates, replayed from the core's parent links.

State spaces are exponential, so callers can restrict the initial labelings
(e.g. to broadcast labelings for clique protocols whose reactions send the
same label to all neighbors — see ``broadcast_labelings``; reachable cycles
of such protocols only ever contain broadcast labelings, so the restriction
loses nothing).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.core.schedule import LassoSchedule
from repro.exceptions import ValidationError
from repro.stabilization.exploration import DEFAULT_STATE_BUDGET, ExplorationGraph
from repro.stabilization.fixed_points import all_labelings


@dataclass(frozen=True)
class OscillationWitness:
    """A concrete non-stabilization certificate.

    Running the protocol from ``initial_labeling`` under the r-fair schedule
    ``prefix`` + repeated ``loop`` changes the monitored quantity (labels or
    outputs) infinitely often.
    """

    initial_labeling: Labeling
    prefix: tuple[frozenset[int], ...]
    loop: tuple[frozenset[int], ...]
    r: int

    def to_schedule(self, n: int) -> LassoSchedule:
        return LassoSchedule(n, self.prefix, self.loop)


@dataclass(frozen=True)
class StabilizationVerdict:
    """Outcome of an exact r-stabilization check."""

    stabilizing: bool
    kind: str  # "label" or "output"
    r: int
    states_explored: int
    witness: OscillationWitness | None = None

    def __bool__(self) -> bool:
        return self.stabilizing


def decide_label_r_stabilizing(
    protocol: Protocol,
    inputs: Sequence[Any],
    r: int,
    initial_labelings: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_STATE_BUDGET,
) -> StabilizationVerdict:
    """Exactly decide label r-stabilization by exhausting the states-graph."""
    return _decide(protocol, inputs, r, initial_labelings, budget, track_outputs=False)


def decide_output_r_stabilizing(
    protocol: Protocol,
    inputs: Sequence[Any],
    r: int,
    initial_labelings: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_STATE_BUDGET,
) -> StabilizationVerdict:
    """Exactly decide output r-stabilization (states also carry outputs)."""
    return _decide(protocol, inputs, r, initial_labelings, budget, track_outputs=True)


# ---------------------------------------------------------------------------


def _decide(protocol, inputs, r, initial_labelings, budget, track_outputs):
    if r < 1:
        raise ValidationError("fairness parameter r must be >= 1")
    if initial_labelings is None:
        initial_labelings = all_labelings(
            protocol.topology, protocol.label_space, budget
        )

    graph = ExplorationGraph(
        protocol,
        inputs,
        r,
        initial_labelings,
        budget=budget,
        track_outputs=track_outputs,
        name="model checker",
    )

    # -- SCCs (iterative Tarjan) --------------------------------------------
    scc_id = _tarjan(graph.successors)

    # -- hunt for a changing edge inside an SCC ------------------------------
    # A transition changes the monitored quantity exactly when the interned
    # labeling id differs (or, with outputs tracked, the output id — the id
    # is constant 0 otherwise, so one combined check covers both modes).
    state_keys = graph.state_keys
    bad_edge = None
    for k, succ in enumerate(graph.successors):
        lid, oid, _ = state_keys[k]
        for (j, t) in succ:
            if scc_id[k] != scc_id[j]:
                continue
            jlid, joid, _ = state_keys[j]
            if lid != jlid or oid != joid:
                bad_edge = (k, j, t)
                break
        if bad_edge:
            break

    if bad_edge is None:
        return StabilizationVerdict(
            stabilizing=True,
            kind="output" if track_outputs else "label",
            r=r,
            states_explored=len(graph),
        )

    witness = _build_witness(bad_edge, scc_id, graph, r)
    return StabilizationVerdict(
        stabilizing=False,
        kind="output" if track_outputs else "label",
        r=r,
        states_explored=len(graph),
        witness=witness,
    )


def _tarjan(successors: list[list[tuple[int, frozenset[int]]]]) -> list[int]:
    """Iterative Tarjan SCC; returns the component id of every vertex."""
    size = len(successors)
    ids = [-1] * size
    low = [0] * size
    order = [0] * size
    on_stack = [False] * size
    stack: list[int] = []
    counter = 0
    component = 0

    for root in range(size):
        if order[root] != 0:
            continue
        work = [(root, 0)]
        while work:
            v, pointer = work[-1]
            if pointer == 0:
                counter += 1
                order[v] = counter
                low[v] = counter
                stack.append(v)
                on_stack[v] = True
            advanced = False
            succ = successors[v]
            while pointer < len(succ):
                w = succ[pointer][0]
                pointer += 1
                if order[w] == 0:
                    work[-1] = (v, pointer)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], order[w])
            if advanced:
                continue
            work.pop()
            if low[v] == order[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    ids[w] = component
                    if w == v:
                        break
                component += 1
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
    return ids


def _build_witness(bad_edge, scc_id, graph: ExplorationGraph, r):
    k, j, t = bad_edge
    # Path from the exploration root of k back to k (roots are initial
    # states), via the core's parent links.
    prefix_actions = graph.path_to(k)
    initial_labeling = graph.initial_labeling(graph.root_of(k))

    # Cycle: the bad edge k -> j, then a path j -> k inside the SCC.
    component = scc_id[k]
    successors = graph.successors
    back_parent: dict[int, tuple[int, frozenset[int]]] = {}
    queue = deque((j,))
    seen = {j}
    while queue:
        v = queue.popleft()
        if v == k:
            break
        for (w, action) in successors[v]:
            if scc_id[w] == component and w not in seen:
                seen.add(w)
                back_parent[w] = (v, action)
                queue.append(w)
    loop_actions: list[frozenset[int]] = []
    current = k
    while current != j:
        pred, action = back_parent[current]
        loop_actions.append(action)
        current = pred
    loop_actions.reverse()
    loop = (t, *loop_actions)
    return OscillationWitness(
        initial_labeling=initial_labeling,
        prefix=tuple(prefix_actions),
        loop=loop,
        r=r,
    )
