"""Exact decision of r-stabilization for small systems.

Deciding whether a protocol is label r-stabilizing is PSPACE-complete in
general (Theorem 4.2), but for the paper-sized gadgets (cliques of 3-5 nodes,
binary labels) it is perfectly tractable to decide *exactly* by exhausting the
Theorem 3.1 states-graph:

* the protocol is **not** label r-stabilizing  iff  some reachable cycle
  contains a transition that changes the labeling;
* it is **not** output r-stabilizing  iff  some reachable cycle (in the graph
  enriched with output components) changes some node's output.

The reachable graph is materialized by the unified exploration core
(:class:`repro.stabilization.exploration.ExplorationGraph`, with
``track_outputs`` selecting the enriched state payload); both checks then
reduce to scanning strongly connected components for an internal "changing"
edge — an integer id comparison, thanks to the core's interning.  When one
is found the checker emits a concrete :class:`OscillationWitness` — an
initial labeling plus an eventually periodic r-fair schedule under which the
engine provably oscillates, replayed from the core's parent links.

With ``symmetry="auto"`` the check runs on the symmetry quotient of the
states-graph instead: states are canonical orbit representatives under the
protocol's verified automorphism group, SCCs and the changing-edge scan run
on the (often orders-of-magnitude smaller) quotient, and witnesses are
lifted back to concrete schedules before they are returned — the verdict
and the replayed witness are indistinguishable from the unquotiented check.

State spaces are exponential, so callers can restrict the initial labelings
(e.g. to broadcast labelings for clique protocols whose reactions send the
same label to all neighbors — see ``broadcast_labelings``; reachable cycles
of such protocols only ever contain broadcast labelings, so the restriction
loses nothing).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.core.schedule import LassoSchedule
from repro.exceptions import ValidationError
from repro.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.stabilization.exploration import (
    DEFAULT_STATE_BUDGET,
    ExplorationGraph,
    ExplorationStats,
)
from repro.stabilization.fixed_points import all_labelings


@dataclass(frozen=True)
class OscillationWitness:
    """A concrete non-stabilization certificate.

    Running the protocol from ``initial_labeling`` under the r-fair schedule
    ``prefix`` + repeated ``loop`` changes the monitored quantity (labels or
    outputs) infinitely often.
    """

    initial_labeling: Labeling
    prefix: tuple[frozenset[int], ...]
    loop: tuple[frozenset[int], ...]
    r: int

    def to_schedule(self, n: int) -> LassoSchedule:
        return LassoSchedule(n, self.prefix, self.loop)


@dataclass(frozen=True)
class StabilizationVerdict:
    """Outcome of an exact r-stabilization check."""

    stabilizing: bool
    kind: str  # "label" or "output"
    r: int
    states_explored: int
    witness: OscillationWitness | None = None
    stats: ExplorationStats | None = None

    def __bool__(self) -> bool:
        return self.stabilizing


def decide_label_r_stabilizing(
    protocol: Protocol,
    inputs: Sequence[Any],
    r: int,
    initial_labelings: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_STATE_BUDGET,
    policy: ExecutionPolicy | None = None,
    symmetry=UNSET,
    frontier: str = UNSET,
    spill_dir=UNSET,
) -> StabilizationVerdict:
    """Exactly decide label r-stabilization by exhausting the states-graph."""
    policy = resolve_policy(
        policy,
        {"symmetry": symmetry, "frontier": frontier, "spill_dir": spill_dir},
        api="decide_label_r_stabilizing",
    )
    return _decide(
        protocol,
        inputs,
        r,
        initial_labelings,
        budget,
        track_outputs=False,
        policy=policy,
    )


def decide_output_r_stabilizing(
    protocol: Protocol,
    inputs: Sequence[Any],
    r: int,
    initial_labelings: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_STATE_BUDGET,
    policy: ExecutionPolicy | None = None,
    symmetry=UNSET,
    frontier: str = UNSET,
    spill_dir=UNSET,
) -> StabilizationVerdict:
    """Exactly decide output r-stabilization (states also carry outputs)."""
    policy = resolve_policy(
        policy,
        {"symmetry": symmetry, "frontier": frontier, "spill_dir": spill_dir},
        api="decide_output_r_stabilizing",
    )
    return _decide(
        protocol,
        inputs,
        r,
        initial_labelings,
        budget,
        track_outputs=True,
        policy=policy,
    )


# ---------------------------------------------------------------------------


def _decide(
    protocol,
    inputs,
    r,
    initial_labelings,
    budget,
    track_outputs,
    policy=None,
):
    if r < 1:
        raise ValidationError("fairness parameter r must be >= 1")
    if initial_labelings is None:
        initial_labelings = all_labelings(
            protocol.topology, protocol.label_space, budget
        )

    graph = ExplorationGraph(
        protocol,
        inputs,
        r,
        initial_labelings,
        budget=budget,
        track_outputs=track_outputs,
        name="model checker",
        policy=policy,
    )

    # -- SCCs (iterative Tarjan) --------------------------------------------
    scc_id = _tarjan(graph)

    # -- hunt for a changing edge inside an SCC ------------------------------
    # A transition changes the monitored quantity exactly when the interned
    # labeling id differs (or, with outputs tracked, the output id — the id
    # is constant 0 otherwise, so one combined check covers both modes).  On
    # quotient graphs id comparison is unsound (``canon(u) == s`` does not
    # imply ``u == s``), so the core records per-edge changed flags against
    # the *raw* successor; label and output changes are orbit-invariant, so
    # a flagged quotient cycle lifts to a concrete oscillation and vice
    # versa.
    edge_offsets = graph.edge_offsets
    edge_dst = graph.edge_dst
    state_keys = graph.state_keys
    bad_edge = None
    if graph.quotient:
        edge_flags = graph.edge_flags
        for k in range(len(graph)):
            for e in range(edge_offsets[k], edge_offsets[k + 1]):
                if scc_id[k] == scc_id[edge_dst[e]] and edge_flags[e]:
                    bad_edge = (k, e)
                    break
            if bad_edge:
                break
    else:
        for k in range(len(graph)):
            lid, oid, _ = state_keys[k]
            for e in range(edge_offsets[k], edge_offsets[k + 1]):
                j = edge_dst[e]
                if scc_id[k] != scc_id[j]:
                    continue
                jlid, joid, _ = state_keys[j]
                if lid != jlid or oid != joid:
                    bad_edge = (k, e)
                    break
            if bad_edge:
                break

    if bad_edge is None:
        return StabilizationVerdict(
            stabilizing=True,
            kind="output" if track_outputs else "label",
            r=r,
            states_explored=len(graph),
            stats=graph.stats(),
        )

    witness = _build_witness(bad_edge, scc_id, graph, r)
    return StabilizationVerdict(
        stabilizing=False,
        kind="output" if track_outputs else "label",
        r=r,
        states_explored=len(graph),
        witness=witness,
        stats=graph.stats(),
    )


def _tarjan(graph: ExplorationGraph) -> list[int]:
    """Iterative Tarjan SCC over the core's packed edge arrays.

    Returns the component id of every vertex.  Reads ``edge_offsets`` /
    ``edge_dst`` directly so no per-state successor lists are materialized
    — on spilled graphs this streams straight off the memmaps.
    """
    edge_offsets = graph.edge_offsets
    edge_dst = graph.edge_dst
    size = len(graph)
    ids = [-1] * size
    low = [0] * size
    order = [0] * size
    on_stack = [False] * size
    stack: list[int] = []
    counter = 0
    component = 0

    for root in range(size):
        if order[root] != 0:
            continue
        work = [(root, edge_offsets[root])]
        while work:
            v, pointer = work[-1]
            if pointer == edge_offsets[v]:
                counter += 1
                order[v] = counter
                low[v] = counter
                stack.append(v)
                on_stack[v] = True
            advanced = False
            end = edge_offsets[v + 1]
            while pointer < end:
                w = edge_dst[pointer]
                pointer += 1
                if order[w] == 0:
                    work[-1] = (v, pointer)
                    work.append((w, edge_offsets[w]))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], order[w])
            if advanced:
                continue
            work.pop()
            if low[v] == order[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    ids[w] = component
                    if w == v:
                        break
                component += 1
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
    return ids


def _build_witness(bad_edge, scc_id, graph: ExplorationGraph, r):
    k, bad = bad_edge
    j = graph.edge_dst[bad]
    # Path from the exploration root of k back to k (roots are initial
    # states), via the core's parent links.  On quotient graphs the actions
    # come back already lifted against the root's concrete initial labeling.
    prefix_actions = graph.path_to(k)
    initial_labeling = graph.initial_labeling(graph.root_of(k))

    # Cycle: the bad edge k -> j, then a path j -> k inside the SCC,
    # found by BFS over the packed edge arrays.
    component = scc_id[k]
    edge_offsets = graph.edge_offsets
    edge_dst = graph.edge_dst
    back_parent: dict[int, tuple[int, int]] = {}
    queue = deque((j,))
    seen = {j}
    while queue:
        v = queue.popleft()
        if v == k:
            break
        for e in range(edge_offsets[v], edge_offsets[v + 1]):
            w = edge_dst[e]
            if scc_id[w] == component and w not in seen:
                seen.add(w)
                back_parent[w] = (v, e)
                queue.append(w)
    back_edges: list[int] = []
    current = k
    while current != j:
        pred, e = back_parent[current]
        back_edges.append(e)
        current = pred
    back_edges.reverse()
    cycle_edges = [bad, *back_edges]

    if graph.quotient:
        # The quotient cycle returns to the same canonical state but not
        # necessarily the same concrete one; lift_loop_pairs unrolls it
        # until the concrete walk closes.
        edge_sid = graph.edge_sid
        edge_gid = graph.edge_gid
        pairs = [(edge_sid[e], edge_gid[e]) for e in cycle_edges]
        loop = tuple(graph.lift_loop_pairs(pairs, graph.accumulated_element(k)))
    else:
        edge_sid = graph.edge_sid
        loop = tuple(graph.activation_set(edge_sid[e]) for e in cycle_edges)
    return OscillationWitness(
        initial_labeling=initial_labeling,
        prefix=tuple(prefix_actions),
        loop=loop,
        r=r,
    )
