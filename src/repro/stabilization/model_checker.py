"""Exact decision of r-stabilization for small systems.

Deciding whether a protocol is label r-stabilizing is PSPACE-complete in
general (Theorem 4.2), but for the paper-sized gadgets (cliques of 3-5 nodes,
binary labels) it is perfectly tractable to decide *exactly* by exhausting the
Theorem 3.1 states-graph:

* the protocol is **not** label r-stabilizing  iff  some reachable cycle
  contains a transition that changes the labeling;
* it is **not** output r-stabilizing  iff  some reachable cycle (in the graph
  enriched with output components) changes some node's output.

Both checks reduce to scanning strongly connected components for an internal
"changing" edge; when one is found the checker emits a concrete
:class:`OscillationWitness` — an initial labeling plus an eventually periodic
r-fair schedule under which the engine provably oscillates.

State spaces are exponential, so callers can restrict the initial labelings
(e.g. to broadcast labelings for clique protocols whose reactions send the
same label to all neighbors — see ``broadcast_labelings``; reachable cycles
of such protocols only ever contain broadcast labelings, so the restriction
loses nothing).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations
from typing import Any

from repro.core.compiled import compile_protocol
from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.core.schedule import LassoSchedule
from repro.exceptions import SearchBudgetExceeded, ValidationError
from repro.stabilization.fixed_points import all_labelings

DEFAULT_STATE_BUDGET = 400_000


@dataclass(frozen=True)
class OscillationWitness:
    """A concrete non-stabilization certificate.

    Running the protocol from ``initial_labeling`` under the r-fair schedule
    ``prefix`` + repeated ``loop`` changes the monitored quantity (labels or
    outputs) infinitely often.
    """

    initial_labeling: Labeling
    prefix: tuple[frozenset[int], ...]
    loop: tuple[frozenset[int], ...]
    r: int

    def to_schedule(self, n: int) -> LassoSchedule:
        return LassoSchedule(n, self.prefix, self.loop)


@dataclass(frozen=True)
class StabilizationVerdict:
    """Outcome of an exact r-stabilization check."""

    stabilizing: bool
    kind: str  # "label" or "output"
    r: int
    states_explored: int
    witness: OscillationWitness | None = None

    def __bool__(self) -> bool:
        return self.stabilizing


def decide_label_r_stabilizing(
    protocol: Protocol,
    inputs: Sequence[Any],
    r: int,
    initial_labelings: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_STATE_BUDGET,
) -> StabilizationVerdict:
    """Exactly decide label r-stabilization by exhausting the states-graph."""
    return _decide(protocol, inputs, r, initial_labelings, budget, track_outputs=False)


def decide_output_r_stabilizing(
    protocol: Protocol,
    inputs: Sequence[Any],
    r: int,
    initial_labelings: Iterable[Labeling] | None = None,
    budget: int = DEFAULT_STATE_BUDGET,
) -> StabilizationVerdict:
    """Exactly decide output r-stabilization (states also carry outputs)."""
    return _decide(protocol, inputs, r, initial_labelings, budget, track_outputs=True)


# ---------------------------------------------------------------------------


def _decide(protocol, inputs, r, initial_labelings, budget, track_outputs):
    if r < 1:
        raise ValidationError("fairness parameter r must be >= 1")
    topology = protocol.topology
    n = protocol.n
    if initial_labelings is None:
        initial_labelings = all_labelings(topology, protocol.label_space, budget)

    compiled = compile_protocol(protocol)
    inputs = tuple(inputs)

    def apply(values, outputs, countdown, active):
        if track_outputs:
            new_values, new_outputs = compiled.step_values(
                values, outputs, active, inputs
            )
        else:
            new_values, _ = compiled.step_values(values, None, active, inputs)
            new_outputs = outputs
        new_countdown = tuple(
            r if i in active else countdown[i] - 1 for i in range(n)
        )
        return (new_values, new_outputs, new_countdown)

    # -- explore the reachable graph ---------------------------------------
    start_countdown = (r,) * n
    none_outputs = (None,) * n
    index: dict = {}
    states: list = []
    successors: list[list[tuple[int, frozenset[int]]]] = []
    parent: list[tuple[int, frozenset[int]] | None] = []
    initial_index_of: list[int] = []
    initial_labeling_objects: list[Labeling] = []

    queue: deque[int] = deque()
    for labeling in initial_labelings:
        state = (labeling.values, none_outputs, start_countdown)
        if state in index:
            continue
        index[state] = len(states)
        states.append(state)
        successors.append([])
        parent.append(None)
        initial_index_of.append(index[state])
        initial_labeling_objects.append(labeling)
        queue.append(index[state])

    activation_cache: dict[tuple[int, ...], list[frozenset[int]]] = {}

    def activations(countdown):
        cached = activation_cache.get(countdown)
        if cached is not None:
            return cached
        forced = frozenset(i for i in range(n) if countdown[i] == 1)
        optional = [i for i in range(n) if i not in forced]
        sets = []
        for size in range(len(optional) + 1):
            for extra in combinations(optional, size):
                t = forced | frozenset(extra)
                if t:
                    sets.append(t)
        activation_cache[countdown] = sets
        return sets

    while queue:
        k = queue.popleft()
        values, outputs, countdown = states[k]
        for t in activations(countdown):
            nxt = apply(values, outputs, countdown, t)
            j = index.get(nxt)
            if j is None:
                if len(states) >= budget:
                    raise SearchBudgetExceeded(
                        f"model checker exceeded budget of {budget} states"
                    )
                j = len(states)
                index[nxt] = j
                states.append(nxt)
                successors.append([])
                parent.append((k, t))
                queue.append(j)
            successors[k].append((j, t))

    # -- SCCs (iterative Tarjan) --------------------------------------------
    scc_id = _tarjan(successors)

    # -- hunt for a changing edge inside an SCC ------------------------------
    def changes(a, b):
        if states[a][0] != states[b][0]:
            return True
        return track_outputs and states[a][1] != states[b][1]

    bad_edge = None
    for k, succ in enumerate(successors):
        for (j, t) in succ:
            if scc_id[k] == scc_id[j] and changes(k, j):
                bad_edge = (k, j, t)
                break
        if bad_edge:
            break

    if bad_edge is None:
        return StabilizationVerdict(
            stabilizing=True,
            kind="output" if track_outputs else "label",
            r=r,
            states_explored=len(states),
        )

    witness = _build_witness(
        bad_edge,
        scc_id,
        successors,
        parent,
        states,
        initial_index_of,
        initial_labeling_objects,
        topology,
        r,
    )
    return StabilizationVerdict(
        stabilizing=False,
        kind="output" if track_outputs else "label",
        r=r,
        states_explored=len(states),
        witness=witness,
    )


def _tarjan(successors: list[list[tuple[int, frozenset[int]]]]) -> list[int]:
    """Iterative Tarjan SCC; returns the component id of every vertex."""
    size = len(successors)
    ids = [-1] * size
    low = [0] * size
    order = [0] * size
    on_stack = [False] * size
    stack: list[int] = []
    counter = 0
    component = 0

    for root in range(size):
        if order[root] != 0:
            continue
        work = [(root, 0)]
        while work:
            v, pointer = work[-1]
            if pointer == 0:
                counter += 1
                order[v] = counter
                low[v] = counter
                stack.append(v)
                on_stack[v] = True
            advanced = False
            succ = successors[v]
            while pointer < len(succ):
                w = succ[pointer][0]
                pointer += 1
                if order[w] == 0:
                    work[-1] = (v, pointer)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], order[w])
            if advanced:
                continue
            work.pop()
            if low[v] == order[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    ids[w] = component
                    if w == v:
                        break
                component += 1
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
    return ids


def _build_witness(
    bad_edge,
    scc_id,
    successors,
    parent,
    states,
    initial_index_of,
    initial_labeling_objects,
    topology,
    r,
):
    k, j, t = bad_edge
    # Path from the exploration root of k back to k (roots are initial states).
    prefix_actions: list[frozenset[int]] = []
    current = k
    while parent[current] is not None:
        pred, action = parent[current]
        prefix_actions.append(action)
        current = pred
    prefix_actions.reverse()
    root = current
    root_position = initial_index_of.index(root)
    initial_labeling = initial_labeling_objects[root_position]

    # Cycle: the bad edge k -> j, then a path j -> k inside the SCC.
    component = scc_id[k]
    back_parent: dict[int, tuple[int, frozenset[int]]] = {}
    queue = deque((j,))
    seen = {j}
    while queue:
        v = queue.popleft()
        if v == k:
            break
        for (w, action) in successors[v]:
            if scc_id[w] == component and w not in seen:
                seen.add(w)
                back_parent[w] = (v, action)
                queue.append(w)
    loop_actions: list[frozenset[int]] = []
    current = k
    while current != j:
        pred, action = back_parent[current]
        loop_actions.append(action)
        current = pred
    loop_actions.reverse()
    loop = (t, *loop_actions)
    return OscillationWitness(
        initial_labeling=initial_labeling,
        prefix=tuple(prefix_actions),
        loop=loop,
        r=r,
    )
