"""Self-stabilization analysis: fixed points, states-graph, model checking.

All exact machinery (the states-graph, the model checker, and the faults
layer's worst-case-delay search) runs on one unified exploration core,
:class:`~repro.stabilization.exploration.ExplorationGraph`.
"""

from repro.stabilization.example_clique import (
    example1_protocol,
    one_token_labeling,
    oscillating_schedule,
    stable_labeling_pair,
)
from repro.stabilization.exploration import (
    DEFAULT_STATE_BUDGET,
    ExplorationGraph,
)
from repro.stabilization.fixed_points import (
    all_labelings,
    broadcast_labelings,
    is_stable_labeling,
    stable_labelings,
)
from repro.stabilization.model_checker import (
    OscillationWitness,
    StabilizationVerdict,
    decide_label_r_stabilizing,
    decide_output_r_stabilizing,
)
from repro.stabilization.states_graph import StatesGraph, valid_activation_sets

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "ExplorationGraph",
    "OscillationWitness",
    "StabilizationVerdict",
    "StatesGraph",
    "all_labelings",
    "broadcast_labelings",
    "decide_label_r_stabilizing",
    "decide_output_r_stabilizing",
    "example1_protocol",
    "is_stable_labeling",
    "one_token_labeling",
    "oscillating_schedule",
    "stable_labeling_pair",
    "stable_labelings",
    "valid_activation_sets",
]
