"""Self-stabilization analysis: fixed points, states-graph, model checking."""

from repro.stabilization.example_clique import (
    example1_protocol,
    one_token_labeling,
    oscillating_schedule,
    stable_labeling_pair,
)
from repro.stabilization.fixed_points import (
    all_labelings,
    broadcast_labelings,
    is_stable_labeling,
    stable_labelings,
)
from repro.stabilization.model_checker import (
    OscillationWitness,
    StabilizationVerdict,
    decide_label_r_stabilizing,
    decide_output_r_stabilizing,
)
from repro.stabilization.states_graph import StatesGraph, valid_activation_sets

__all__ = [
    "OscillationWitness",
    "StabilizationVerdict",
    "StatesGraph",
    "all_labelings",
    "broadcast_labelings",
    "decide_label_r_stabilizing",
    "decide_output_r_stabilizing",
    "example1_protocol",
    "is_stable_labeling",
    "one_token_labeling",
    "oscillating_schedule",
    "stable_labeling_pair",
    "stable_labelings",
    "valid_activation_sets",
]
