"""The states-graph of Theorem 3.1.

The proof of Theorem 3.1 builds a directed graph ``G' = (V', E')`` whose
vertices are pairs ``(labeling, countdown)``: the labeling component lives in
``Sigma^E`` and the countdown component ``x in [r]^n`` records, for every
node, how many more steps it may stay inactive under an r-fair schedule.
There is an edge for every *valid* activation set ``T`` (nonempty and
containing every node whose countdown hit 1), leading to
``(delta(l, T), c(x, T))`` with

    c(x, T)_i = r        if i in T
    c(x, T)_i = x_i - 1  otherwise.

Every run of the protocol under an r-fair schedule is a path in this graph,
and conversely every path yields an r-fair schedule, so questions about
r-stabilization become graph questions: the protocol fails to label
r-stabilize exactly when some reachable cycle changes the labeling.

:class:`StatesGraph` is the label-only view of the unified exploration core
(:class:`repro.stabilization.exploration.ExplorationGraph`), which interns
labelings and countdowns, caches valid activation sets per countdown, and
reuses one compiled transition per ``(labeling, activation set)`` pair —
the same core the model checker and the adversary's worst-case-delay search
run on.  The historical ``states`` / ``index`` views (full
``(labeling values, countdown)`` tuples) are materialized lazily on first
access, so exhaustive searches that only need ids never pay for them.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.policy import UNSET, ExecutionPolicy, resolve_policy
from repro.stabilization.exploration import (
    DEFAULT_STATE_BUDGET,
    ExplorationGraph,
    valid_activation_sets,
)

__all__ = [
    "DEFAULT_STATE_BUDGET",
    "State",
    "StatesGraph",
    "valid_activation_sets",
]

#: A state: (labeling values in canonical edge order, countdown vector).
State = tuple[tuple, tuple[int, ...]]


class StatesGraph(ExplorationGraph):
    """Reachable fragment of the Theorem 3.1 states-graph (labels only)."""

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        r: int,
        initial_labelings: Iterable[Labeling],
        budget: int = DEFAULT_STATE_BUDGET,
        policy: ExecutionPolicy | None = None,
        symmetry=UNSET,
        frontier: str = UNSET,
        spill_dir=UNSET,
    ):
        policy = resolve_policy(
            policy,
            {"symmetry": symmetry, "frontier": frontier, "spill_dir": spill_dir},
            api="StatesGraph",
        )
        super().__init__(
            protocol,
            inputs,
            r,
            initial_labelings,
            budget=budget,
            track_outputs=False,
            name="states-graph",
            policy=policy,
        )
        self._states_view: list[State] | None = None
        self._index_view: dict[State, int] | None = None

    # -- compatibility views -------------------------------------------------

    @property
    def states(self) -> list[State]:
        """States as ``(labeling values, countdown)`` tuples, by index."""
        if self._states_view is None:
            labels = self._labels
            countdowns = self._countdowns
            self._states_view = [
                (labels[lid], countdowns[cid]) for (lid, _oid, cid) in self.state_keys
            ]
        return self._states_view

    @property
    def index(self) -> dict[State, int]:
        """Mapping from ``(labeling values, countdown)`` states to indices."""
        if self._index_view is None:
            self._index_view = {state: k for k, state in enumerate(self.states)}
        return self._index_view
