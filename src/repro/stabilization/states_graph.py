"""The states-graph of Theorem 3.1.

The proof of Theorem 3.1 builds a directed graph ``G' = (V', E')`` whose
vertices are pairs ``(labeling, countdown)``: the labeling component lives in
``Sigma^E`` and the countdown component ``x in [r]^n`` records, for every
node, how many more steps it may stay inactive under an r-fair schedule.
There is an edge for every *valid* activation set ``T`` (nonempty and
containing every node whose countdown hit 1), leading to
``(delta(l, T), c(x, T))`` with

    c(x, T)_i = r        if i in T
    c(x, T)_i = x_i - 1  otherwise.

Every run of the protocol under an r-fair schedule is a path in this graph,
and conversely every path yields an r-fair schedule, so questions about
r-stabilization become graph questions: the protocol fails to label
r-stabilize exactly when some reachable cycle changes the labeling.

This module materializes the reachable part of ``G'`` (with explicit state
budgets) and computes the *attractor regions* the proof reasons about.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from itertools import combinations
from typing import Any

from repro.core.compiled import compile_protocol
from repro.core.configuration import Labeling
from repro.core.protocol import Protocol
from repro.exceptions import SearchBudgetExceeded, ValidationError

#: A state: (labeling values in canonical edge order, countdown vector).
State = tuple[tuple, tuple[int, ...]]

DEFAULT_STATE_BUDGET = 400_000


def valid_activation_sets(countdown: Sequence[int], n: int) -> list[frozenset[int]]:
    """All nonempty T containing every node whose countdown is 1."""
    forced = frozenset(i for i in range(n) if countdown[i] == 1)
    optional = [i for i in range(n) if i not in forced]
    sets = []
    for size in range(len(optional) + 1):
        for extra in combinations(optional, size):
            t = forced | frozenset(extra)
            if t:
                sets.append(t)
    return sets


class StatesGraph:
    """Reachable fragment of the Theorem 3.1 states-graph."""

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        r: int,
        initial_labelings: Iterable[Labeling],
        budget: int = DEFAULT_STATE_BUDGET,
    ):
        if r < 1:
            raise ValidationError("fairness parameter r must be >= 1")
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.r = r
        self.topology = protocol.topology
        self._compiled = compile_protocol(protocol)
        n = protocol.n
        initial_countdown = (r,) * n

        self.index: dict[State, int] = {}
        self.states: list[State] = []
        #: successors[k] = list of (successor index, activation set).
        self.successors: list[list[tuple[int, frozenset[int]]]] = []
        #: (predecessor index, activation set) for witness paths; None for roots.
        self.parent: list[tuple[int, frozenset[int]] | None] = []
        self.initial_indices: list[int] = []

        queue: deque[int] = deque()
        for labeling in initial_labelings:
            state = (labeling.values, initial_countdown)
            if state not in self.index:
                self._add_state(state, None)
                self.initial_indices.append(self.index[state])
                queue.append(self.index[state])

        while queue:
            k = queue.popleft()
            values, countdown = self.states[k]
            for t in valid_activation_sets(countdown, n):
                next_state = self._apply(values, countdown, t)
                if next_state not in self.index:
                    if len(self.states) >= budget:
                        raise SearchBudgetExceeded(
                            f"states-graph exceeded budget of {budget} states"
                        )
                    self._add_state(next_state, (k, t))
                    queue.append(self.index[next_state])
                self.successors[k].append((self.index[next_state], t))

    # -- construction helpers ----------------------------------------------

    def _add_state(self, state: State, parent: tuple[int, frozenset[int]] | None):
        self.index[state] = len(self.states)
        self.states.append(state)
        self.successors.append([])
        self.parent.append(parent)

    def _apply(self, values: tuple, countdown: tuple, active: frozenset[int]) -> State:
        new_values, _ = self._compiled.step_values(values, None, active, self.inputs)
        new_countdown = tuple(
            self.r if i in active else countdown[i] - 1
            for i in range(self.protocol.n)
        )
        return (new_values, new_countdown)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.states)

    def labeling_of(self, k: int) -> tuple:
        return self.states[k][0]

    def path_to(self, k: int) -> list[frozenset[int]]:
        """Activation sets leading from this state's root to state ``k``."""
        actions: list[frozenset[int]] = []
        current = k
        while self.parent[current] is not None:
            pred, action = self.parent[current]
            actions.append(action)
            current = pred
        actions.reverse()
        return actions

    def root_of(self, k: int) -> int:
        current = k
        while self.parent[current] is not None:
            current = self.parent[current][0]
        return current

    def attractor_region(self, target_labelings: Iterable[tuple]) -> set[int]:
        """States from which *every* path reaches one of the target labelings.

        ``target_labelings`` is an iterable of labeling value-tuples (as
        produced by :meth:`labeling_of` or ``Labeling.values``).

        This is the "attractor region" of the Theorem 3.1 proof, computed as
        the standard inevitability (AF) fixpoint: start from states already at
        a target and repeatedly add states all of whose successors are in the
        region.  Passing the set of *all* stable labelings characterizes label
        r-stabilization: the protocol stabilizes iff every initialization
        vertex lies in that attractor region.
        """
        targets = set(target_labelings)
        in_region = [False] * len(self.states)
        remaining = [len(succ) for succ in self.successors]
        predecessors: list[list[int]] = [[] for _ in self.states]
        for k, succ in enumerate(self.successors):
            for (j, _) in succ:
                predecessors[j].append(k)
        work = deque()
        for k in range(len(self.states)):
            if self.labeling_of(k) in targets:
                in_region[k] = True
                work.append(k)
        while work:
            j = work.popleft()
            for k in predecessors[j]:
                if in_region[k]:
                    continue
                remaining[k] -= 1
                if remaining[k] == 0:
                    in_region[k] = True
                    work.append(k)
        return {k for k in range(len(self.states)) if in_region[k]}
