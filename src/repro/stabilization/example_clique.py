"""Example 1 of the paper: tightness of Theorem 3.1.

The protocol runs on the clique ``K_n`` with label space {0, 1}.  Every node
broadcasts one bit to all neighbors:

    delta_i(l) = 0...0  if every incoming edge is labeled 0,
                 1...1  otherwise.

Both the all-zero and the all-one labelings are stable, so by Theorem 3.1 the
protocol is not label (n-1)-stabilizing.  The paper shows this is tight: the
protocol *is* label r-stabilizing for every r < n-1, because an oscillation
requires exactly one all-one node per step, two activations per step, and the
all-one node to be reactivated immediately — constraints no (n-2)-fair
schedule can satisfy forever.

This module also constructs the explicit oscillating (n-1)-fair schedule:
rotate the "all-one" token around the clique by activating pairs
``{i, i+1 mod n}``; each node is activated twice in a row and then rests for
exactly n-2 steps, which is (n-1)-fair.
"""

from __future__ import annotations

from repro.core.configuration import Labeling
from repro.core.labels import binary
from repro.core.protocol import StatelessProtocol
from repro.core.reaction import UniformReaction
from repro.core.schedule import ExplicitSchedule
from repro.exceptions import ValidationError
from repro.graphs.standard import clique


def example1_protocol(n: int) -> StatelessProtocol:
    """The Example 1 protocol on ``K_n``."""
    if n < 3:
        raise ValidationError("Example 1 needs n >= 3")
    topology = clique(n)

    def broadcast_bit(incoming, _x):
        bit = 0 if all(value == 0 for value in incoming.values()) else 1
        return bit, bit

    reactions = [
        UniformReaction(topology.out_edges(i), broadcast_bit) for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name=f"example1({n})")


def stable_labeling_pair(n: int) -> tuple[Labeling, Labeling]:
    """The two stable labelings of Example 1: all-zero and all-one."""
    topology = clique(n)
    return Labeling.uniform(topology, 0), Labeling.uniform(topology, 1)


def one_token_labeling(n: int, holder: int = 0) -> Labeling:
    """The labeling where exactly ``holder`` broadcasts 1 and everyone else 0."""
    topology = clique(n)
    values = tuple(1 if u == holder else 0 for (u, _) in topology.edges)
    return Labeling(topology, values)


def oscillating_schedule(n: int) -> ExplicitSchedule:
    """The (n-1)-fair schedule under which Example 1 oscillates forever.

    Step t activates ``{t mod n, (t+1) mod n}``.  Started from
    :func:`one_token_labeling` with holder 0, the all-one token hops from node
    t to node t+1 at every step, so the labeling never converges.  Each node
    is activated at steps ``t = i-1 (mod n)`` and ``t = i (mod n)``: twice in
    a row, then idle for n-2 steps, i.e. the schedule is exactly (n-1)-fair.
    """
    if n < 3:
        raise ValidationError("Example 1 needs n >= 3")
    steps = [{t % n, (t + 1) % n} for t in range(n)]
    return ExplicitSchedule(n, steps, cycle=True)
