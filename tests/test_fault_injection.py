"""Transient-fault injection: the operational meaning of self-stabilization.

The paper (Section 1.2): a self-stabilizing system recovers from *any*
transient fault, provided code and inputs stay intact.  These tests corrupt
the edge labels mid-run — arbitrarily, repeatedly — and verify that every
self-stabilizing construction in the library re-converges to the correct
state afterwards:

* the generic protocol (Prop 2.3) re-computes f;
* the D-counter re-synchronizes;
* the TM-on-ring protocol re-stabilizes to M(x);
* the circuit-on-ring protocol re-stabilizes to C(x);
* BGP on a safe instance re-converges to its unique routing tree.
"""

import random

import pytest

from repro.analysis import settled_outputs
from repro.core import (
    Configuration,
    Labeling,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.dynamics import NO_ROUTE, bgp_protocol, good_gadget
from repro.graphs import clique, unidirectional_ring
from repro.power import (
    RingCircuitLayout,
    circuit_ring_protocol,
    d_counter_protocol,
    generic_protocol,
    machine_ring_protocol,
    machine_ring_round_bound,
    ring_inputs,
)
from repro.substrates.circuits import parity_circuit
from repro.substrates.turing import ConfigurationGraph, parity_machine


def corrupt(labeling: Labeling, space, rng, fraction=0.5) -> Labeling:
    """Overwrite a random subset of edges with random labels."""
    updates = {}
    for edge in labeling.topology.edges:
        if rng.random() < fraction:
            updates[edge] = space.sample(rng)
    return labeling.replace(updates)


def run_with_midway_fault(protocol, inputs, initial, fault_at, total, rng):
    """Run synchronously, corrupt at step ``fault_at``, keep running."""
    simulator = Simulator(protocol, inputs)
    schedule = SynchronousSchedule(protocol.n)
    config = simulator.initial_configuration(initial)
    for t in range(fault_at):
        config = simulator.step(config, schedule.active(t))
    config = Configuration(
        corrupt(config.labeling, protocol.label_space, rng), config.outputs
    )
    for t in range(fault_at, total):
        config = simulator.step(config, schedule.active(t))
    return config


class TestGenericProtocolRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recomputes_after_corruption(self, seed):
        rng = random.Random(seed)
        topology = clique(4)
        f = lambda bits: (bits[0] ^ bits[2]) | bits[3]  # noqa: E731
        protocol = generic_protocol(topology, f)
        x = tuple(rng.randrange(2) for _ in range(4))
        initial = Labeling.random(topology, protocol.label_space, rng)
        config = run_with_midway_fault(
            protocol, x, initial, fault_at=9, total=9 + 2 * 4 + 2, rng=rng
        )
        assert all(y == f(x) for y in config.outputs)

    def test_repeated_faults(self):
        rng = random.Random(7)
        topology = clique(3)
        f = lambda bits: bits[0] & bits[1]  # noqa: E731
        protocol = generic_protocol(topology, f)
        x = (1, 1, 0)
        simulator = Simulator(protocol, x)
        schedule = SynchronousSchedule(3)
        config = simulator.initial_configuration(
            Labeling.random(topology, protocol.label_space, rng)
        )
        for round_index in range(3):
            config = Configuration(
                corrupt(config.labeling, protocol.label_space, rng), config.outputs
            )
            for t in range(8):
                config = simulator.step(config, schedule.active(t))
        assert all(y == f(x) for y in config.outputs)


class TestCounterRecovery:
    def test_d_counter_resynchronizes(self):
        n, modulus = 5, 7
        rng = random.Random(3)
        protocol = d_counter_protocol(n, modulus)
        simulator = Simulator(protocol, (0,) * n)
        schedule = SynchronousSchedule(n)
        config = simulator.initial_configuration(
            Labeling.random(protocol.topology, protocol.label_space, rng)
        )
        # stabilize, corrupt, re-stabilize
        for t in range(4 * n + 4):
            config = simulator.step(config, schedule.active(t))
        config = Configuration(
            corrupt(config.labeling, protocol.label_space, rng), config.outputs
        )
        for t in range(4 * n + 4):
            config = simulator.step(config, schedule.active(t))
        # now synchronized again: all equal and incrementing
        previous = config.outputs
        config = simulator.step(config, schedule.active(0))
        assert len(set(previous)) == 1
        assert len(set(config.outputs)) == 1
        assert config.outputs[0] == (previous[0] + 1) % modulus


class TestRingSimulationRecovery:
    def test_tm_on_ring_recovers(self):
        n = 3
        graph = ConfigurationGraph(parity_machine(), n)
        protocol = machine_ring_protocol(graph)
        bound = machine_ring_round_bound(graph)
        rng = random.Random(11)
        for x in ((1, 0, 1), (1, 1, 1)):
            initial = Labeling.random(protocol.topology, protocol.label_space, rng)
            config = run_with_midway_fault(
                protocol, x, initial, fault_at=bound // 2, total=2 * bound, rng=rng
            )
            assert set(config.outputs) == {sum(x) % 2}

    def test_circuit_on_ring_recovers(self):
        circuit = parity_circuit(3)
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        rng = random.Random(13)
        x = (1, 0, 1)
        inputs = ring_inputs(layout, x)
        initial = Labeling.random(protocol.topology, protocol.label_space, rng)
        config = run_with_midway_fault(
            protocol,
            inputs,
            initial,
            fault_at=layout.round_bound() // 2,
            total=layout.round_bound() // 2 + layout.round_bound(),
            rng=rng,
        )
        # verify via the settled-outputs criterion from the reached state
        outputs = settled_outputs(
            protocol,
            inputs,
            config.labeling,
            settle=layout.round_bound(),
            window=layout.modulus,
        )
        assert set(outputs) == {circuit.evaluate(x)}


class TestBGPRecovery:
    def test_good_gadget_reconverges(self):
        instance = good_gadget()
        protocol = bgp_protocol(instance)
        rng = random.Random(17)
        initial = Labeling.uniform(protocol.topology, NO_ROUTE)
        config = run_with_midway_fault(
            protocol,
            default_inputs(protocol),
            initial,
            fault_at=5,
            total=25,
            rng=rng,
        )
        assert config.outputs[1] == (1, 0)
        # and the reached labeling is a true fixed point
        report = Simulator(protocol, default_inputs(protocol)).run(
            config.labeling, SynchronousSchedule(protocol.n)
        )
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.label_rounds == 0
