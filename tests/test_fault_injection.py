"""Transient-fault injection: the operational meaning of self-stabilization.

The paper (Section 1.2): a self-stabilizing system recovers from *any*
transient fault, provided code and inputs stay intact.  These tests corrupt
the edge labels mid-run — arbitrarily, repeatedly — through the
``repro.faults`` subsystem and verify that every self-stabilizing
construction in the library re-converges to the correct state afterwards:

* the generic protocol (Prop 2.3) re-computes f;
* the D-counter re-synchronizes;
* the TM-on-ring protocol re-stabilizes to M(x);
* the circuit-on-ring protocol re-stabilizes to C(x);
* BGP on a safe instance re-converges to its unique routing tree.

Recovery is certified by the engine (cycle detection / fixed-point
certification on the post-fault tail), not inferred from settled-looking
outputs.
"""

import random

import pytest

from repro.core import (
    ExplicitSchedule,
    Labeling,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
)
from repro.dynamics import NO_ROUTE, bgp_protocol, good_gadget
from repro.faults import BurstFault, OneShotFault, RandomCorruption
from repro.graphs import clique
from repro.power import (
    RingCircuitLayout,
    circuit_ring_protocol,
    d_counter_protocol,
    generic_protocol,
    machine_ring_protocol,
    machine_ring_round_bound,
    ring_inputs,
)
from repro.substrates.circuits import parity_circuit
from repro.substrates.turing import ConfigurationGraph, parity_machine


class TestGenericProtocolRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recomputes_after_corruption(self, seed):
        rng = random.Random(seed)
        topology = clique(4)
        f = lambda bits: (bits[0] ^ bits[2]) | bits[3]  # noqa: E731
        protocol = generic_protocol(topology, f)
        x = tuple(rng.randrange(2) for _ in range(4))
        initial = Labeling.random(topology, protocol.label_space, rng)
        simulator = Simulator(protocol, x)
        report = simulator.run_with_faults(
            initial,
            SynchronousSchedule(4),
            OneShotFault(9, RandomCorruption(fraction=0.5, seed=seed)),
            max_steps=9 + 2 * 4 + 2,
        )
        assert report.faults_fired == 1
        assert report.recovered
        assert all(y == f(x) for y in report.outputs)
        # recovery happened within the paper's 2n+2 round bound
        assert report.recovery_rounds <= 2 * 4 + 2

    def test_repeated_faults(self):
        rng = random.Random(7)
        topology = clique(3)
        f = lambda bits: bits[0] & bits[1]  # noqa: E731
        protocol = generic_protocol(topology, f)
        x = (1, 1, 0)
        simulator = Simulator(protocol, x)
        initial = Labeling.random(topology, protocol.label_space, rng)
        # corrupt at t=0, then twice more mid-run, 8 steps apart
        faults = BurstFault([0, 8, 16], RandomCorruption(fraction=0.5, seed=7))
        report = simulator.run_with_faults(
            initial, SynchronousSchedule(3), faults, max_steps=16 + 8
        )
        assert report.faults_fired == 3
        assert report.last_fault_time == 16
        assert report.recovered
        assert all(y == f(x) for y in report.outputs)


class TestCounterRecovery:
    def test_d_counter_resynchronizes(self):
        n, modulus = 5, 7
        rng = random.Random(3)
        protocol = d_counter_protocol(n, modulus)
        simulator = Simulator(protocol, (0,) * n)
        initial = Labeling.random(protocol.topology, protocol.label_space, rng)
        # stabilize, corrupt at 4n+4, let the engine certify the new orbit
        report = simulator.run_with_faults(
            initial,
            SynchronousSchedule(n),
            OneShotFault(4 * n + 4, RandomCorruption(fraction=0.5, seed=3)),
            max_steps=600,
        )
        # the counter never label-stabilizes — it re-enters a counting cycle
        assert report.outcome is RunOutcome.OSCILLATING
        assert report.recovery_rounds is None
        assert report.cycle_start is not None
        # now synchronized again: all equal and incrementing
        config = report.final
        previous = config.outputs
        config = simulator.step(config, frozenset(range(n)))
        assert len(set(previous)) == 1
        assert len(set(config.outputs)) == 1
        assert config.outputs[0] == (previous[0] + 1) % modulus


class TestRingSimulationRecovery:
    def test_tm_on_ring_recovers(self):
        n = 3
        graph = ConfigurationGraph(parity_machine(), n)
        protocol = machine_ring_protocol(graph)
        bound = machine_ring_round_bound(graph)
        rng = random.Random(11)
        for fault_seed, x in enumerate(((1, 0, 1), (1, 1, 1))):
            initial = Labeling.random(protocol.topology, protocol.label_space, rng)
            report = Simulator(protocol, x).run_with_faults(
                initial,
                SynchronousSchedule(n),
                OneShotFault(bound // 2, RandomCorruption(0.5, seed=fault_seed)),
                max_steps=3 * bound,
            )
            assert report.output_recovered
            assert set(report.outputs) == {sum(x) % 2}
            assert report.output_recovery_rounds <= bound

    def test_circuit_on_ring_recovers(self):
        circuit = parity_circuit(3)
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        rng = random.Random(13)
        x = (1, 0, 1)
        inputs = ring_inputs(layout, x)
        initial = Labeling.random(protocol.topology, protocol.label_space, rng)
        report = Simulator(protocol, inputs).run_with_faults(
            initial,
            SynchronousSchedule(protocol.n),
            OneShotFault(layout.round_bound() // 2, RandomCorruption(0.5, seed=13)),
            max_steps=3 * layout.round_bound(),
        )
        # the ring's labels cycle mod the layout modulus; outputs settle
        assert report.output_recovered
        assert set(report.outputs) == {circuit.evaluate(x)}


class TestBGPRecovery:
    def test_good_gadget_reconverges(self):
        instance = good_gadget()
        protocol = bgp_protocol(instance)
        initial = Labeling.uniform(protocol.topology, NO_ROUTE)
        simulator = Simulator(protocol, default_inputs(protocol))
        report = simulator.run_with_faults(
            initial,
            SynchronousSchedule(protocol.n),
            OneShotFault(5, RandomCorruption(fraction=0.5, seed=17)),
            max_steps=25,
        )
        assert report.outputs[1] == (1, 0)
        # and the reached labeling is a certified, true fixed point
        assert report.recovered
        assert simulator.compiled.is_fixed_point(
            report.final.labeling.values, simulator.inputs
        )


class TestFiniteScheduleExhaustion:
    """Regression: a fault scheduled past the end of a finite
    ``ExplicitSchedule(..., cycle=False)`` used to leak a ``ScheduleError``
    out of ``run_with_faults`` mid-window; the injector now ends the run
    with ``SCHEDULE_EXHAUSTED``, exactly like ``Simulator.run``."""

    def _ring(self):
        from tests.helpers import copy_ring_protocol

        protocol = copy_ring_protocol(3)
        return protocol, Simulator(protocol, (0,) * 3)

    def test_fault_past_schedule_end_is_graceful(self):
        protocol, simulator = self._ring()
        labeling = Labeling(protocol.topology, (1, 0, 0))
        schedule = ExplicitSchedule(3, [{0, 1, 2}] * 4, cycle=False)
        report = simulator.run_with_faults(
            labeling,
            schedule,
            OneShotFault(6, RandomCorruption(fraction=0.5, seed=1)),
            max_steps=100,
        )
        assert report.outcome is RunOutcome.SCHEDULE_EXHAUSTED
        assert report.faults_fired == 0  # the fire time was never reached
        assert report.steps_executed == 4
        assert report.recovery_rounds is None
        assert not report.recovered

    def test_exhaustion_after_the_last_fault_is_graceful_too(self):
        protocol, simulator = self._ring()
        labeling = Labeling(protocol.topology, (1, 0, 0))
        schedule = ExplicitSchedule(3, [{0, 1, 2}] * 4, cycle=False)
        report = simulator.run_with_faults(
            labeling,
            schedule,
            OneShotFault(2, RandomCorruption(fraction=0.5, seed=1)),
            max_steps=100,
        )
        # the tail run (shifted schedule) hits the end instead
        assert report.outcome is RunOutcome.SCHEDULE_EXHAUSTED
        assert report.faults_fired == 1
        assert report.last_fault_time == 2
        assert report.steps_executed == 4
