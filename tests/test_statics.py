"""The static statelessness verifier and the repo-invariant lint gate.

Three layers of evidence that :mod:`repro.statics` tells the truth:

* **Adversarial reactions** — every known way to smuggle hidden state
  (self-writes, nonlocal counters, mutable defaults, RNG draws, clocks,
  environment reads) must classify ``STATEFUL``; a single false-``PURE``
  here means the verifier rubber-stamps the exact violations it exists to
  catch.
* **Golden verdicts** (``tests/fixtures/golden_statics.json``): the
  protocol zoo's verdicts are committed, mirroring the golden-fingerprint
  fixtures, so verifier drift fails loudly rather than silently
  reclassifying the corpus.
* **Predicted-vs-actual lift partitions** — a hypothesis property test
  that :func:`repro.statics.verify_protocol`'s predicted batch fallback
  set equals what the assembled :class:`~repro.core.batch.BatchSimulator`
  actually reports, across random protocols and table budgets.
"""

from __future__ import annotations

import json
import random
import time
from itertools import product
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StatelessProtocol
from repro.core.labels import ExplicitLabelSpace, binary
from repro.core.reaction import TabularReaction, UniformReaction
from repro.exceptions import Diagnostic, ValidationError
from repro.graphs import unidirectional_ring
from repro.graphs.standard import clique
from repro.statics import (
    Purity,
    lint_paths,
    lint_source,
    verify_protocol,
    verify_protocol_purity,
    verify_reaction,
)
from tests.test_service_fingerprint import _zoo_protocols

np = pytest.importorskip("numpy")
from repro.core.batch import BatchSimulator  # noqa: E402 - needs numpy

FIXTURE = Path(__file__).parent / "fixtures" / "golden_statics.json"
SRC = Path(__file__).parent.parent / "src"


# -- adversarial reactions ----------------------------------------------------
#
# Module-level (not nested in test bodies) so ``inspect.getsource`` sees
# real files; reactions defined in a REPL would come back UNKNOWN instead.


class _SelfWriter:
    def __call__(self, labels, x):
        self.count = getattr(self, "count", 0) + 1
        return labels, self.count


def _nonlocal_counter():
    n = 0

    def react(labels, x):
        nonlocal n
        n += 1
        return labels, n

    return react


def _global_writer(labels, x):
    global _SOME_GLOBAL
    _SOME_GLOBAL = x
    return labels, x


def _mutable_default(labels, x, acc=[]):  # noqa: B006 - the point of the test
    acc.append(x)
    return labels, len(acc)


def _unseeded_rng(labels, x):
    return labels, random.random()


def _wall_clock(labels, x):
    return labels, time.time()


def _environ_reader(labels, x):
    import os

    return labels, os.environ.get("HOME")


_MODULE_RNG = random.Random(7)


def _rng_through_global(labels, x):
    return labels, _MODULE_RNG.random()


def _rng_in_closure():
    rng = random.Random(3)

    def react(labels, x):
        return labels, rng.random()

    return react


def _numpy_global_rng(labels, x):
    import numpy

    return labels, numpy.random.rand()


def _cell_mutator():
    seen = []

    def react(labels, x):
        seen.append(x)
        return labels, len(seen)

    return react


def _pure_table_closure():
    table = {0: 1, 1: 0}

    def react(labels, x):
        return tuple(table[value] for value in labels), x

    return react


STATEFUL_REACTIONS = [
    ("self-write", _SelfWriter(), "purity/self-write"),
    ("nonlocal-counter", _nonlocal_counter(), "purity/nonlocal-write"),
    ("global-write", _global_writer, "purity/global-write"),
    ("mutable-default", _mutable_default, "purity/mutable-default"),
    ("unseeded-rng", _unseeded_rng, "purity/unseeded-rng"),
    ("wall-clock", _wall_clock, "purity/wall-clock"),
    ("environ-read", _environ_reader, "purity/environ-read"),
    ("rng-global", _rng_through_global, "purity/rng-state"),
    ("rng-closure", _rng_in_closure(), "purity/rng-state"),
    ("numpy-global-rng", _numpy_global_rng, "purity/unseeded-rng"),
    ("cell-mutator", _cell_mutator(), "purity/closure-mutation"),
]


class TestAdversarialReactions:
    """Zero false-PURE on known-stateful reactions — the hard guarantee."""

    @pytest.mark.parametrize(
        "reaction,rule",
        [(fn, rule) for _, fn, rule in STATEFUL_REACTIONS],
        ids=[name for name, _, __ in STATEFUL_REACTIONS],
    )
    def test_classifies_stateful_with_the_right_rule(self, reaction, rule):
        verdict = verify_reaction(reaction)
        assert verdict.verdict is Purity.STATEFUL
        assert rule in {d.rule for d in verdict.diagnostics}

    @pytest.mark.parametrize(
        "reaction",
        [fn for _, fn, __ in STATEFUL_REACTIONS],
        ids=[name for name, _, __ in STATEFUL_REACTIONS],
    )
    def test_diagnostics_carry_source_locations(self, reaction):
        verdict = verify_reaction(reaction)
        located = [d for d in verdict.errors if d.path and d.line]
        assert located, "stateful evidence must point at source"
        assert all(d.path.endswith("test_statics.py") for d in located)

    def test_pure_closure_stays_pure(self):
        verdict = verify_reaction(_pure_table_closure())
        assert verdict.verdict is Purity.PURE
        # The read-only mutable cell is advisory, never demoting.
        assert {d.severity for d in verdict.diagnostics} <= {"info"}

    def test_unknown_when_source_is_unavailable(self):
        verdict = verify_reaction(len)  # a C builtin: nothing to parse
        assert verdict.verdict is Purity.UNKNOWN


class TestProtocolCrossCheck:
    """Verdicts are cross-checked against the declared ``is_stateful``."""

    def test_hidden_state_in_stateless_protocol_is_an_error(self):
        topology = unidirectional_ring(3)
        reactions = [
            UniformReaction(topology.out_edges(i), _nonlocal_counter())
            for i in range(3)
        ]
        protocol = StatelessProtocol(topology, binary(), reactions)
        report = verify_protocol_purity(protocol)
        assert not report.ok
        assert all(v.verdict is Purity.STATEFUL for v in report.verdicts)
        assert {"purity/undeclared-state"} <= {d.rule for d in report.errors}

    def test_declared_stateful_protocol_is_stateful_by_declaration(self):
        from repro.hardness.stateful_reduction import stateful_protocol_from_g
        from repro.hardness.string_oscillation import HALT

        def always_halt(strings):
            return HALT

        protocol = stateful_protocol_from_g(always_halt, ("a", "b"), 2)
        report = verify_protocol_purity(protocol)
        assert report.declared_stateful
        assert all(v.verdict is Purity.STATEFUL for v in report.verdicts)
        # Declared statefulness is the contract, not a contradiction.
        assert report.ok

    def test_metanode_compilation_is_pure(self):
        from repro.hardness.stateful_reduction import (
            metanode_compile,
            stateful_protocol_from_g,
        )
        from repro.hardness.string_oscillation import HALT

        def always_halt(strings):
            return HALT

        stateful = stateful_protocol_from_g(always_halt, ("a", "b"), 2)
        stateless = metanode_compile(stateful)
        report = verify_protocol_purity(stateless)
        assert all(v.verdict is Purity.PURE for v in report.verdicts)

    def test_report_records_are_json_able(self):
        report = verify_protocol_purity(_zoo_protocols()["example1_clique_n4"])
        json.dumps(report.record())


class TestGoldenStatics:
    """Committed zoo verdicts — verifier drift must fail loudly."""

    def _built(self) -> dict:
        from repro.hardness.stateful_reduction import stateful_protocol_from_g
        from repro.hardness.string_oscillation import always_halt

        protocols = dict(_zoo_protocols())
        protocols["stateful_always_halt_ab_m2"] = stateful_protocol_from_g(
            always_halt, ("a", "b"), 2
        )
        built = {}
        for name, protocol in sorted(protocols.items()):
            report = verify_protocol_purity(protocol)
            built[name] = {
                "declared_stateful": report.declared_stateful,
                "verdicts": [v.verdict.value for v in report.verdicts],
            }
        return built

    def test_zoo_matches_golden(self):
        golden = json.loads(FIXTURE.read_text())
        assert self._built() == golden["protocols"]

    def test_no_false_pure_against_runtime_flag(self):
        # Any reaction of a declared-stateful protocol claiming PURE would
        # mean the verifier contradicts the runtime model.
        golden = json.loads(FIXTURE.read_text())
        for entry in golden["protocols"].values():
            if entry["declared_stateful"]:
                assert all(v == "stateful" for v in entry["verdicts"])


class TestDiagnosticRecord:
    def test_severity_is_validated(self):
        with pytest.raises(ValidationError):
            Diagnostic(rule="x/y", severity="fatal", message="nope")

    def test_describe_and_location(self):
        diagnostic = Diagnostic(
            rule="purity/self-write",
            severity="error",
            message="writes self.count",
            path="module.py",
            line=12,
        )
        assert diagnostic.location == "module.py:12"
        assert "purity/self-write" in diagnostic.describe()
        assert diagnostic.record()["line"] == 12


# -- repo-invariant lint ------------------------------------------------------


class TestLintRules:
    def test_unset_default_requires_policy_parameter(self):
        source = (
            "def run(protocol, *, processes=UNSET):\n"
            "    return protocol\n"
        )
        rules = {d.rule for d in lint_source(source, "api.py")}
        assert "lint/policy-parameter" in rules

    def test_unset_default_with_policy_is_clean(self):
        source = (
            "def run(protocol, *, policy=None, processes=UNSET):\n"
            "    return protocol\n"
        )
        assert not lint_source(source, "api.py")

    def test_internal_legacy_kwarg_is_flagged(self):
        source = "report = run_sweep(protocol, cases, factory, executor='batch')\n"
        diagnostics = lint_source(source, "caller.py")
        assert [d.rule for d in diagnostics] == ["lint/legacy-kwarg"]

    def test_policy_kwarg_is_clean(self):
        source = "report = run_sweep(protocol, cases, factory, policy=policy)\n"
        assert not lint_source(source, "caller.py")

    def test_wall_clock_in_kernel_path_is_flagged(self):
        source = "import time\n\nstart = time.perf_counter()\n"
        diagnostics = lint_source(source, "src/repro/core/engine.py")
        assert [d.rule for d in diagnostics] == ["lint/wall-clock"]

    def test_wall_clock_outside_kernel_paths_is_allowed(self):
        source = "import time\n\nstart = time.perf_counter()\n"
        assert not lint_source(source, "src/repro/service/jobs.py")

    def test_environ_read_in_fingerprint_path_is_flagged(self):
        source = "import os\n\nsalt = os.environ['SALT']\n"
        diagnostics = lint_source(source, "src/repro/service/fingerprint.py")
        assert [d.rule for d in diagnostics] == ["lint/wall-clock"]

    def test_syntax_error_is_reported_not_raised(self):
        diagnostics = lint_source("def broken(:\n", "bad.py")
        assert [d.rule for d in diagnostics] == ["lint/syntax"]


LOCKED_CLASS = """
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}

    def add(self, job):
        with self._lock:
            self._jobs[job.id] = job

    def peek(self, job_id):
        return self._jobs.get(job_id)
"""

WAIVED_CLASS = LOCKED_CLASS.replace(
    "    def peek(self, job_id):\n",
    "    def peek(self, job_id):\n"
    '        """Caller holds the lock."""\n',
)


class TestLockDiscipline:
    def test_guarded_attribute_outside_lock_is_flagged(self):
        diagnostics = lint_source(LOCKED_CLASS, "service.py")
        assert [d.rule for d in diagnostics] == ["lint/lock-discipline"]
        assert "peek" in diagnostics[0].message

    def test_docstring_waiver_suppresses_the_finding(self):
        assert not lint_source(WAIVED_CLASS, "service.py")

    def test_class_without_own_lock_is_skipped(self):
        source = LOCKED_CLASS.replace(
            "        self._lock = threading.Lock()\n", ""
        ).replace("        with self._lock:\n            ", "        ")
        assert not lint_source(source, "service.py")

    def test_init_is_exempt(self):
        source = LOCKED_CLASS.replace(
            "        self._jobs = {}\n",
            "        self._jobs = {}\n        self._jobs['boot'] = None\n",
        )
        diagnostics = lint_source(source, "service.py")
        # Only peek() is flagged; construction precedes sharing.
        assert [d.rule for d in diagnostics] == ["lint/lock-discipline"]


class TestRepoIsClean:
    """`python -m repro.statics src/ --strict` is a CI gate; keep it green."""

    def test_src_tree_passes_the_lint_gate(self):
        diagnostics = lint_paths([SRC])
        assert diagnostics == ()


# -- predicted vs. actual batch partitions ------------------------------------


def _tabular_protocol(n, k, use_clique, seed):
    """A total, in-space TabularReaction protocol: every (node, input=0)
    table exists, so the runtime lift decision is exactly the static gate
    (no escaping labels, no invalid rows)."""
    topology = clique(n) if use_clique else unidirectional_ring(n)
    space = ExplicitLabelSpace(tuple(range(k)))
    rng = random.Random(seed)
    reactions = []
    for i in range(n):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        table = {}
        for combo in product(range(k), repeat=len(in_edges)):
            outgoing = tuple(rng.randrange(k) for _ in out_edges)
            table[(combo, 0)] = (outgoing, rng.randrange(k))
        reactions.append(TabularReaction(in_edges, out_edges, table))
    return StatelessProtocol(
        topology, space, reactions, name=f"tabular({n},{k})"
    )


class TestPredictedPartition:
    @given(
        n=st.integers(2, 5),
        k=st.integers(1, 4),
        use_clique=st.booleans(),
        seed=st.integers(0, 2**16),
        max_table_size=st.sampled_from([1, 2, 4, 16, 64, 256, 1 << 16]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_batch_simulator(
        self, n, k, use_clique, seed, max_table_size
    ):
        protocol = _tabular_protocol(n, k, use_clique, seed)
        predicted = verify_protocol(protocol, max_table_size=max_table_size)
        simulator = BatchSimulator(
            protocol,
            [(0,) * n],
            max_table_size=max_table_size,
            kernel="numpy",
        )
        actual_fallback = set(range(n)) - set(simulator.lifted_nodes)
        assert set(predicted.predicted_fallback) == actual_fallback
        assert set(predicted.predicted_lifted) == set(simulator.lifted_nodes)

    def test_stateful_protocol_predicts_total_fallback(self):
        from repro.hardness.stateful_reduction import stateful_protocol_from_g
        from repro.hardness.string_oscillation import HALT

        def always_halt(strings):
            return HALT

        protocol = stateful_protocol_from_g(always_halt, ("a", "b"), 2)
        predicted = verify_protocol(protocol)
        assert predicted.predicted_lifted == ()
        assert {lift.reason for lift in predicted.lifts} == {"stateful"}
        simulator = BatchSimulator(protocol, [(None,) * protocol.n])
        assert simulator.lifted_nodes == ()

    def test_demotion_reasons_name_the_gate(self):
        protocol = _tabular_protocol(4, 4, True, seed=1)
        # |Sigma|**3 = 64 > 16: per-node table demotion, space still fits.
        predicted = verify_protocol(protocol, max_table_size=16)
        assert {lift.reason for lift in predicted.lifts} == {"table"}
        # Space itself over budget: nothing is enumerated at all.
        predicted = verify_protocol(protocol, max_table_size=2)
        assert {lift.reason for lift in predicted.lifts} == {"space"}
