"""Cross-module integration tests: end-to-end chains through the library.

These exercise multiple subsystems against each other:
* circuit -> ring protocol -> unrolled circuit (Theorem 5.4 round trip);
* TM -> configuration graph -> ring protocol -> diagonal simulation
  (Theorem 5.2 round trip);
* game -> protocol -> model checker -> witness -> engine replay;
* substrates agreement: circuit vs BP vs TM on the same language.
"""

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Labeling,
    RunOutcome,
    Simulator,
    SynchronousSchedule,
    default_inputs,
    minimal_fairness,
)
from repro.dynamics import best_response_protocol, coordination_game
from repro.graphs import clique
from repro.power import (
    bp_ring_protocol,
    bp_ring_round_bound,
    machine_ring_protocol,
    machine_ring_round_bound,
    simulate_unidirectional,
    trivial_flood_protocol,
    unroll_protocol,
)
from repro.stabilization import broadcast_labelings, decide_label_r_stabilizing
from repro.substrates.branching_programs import majority_bp, parity_bp
from repro.substrates.circuits import majority_circuit, parity_circuit
from repro.substrates.turing import ConfigurationGraph, parity_machine


def all_inputs(n):
    return list(product((0, 1), repeat=n))


class TestTheorem52RoundTrip:
    """machine -> ring protocol -> single-label simulation -> same language."""

    def test_parity_round_trip(self):
        n = 4
        graph = ConfigurationGraph(parity_machine(), n)
        protocol = machine_ring_protocol(graph)
        initial = next(iter(protocol.label_space))
        steps = machine_ring_round_bound(graph) + 4 * n
        for x in all_inputs(n):
            direct = parity_machine().run(x)
            engine = Simulator(protocol, x).run(
                Labeling.uniform(protocol.topology, initial),
                SynchronousSchedule(n),
                max_steps=steps + 50,
            )
            diagonal = simulate_unidirectional(protocol, x, initial, steps)
            assert direct == sum(x) % 2
            assert set(engine.outputs) == {direct}
            assert diagonal == direct


class TestSubstrateAgreement:
    """Three machine models computing the same functions must agree."""

    @pytest.mark.parametrize("n", [3, 4])
    def test_parity_everywhere(self, n):
        circuit = parity_circuit(n)
        bp = parity_bp(n)
        machine = parity_machine()
        for x in all_inputs(n):
            expected = sum(x) % 2
            assert circuit.evaluate(x) == expected
            assert bp.evaluate(x) == expected
            assert machine.run(x) == expected

    @pytest.mark.parametrize("n", [3, 5])
    def test_majority_everywhere(self, n):
        circuit = majority_circuit(n)
        bp = majority_bp(n)
        for x in all_inputs(n):
            assert circuit.evaluate(x) == bp.evaluate(x)


class TestBPRingVersusUnrolling:
    """Run a BP on the ring, then unroll that very protocol into a circuit
    and check the circuit agrees with the engine — two directions of
    Theorems 5.2/5.4 composed.  Uses a tiny BP (x0 AND x2) so the unrolled
    circuit stays small."""

    @staticmethod
    def _tiny_bp():
        from repro.substrates.branching_programs import BPNode, BranchingProgram

        # node 0 queries x0: 0 -> reject, 1 -> node 1; node 1 queries x2.
        return BranchingProgram(
            3, [BPNode(var=0, low=2, high=1), BPNode(var=2, low=2, high=3)]
        )

    def test_compose_midflight(self):
        bp = self._tiny_bp()
        protocol = bp_ring_protocol(bp)
        n = 3
        rounds = 10  # not necessarily converged: compare mid-flight outputs
        circuit = unroll_protocol(protocol, rounds, node=1)
        initial = Labeling.uniform(protocol.topology, next(iter(protocol.label_space)))
        for x in all_inputs(n):
            trace = Simulator(protocol, x).run_trace(
                initial, SynchronousSchedule(n), rounds
            )
            engine_output = trace[rounds].outputs[1]
            assert circuit.evaluate(x) == (1 if engine_output else 0)

    def test_unrolled_converged_protocol_computes_bp(self):
        bp = self._tiny_bp()
        protocol = bp_ring_protocol(bp)
        rounds = bp_ring_round_bound(bp) + 3
        circuit = unroll_protocol(protocol, rounds, node=0)
        for x in all_inputs(3):
            assert circuit.evaluate(x) == bp.evaluate(x) == (x[0] & x[2])


class TestGameToWitnessPipeline:
    """game -> protocol -> model check -> witness -> engine replay."""

    def test_coordination_game_witness_replay(self):
        game = coordination_game(clique(3))
        protocol = best_response_protocol(game)
        inputs = default_inputs(protocol)
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing
        witness = verdict.witness
        schedule = witness.to_schedule(protocol.n)
        assert minimal_fairness(schedule, 200) <= 2
        report = Simulator(protocol, inputs).run(
            witness.initial_labeling, schedule, max_steps=3000
        )
        assert report.outcome is RunOutcome.OSCILLATING


class TestTrivialCircuitFloodIntegration:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_flood_distributes_any_input_bit(self, seed):
        from repro.substrates.circuits import CircuitBuilder

        rng = random.Random(seed)
        n = rng.randrange(2, 5)
        target = rng.randrange(n)
        builder = CircuitBuilder(n)
        circuit = builder.build(builder.input(target))
        protocol = trivial_flood_protocol(circuit)
        n_ring = protocol.topology.n
        x = [rng.randrange(2) for _ in range(n)]
        padded = tuple(x + [0] * (n_ring - n))
        report = Simulator(protocol, padded).run(
            Labeling.random(protocol.topology, protocol.label_space, rng),
            SynchronousSchedule(n_ring),
        )
        assert report.label_stable
        assert set(report.outputs) == {x[target]}
