"""Tests for Theorem 5.10 (counting bound) and the exact 2-ring census."""

import pytest

from repro.exceptions import ValidationError
from repro.power import (
    counting_lower_bound,
    functions_count,
    protocol_count_upper_bound,
    smallest_sufficient_label_bits,
    two_ring_census,
)


class TestArithmetic:
    def test_bound_value(self):
        assert counting_lower_bound(16, 2) == 2.0
        assert counting_lower_bound(100, 5) == 5.0

    def test_bound_monotone_in_n(self):
        values = [counting_lower_bound(n, 3) for n in range(9, 30)]
        assert values == sorted(values)

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            counting_lower_bound(0, 3)
        with pytest.raises(ValidationError):
            counting_lower_bound(5, 0)

    def test_functions_count(self):
        assert functions_count(3) == 2**8

    def test_protocol_count_formula(self):
        # n=1, k=1, |Sigma|=2: (2*2)^(2*1*2) = 4^4 = 256
        assert protocol_count_upper_bound(1, 1, 2) == 256

    def test_proof_inequality_direction(self):
        # With L below the bound, there are fewer protocols than functions.
        n, k = 16, 2
        bound_bits = counting_lower_bound(n, k)  # = 2 bits
        small_sigma = 2 ** max(int(bound_bits) - 2, 0)
        import math

        protocols_log2 = (
            2 * n * small_sigma**k * math.log2(2 * small_sigma**k)
        )
        assert protocols_log2 < 2**n

    def test_smallest_sufficient_bits_reasonable(self):
        # The sufficient label size is at least the lower bound / slack and
        # grows with n.
        for n in (10, 14, 18):
            bits = smallest_sufficient_label_bits(n, 2)
            assert bits >= 1
        assert smallest_sufficient_label_bits(18, 2) >= smallest_sufficient_label_bits(
            10, 2
        )


class TestTwoRingCensus:
    def test_single_label_census_only_constants(self):
        """With |Sigma| = 1 the ring carries no information: a node's output
        depends only on its own input, so only constant functions compute."""
        census = two_ring_census(1)
        computable = {truth for truth, ok in census.items() if ok}
        assert computable == {(0, 0, 0, 0), (1, 1, 1, 1)}

    def test_census_covers_all_truth_tables(self):
        census = two_ring_census(1)
        assert len(census) == 16

    def test_binary_census_includes_and_xor(self):
        census = two_ring_census(2)
        # f = (f(0,0), f(0,1), f(1,0), f(1,1))
        and_truth = (0, 0, 0, 1)
        xor_truth = (0, 1, 1, 0)
        assert census[and_truth]
        assert census[xor_truth]

    def test_binary_census_superset_of_unary(self):
        unary = {t for t, ok in two_ring_census(1).items() if ok}
        binary_census = {t for t, ok in two_ring_census(2).items() if ok}
        assert unary <= binary_census
        assert len(binary_census) > len(unary)
