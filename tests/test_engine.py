"""Unit and property tests for the simulation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitSchedule,
    Labeling,
    LambdaReaction,
    RandomRFairSchedule,
    RoundRobinSchedule,
    RunOutcome,
    Schedule,
    Simulator,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
    synchronous_run,
)
from repro.exceptions import ValidationError
from repro.graphs import clique, unidirectional_ring

from tests.helpers import (
    constant_protocol,
    copy_ring_protocol,
    or_clique_protocol,
    random_bit_labeling,
)


class TestStep:
    def test_only_active_nodes_update(self):
        proto = constant_protocol(unidirectional_ring(3), label=1)
        sim = Simulator(proto, (0, 0, 0))
        config = sim.initial_configuration(Labeling.uniform(proto.topology, 0))
        nxt = sim.step(config, frozenset({0}))
        assert nxt.labeling[(0, 1)] == 1
        assert nxt.labeling[(1, 2)] == 0
        assert nxt.outputs == (1, None, None)

    def test_activated_nodes_read_previous_labeling(self):
        # Synchronous step of the copy ring rotates the labeling by one hop.
        proto = copy_ring_protocol(4)
        sim = Simulator(proto, (0,) * 4)
        values = (1, 0, 0, 0)  # edge (0,1) carries 1
        config = sim.initial_configuration(Labeling(proto.topology, values))
        nxt = sim.step(config, frozenset(range(4)))
        assert nxt.labeling.values == (0, 1, 0, 0)

    def test_reaction_must_label_all_out_edges(self):
        topo = unidirectional_ring(3)

        def bad(incoming, x):
            return {}, 0

        proto = StatelessProtocol(topo, binary(), [LambdaReaction(bad)] * 3)
        sim = Simulator(proto, (0, 0, 0))
        config = sim.initial_configuration(Labeling.uniform(topo, 0))
        with pytest.raises(ValidationError):
            sim.step(config, frozenset({0}))

    def test_input_arity_checked(self):
        proto = constant_protocol(unidirectional_ring(3))
        with pytest.raises(ValidationError):
            Simulator(proto, (0, 0))


class TestPeriodicRuns:
    def test_constant_protocol_label_stabilizes_immediately(self):
        proto = constant_protocol(unidirectional_ring(4), label=0)
        report = synchronous_run(proto, (0,) * 4, Labeling.uniform(proto.topology, 0))
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.label_rounds == 0
        assert report.output_rounds == 1  # outputs settle at the first step

    def test_copy_ring_oscillates_from_mixed_labeling(self):
        proto = copy_ring_protocol(4)
        labeling = Labeling(proto.topology, (1, 0, 0, 0))
        report = synchronous_run(proto, (0,) * 4, labeling)
        # The single 1 rotates forever: labels and outputs both cycle.
        assert report.outcome is RunOutcome.OSCILLATING
        assert report.cycle_length == 4

    def test_copy_ring_stable_from_uniform_labeling(self):
        proto = copy_ring_protocol(4)
        report = synchronous_run(proto, (0,) * 4, Labeling.uniform(proto.topology, 1))
        assert report.outcome is RunOutcome.LABEL_STABLE

    def test_output_stable_without_label_stable(self):
        # Node outputs constant 0 but labels rotate: output stabilization only.
        topo = unidirectional_ring(3)

        def rotate_out_zero(i):
            def fn(incoming, x):
                (value,) = incoming.values()
                return value, 0

            return UniformReaction(topo.out_edges(i), fn)

        proto = StatelessProtocol(
            topo, binary(), [rotate_out_zero(i) for i in range(3)]
        )
        labeling = Labeling(topo, (1, 0, 0))
        report = synchronous_run(proto, (0,) * 3, labeling)
        assert report.outcome is RunOutcome.OUTPUT_STABLE
        assert report.outputs == (0, 0, 0)

    def test_round_robin_runs_use_phase(self):
        proto = or_clique_protocol(clique(3))
        sim = Simulator(proto, (0,) * 3)
        report = sim.run(Labeling.uniform(proto.topology, 1), RoundRobinSchedule(3))
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.outputs == (1, 1, 1)

    def test_label_rounds_counts_last_change(self):
        proto = or_clique_protocol(clique(3))
        sim = Simulator(proto, (0,) * 3)
        # one token: converges to all-ones under the synchronous schedule
        values = tuple(1 if u == 0 else 0 for (u, _) in proto.topology.edges)
        report = sim.run(Labeling(proto.topology, values), SynchronousSchedule(3))
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.label_rounds == 2
        final = report.final.labeling
        assert all(final[e] == 1 for e in proto.topology.edges)

    def test_trace_recording(self):
        proto = constant_protocol(unidirectional_ring(3))
        sim = Simulator(proto, (0,) * 3)
        report = sim.run(
            Labeling.uniform(proto.topology, 1),
            SynchronousSchedule(3),
            record_trace=True,
        )
        assert report.trace is not None
        assert report.trace[0].labeling == Labeling.uniform(proto.topology, 1)

    def test_timeout(self):
        proto = copy_ring_protocol(4)
        labeling = Labeling(proto.topology, (1, 0, 0, 0))
        sim = Simulator(proto, (0,) * 4)
        report = sim.run(labeling, SynchronousSchedule(4), max_steps=2)
        assert report.outcome is RunOutcome.TIMEOUT


class TestAperiodicRuns:
    def test_certifies_stability_via_witnessed_fixed_point(self):
        proto = or_clique_protocol(clique(4))
        sim = Simulator(proto, (0,) * 4)
        report = sim.run(
            random_bit_labeling(proto.topology, seed=5),
            RandomRFairSchedule(4, r=3, seed=11),
        )
        assert report.outcome is RunOutcome.LABEL_STABLE
        outputs = set(report.outputs)
        assert outputs == {0} or outputs == {1}

    def test_timeout_when_oscillating(self):
        proto = copy_ring_protocol(3)
        labeling = Labeling(proto.topology, (1, 0, 0))
        sim = Simulator(proto, (0,) * 3)
        report = sim.run(labeling, RandomRFairSchedule(3, r=1, seed=0), max_steps=200)
        assert report.outcome is RunOutcome.TIMEOUT

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_runs_deterministic_for_fixed_seed(self, seed):
        proto = or_clique_protocol(clique(3))
        sim = Simulator(proto, (0,) * 3)
        labeling = random_bit_labeling(proto.topology, seed=seed)
        a = sim.run(labeling, RandomRFairSchedule(3, r=2, seed=seed))
        b = sim.run(labeling, RandomRFairSchedule(3, r=2, seed=seed))
        assert a.outcome == b.outcome
        assert a.final == b.final


class _ScriptedAperiodicSchedule(Schedule):
    """Explicit activation sets with ``period = None``.

    Forces the engine down the aperiodic certification path (an
    ``ExplicitSchedule`` with ``cycle=False`` would raise past its script;
    this one repeats its last step forever, and — unlike public schedules —
    may script *empty* activation sets to probe the witness logic).
    """

    def __init__(self, n, steps):
        super().__init__(n)
        self._steps = [frozenset(step) for step in steps]

    def active(self, t):
        if t < len(self._steps):
            return self._steps[t]
        return self._steps[-1]


class TestAperiodicCertification:
    def test_activation_at_change_step_is_not_a_witness(self):
        # clique(2): edges ((0,1), (1,0)).  Initial labeling 1 on (0,1), 0 on
        # (1,0).  Step 0 activates node 0, whose incoming edge (1,0) carries
        # 0, so it broadcasts 0 and the labeling *changes* to all-zero.  That
        # activation reacted to a pre-fixed-point labeling and must not count
        # as a fixed-point witness: certification needs the later quiet
        # activations of both nodes (steps 1 and 2), so the run takes 3 steps.
        proto = or_clique_protocol(clique(2))
        sim = Simulator(proto, (0, 0))
        labeling = Labeling(proto.topology, (1, 0))
        schedule = _ScriptedAperiodicSchedule(2, [{0}, {1}, {0}])
        report = sim.run(labeling, schedule, max_steps=50)
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.steps_executed == 3  # not 2: step-0 witness discarded
        assert report.label_rounds == 1
        assert report.final.labeling.values == (0, 0)

    def test_empty_activation_set_does_not_advance_witnesses(self):
        # Steps that activate nobody leave the labeling unchanged but must
        # not contribute witnesses; only the two real activations certify.
        proto = or_clique_protocol(clique(2))
        sim = Simulator(proto, (0, 0))
        labeling = Labeling.uniform(proto.topology, 0)  # already a fixed point
        schedule = _ScriptedAperiodicSchedule(2, [set(), set(), {0}, set(), {1}])
        report = sim.run(labeling, schedule, max_steps=50)
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.steps_executed == 5  # certified only once node 1 acted
        assert report.label_rounds == 0

    def test_all_empty_schedule_times_out_without_certifying(self):
        proto = or_clique_protocol(clique(2))
        sim = Simulator(proto, (0, 0))
        labeling = Labeling.uniform(proto.topology, 0)
        schedule = _ScriptedAperiodicSchedule(2, [set()])
        report = sim.run(labeling, schedule, max_steps=20)
        assert report.outcome is RunOutcome.TIMEOUT
        assert report.steps_executed == 20


class TestScheduleExhaustion:
    """Regression: a finite ``ExplicitSchedule(..., cycle=False)`` used to
    leak a ``ScheduleError`` out of ``Simulator.run`` once the script ran
    out mid-run; the engine now ends the run with ``SCHEDULE_EXHAUSTED``."""

    def test_exhausted_schedule_ends_gracefully(self):
        proto = copy_ring_protocol(3)
        labeling = Labeling(proto.topology, (1, 0, 0))  # rotates forever
        sim = Simulator(proto, (0,) * 3)
        schedule = ExplicitSchedule(3, [{0, 1, 2}] * 4, cycle=False)
        report = sim.run(labeling, schedule, max_steps=100)
        assert report.outcome is RunOutcome.SCHEDULE_EXHAUSTED
        assert report.steps_executed == 4
        assert report.label_rounds is None
        # the final configuration reflects all four executed steps: the
        # token rotated one edge per step, 4 mod 3 = 1 edges in total
        assert report.final.labeling.values == (0, 1, 0)

    def test_certification_before_exhaustion_still_wins(self):
        proto = or_clique_protocol(clique(2))
        sim = Simulator(proto, (0, 0))
        labeling = Labeling.uniform(proto.topology, 0)  # already a fixed point
        schedule = ExplicitSchedule(2, [{0}, {1}, {0}], cycle=False)
        report = sim.run(labeling, schedule, max_steps=100)
        assert report.outcome is RunOutcome.LABEL_STABLE
        assert report.steps_executed == 2  # certified before the script ran out

    def test_exhausted_run_records_trace(self):
        proto = copy_ring_protocol(3)
        labeling = Labeling(proto.topology, (1, 0, 0))
        sim = Simulator(proto, (0,) * 3)
        schedule = ExplicitSchedule(3, [{0, 1, 2}] * 2, cycle=False)
        report = sim.run(labeling, schedule, max_steps=100, record_trace=True)
        assert report.outcome is RunOutcome.SCHEDULE_EXHAUSTED
        assert report.trace is not None
        assert len(report.trace) == 3  # initial configuration + 2 steps

    def test_max_steps_before_exhaustion_is_timeout(self):
        proto = copy_ring_protocol(3)
        labeling = Labeling(proto.topology, (1, 0, 0))
        sim = Simulator(proto, (0,) * 3)
        schedule = ExplicitSchedule(3, [{0, 1, 2}] * 10, cycle=False)
        report = sim.run(labeling, schedule, max_steps=5)
        assert report.outcome is RunOutcome.TIMEOUT
        assert report.steps_executed == 5


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_synchronous_trace_reproducible(self, seed):
        proto = or_clique_protocol(clique(3))
        sim = Simulator(proto, (0,) * 3)
        labeling = random_bit_labeling(proto.topology, seed=seed)
        t1 = sim.run_trace(labeling, SynchronousSchedule(3), steps=10)
        t2 = sim.run_trace(labeling, SynchronousSchedule(3), steps=10)
        assert t1 == t2
