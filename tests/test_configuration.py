"""Unit tests for Labeling and Configuration."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import BitStrings, Configuration, Labeling, binary
from repro.exceptions import ValidationError
from repro.graphs import bidirectional_ring, unidirectional_ring


class TestLabeling:
    def test_uniform(self):
        topo = unidirectional_ring(4)
        labeling = Labeling.uniform(topo, 7)
        assert all(labeling[edge] == 7 for edge in topo.edges)

    def test_from_dict_roundtrip(self):
        topo = unidirectional_ring(3)
        mapping = {(0, 1): "a", (1, 2): "b", (2, 0): "c"}
        labeling = Labeling.from_dict(topo, mapping)
        assert labeling.as_dict() == mapping

    def test_from_dict_requires_every_edge(self):
        topo = unidirectional_ring(3)
        with pytest.raises(ValidationError):
            Labeling.from_dict(topo, {(0, 1): "a"})

    def test_wrong_arity_rejected(self):
        topo = unidirectional_ring(3)
        with pytest.raises(ValidationError):
            Labeling(topo, (1, 2))

    def test_incoming_outgoing_views(self):
        topo = bidirectional_ring(3)
        labeling = Labeling(topo, tuple(range(topo.m)))
        incoming = labeling.incoming(0)
        assert set(incoming) == {(1, 0), (2, 0)}
        outgoing = labeling.outgoing(0)
        assert set(outgoing) == {(0, 1), (0, 2)}

    def test_replace_creates_new_object(self):
        topo = unidirectional_ring(3)
        labeling = Labeling.uniform(topo, 0)
        updated = labeling.replace({(0, 1): 9})
        assert labeling[(0, 1)] == 0
        assert updated[(0, 1)] == 9
        assert updated[(1, 2)] == 0

    def test_equality_and_hash(self):
        topo = unidirectional_ring(3)
        a = Labeling.uniform(topo, 1)
        b = Labeling.uniform(topo, 1)
        c = Labeling.uniform(topo, 0)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_equality_across_equal_distinct_topologies(self):
        # Regression: __eq__ used to require the *same* Topology object, so
        # structurally equal labelings on equal-but-distinct topologies
        # silently compared unequal.
        a = Labeling.uniform(unidirectional_ring(3), 1)
        b = Labeling.uniform(unidirectional_ring(3), 1)
        assert a.topology is not b.topology
        assert a == b
        assert hash(a) == hash(b)
        assert Configuration(a, (0, 0, 0)) == Configuration(b, (0, 0, 0))

    def test_equal_values_on_different_topologies_not_equal(self):
        ring = Labeling.uniform(unidirectional_ring(3), 1)
        other = Labeling(
            bidirectional_ring(3), (1,) * bidirectional_ring(3).m
        )
        assert ring != other
        # Same node/edge counts but different edges must also stay distinct.
        topo = unidirectional_ring(3)
        from repro.graphs import Topology

        reversed_ring = Topology(3, [(1, 0), (2, 1), (0, 2)])
        assert Labeling.uniform(topo, 1) != Labeling.uniform(reversed_ring, 1)

    def test_random_respects_space(self):
        topo = bidirectional_ring(5)
        space = BitStrings(3)
        labeling = Labeling.random(topo, space, random.Random(0))
        labeling.validate(space)

    def test_validate_rejects_foreign_labels(self):
        topo = unidirectional_ring(3)
        labeling = Labeling.uniform(topo, 5)
        with pytest.raises(ValidationError):
            labeling.validate(binary())

    @given(st.integers(min_value=2, max_value=8), st.integers())
    def test_random_labeling_deterministic_per_seed(self, n, seed):
        topo = unidirectional_ring(n)
        a = Labeling.random(topo, binary(), random.Random(seed))
        b = Labeling.random(topo, binary(), random.Random(seed))
        assert a == b


class TestConfiguration:
    def test_requires_output_per_node(self):
        topo = unidirectional_ring(3)
        labeling = Labeling.uniform(topo, 0)
        with pytest.raises(ValidationError):
            Configuration(labeling, (0, 1))

    def test_equality_and_hash(self):
        topo = unidirectional_ring(3)
        labeling = Labeling.uniform(topo, 0)
        a = Configuration(labeling, (0, 0, 1))
        b = Configuration(labeling, (0, 0, 1))
        c = Configuration(labeling, (1, 0, 1))
        assert a == b and hash(a) == hash(b)
        assert a != c
