"""Tests for the measurement/reporting toolkit."""

import pytest

from repro.analysis import (
    measure_round_complexity,
    output_settle_time,
    print_table,
    render_table,
    settled_outputs,
)
from repro.core import Labeling, default_inputs
from repro.exceptions import ConvergenceError
from repro.graphs import clique
from repro.stabilization import example1_protocol, one_token_labeling

from tests.helpers import copy_ring_protocol, or_clique_protocol


class TestSettledOutputs:
    def test_converging_protocol_settles(self):
        protocol = or_clique_protocol(clique(3))
        outputs = settled_outputs(
            protocol,
            default_inputs(protocol),
            one_token_labeling(3),
            settle=5,
            window=5,
        )
        assert outputs == (1, 1, 1)

    def test_oscillating_protocol_raises(self):
        protocol = copy_ring_protocol(3)
        labeling = Labeling(protocol.topology, (1, 0, 0))
        with pytest.raises(ConvergenceError):
            settled_outputs(
                protocol, default_inputs(protocol), labeling, settle=4, window=6
            )


class TestOutputSettleTime:
    def test_reports_last_change(self):
        protocol = example1_protocol(3)
        settle, outputs = output_settle_time(
            protocol,
            default_inputs(protocol),
            one_token_labeling(3),
            horizon=20,
            window=10,
        )
        assert outputs == (1, 1, 1)
        assert 1 <= settle <= 5

    def test_raises_when_still_moving(self):
        protocol = copy_ring_protocol(3)
        labeling = Labeling(protocol.topology, (1, 0, 0))
        with pytest.raises(ConvergenceError):
            output_settle_time(
                protocol, default_inputs(protocol), labeling, horizon=5, window=9
            )


class TestMeasureRoundComplexity:
    def test_aggregates_worst_case(self):
        protocol = example1_protocol(3)
        report = measure_round_complexity(
            protocol,
            input_vectors=[(0, 0, 0)],
            labelings=[one_token_labeling(3), Labeling.uniform(protocol.topology, 0)],
        )
        assert report.runs == 2
        assert report.all_label_stable
        assert report.max_label_rounds >= 1

    def test_flags_non_stabilizing_runs(self):
        protocol = copy_ring_protocol(3)
        report = measure_round_complexity(
            protocol,
            input_vectors=[(0, 0, 0)],
            labelings=[Labeling(protocol.topology, (1, 0, 0))],
        )
        assert not report.all_label_stable


class TestTables:
    def test_render_alignment(self):
        table = render_table(["a", "long header"], [[1, 2], ["xyz", 42]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "long header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_print_table_smoke(self, capsys):
        print_table("title", ["h"], [[1]])
        captured = capsys.readouterr()
        assert "title" in captured.out
        assert "1" in captured.out


class TestTopLevelAPI:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        assert hasattr(repro, "Simulator")
        assert hasattr(repro, "StatelessProtocol")
        assert hasattr(repro, "synchronous_run")

    def test_repr_strings(self):
        protocol = example1_protocol(3)
        assert "example1" in repr(protocol)
        assert "clique" in repr(protocol.topology)
        assert "Sigma" in repr(protocol.label_space)

    def test_synchronous_run_helper(self):
        from repro import synchronous_run

        protocol = or_clique_protocol(clique(3))
        report = synchronous_run(
            protocol, (0, 0, 0), Labeling.uniform(protocol.topology, 0)
        )
        assert report.label_stable


class TestUnidirectionalRoundBoundHolds:
    def test_lemma_c2_bound_on_library_ring_protocols(self):
        # R_n <= n |Sigma| holds for the worst-case protocol family.
        from repro.core import Simulator, SynchronousSchedule
        from repro.power import unidirectional_round_bound, worst_case_protocol

        for n, q in ((3, 2), (4, 2), (5, 3)):
            protocol = worst_case_protocol(n, q)
            labeling = Labeling.uniform(protocol.topology, 0)
            report = Simulator(protocol, (0,) * n).run(
                labeling, SynchronousSchedule(n)
            )
            assert report.label_rounds <= unidirectional_round_bound(n, q)
