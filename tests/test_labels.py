"""Unit tests for label spaces."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.labels import (
    BitStrings,
    ExplicitLabelSpace,
    IntegerRange,
    ProductSpace,
    binary,
)
from repro.exceptions import ValidationError


class TestExplicitLabelSpace:
    def test_size_and_iteration(self):
        space = ExplicitLabelSpace(("a", "b", "c"))
        assert space.size == 3
        assert sorted(space) == ["a", "b", "c"]

    def test_membership(self):
        space = ExplicitLabelSpace((0, 1, 2))
        assert 1 in space
        assert 5 not in space

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ExplicitLabelSpace(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            ExplicitLabelSpace((1, 1))

    def test_unhashable_rejected(self):
        with pytest.raises(ValidationError):
            ExplicitLabelSpace(([1],))

    def test_bit_length(self):
        assert ExplicitLabelSpace(range(8)).bit_length == 3.0

    def test_sample_is_member(self):
        space = ExplicitLabelSpace(range(5))
        rng = random.Random(0)
        assert all(space.sample(rng) in space for _ in range(20))


class TestBinary:
    def test_binary_is_zero_one(self):
        assert sorted(binary()) == [0, 1]
        assert binary().bit_length == 1.0


class TestBitStrings:
    def test_size(self):
        assert BitStrings(5).size == 32

    def test_iteration_matches_size(self):
        space = BitStrings(3)
        values = list(space)
        assert len(values) == 8
        assert len(set(values)) == 8

    def test_membership(self):
        space = BitStrings(3)
        assert (0, 1, 1) in space
        assert (0, 1) not in space
        assert (0, 1, 2) not in space
        assert [0, 1, 1] not in space

    def test_zero_length(self):
        space = BitStrings(0)
        assert space.size == 1
        assert () in space

    def test_sample_large_space_without_enumeration(self):
        space = BitStrings(128)
        rng = random.Random(7)
        sample = space.sample(rng)
        assert sample in space
        assert space.bit_length == 128

    @given(st.integers(min_value=1, max_value=10), st.integers())
    def test_sample_always_member(self, k, seed):
        space = BitStrings(k)
        assert space.sample(random.Random(seed)) in space


class TestIntegerRange:
    def test_membership_excludes_bool(self):
        space = IntegerRange(2)
        assert 0 in space and 1 in space
        assert True not in space
        assert 2 not in space

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            IntegerRange(0)

    def test_iteration(self):
        assert list(IntegerRange(4)) == [0, 1, 2, 3]


class TestProductSpace:
    def test_size_is_product(self):
        space = ProductSpace((binary(), IntegerRange(3), BitStrings(2)))
        assert space.size == 2 * 3 * 4

    def test_membership_componentwise(self):
        space = ProductSpace((binary(), IntegerRange(3)))
        assert (1, 2) in space
        assert (2, 2) not in space
        assert (1,) not in space

    def test_iteration_exhaustive(self):
        space = ProductSpace((binary(), binary()))
        assert sorted(space) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_sample(self):
        space = ProductSpace((binary(), IntegerRange(10)))
        rng = random.Random(1)
        for _ in range(10):
            assert space.sample(rng) in space

    def test_empty_product_rejected(self):
        with pytest.raises(ValidationError):
            ProductSpace(())

    def test_bit_length_additive(self):
        space = ProductSpace((BitStrings(3), BitStrings(4)))
        assert math.isclose(space.bit_length, 7.0)
