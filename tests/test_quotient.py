"""End-to-end equivalence of the symmetry quotient (``symmetry="auto"``).

The quotient is an internal optimization: every public answer — verdicts,
worst-case delays, replayed witnesses — must be indistinguishable from the
unquotiented states-graph search.  These tests drive that contract
property-style over randomly generated *node-symmetric* protocols (a shared
lookup table keyed on the sorted incoming multiset, so the full topology
automorphism group is equivariant), plus golden checks on the paper zoo.
"""

from __future__ import annotations

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitLabelSpace,
    Labeling,
    RunOutcome,
    Simulator,
    StatelessProtocol,
    TabularReaction,
    default_inputs,
    minimal_fairness,
)
from repro import ExecutionPolicy
from repro.core.compiled import compile_protocol
from repro.faults import exhaustive_worst_case_delay
from repro.graphs import bidirectional_ring, clique
from repro.stabilization import (
    ExplorationGraph,
    broadcast_labelings,
    decide_label_r_stabilizing,
    decide_output_r_stabilizing,
    example1_protocol,
)

from tests.helpers import or_clique_protocol

#: The policy spelling of the legacy ``symmetry="auto"`` keyword.
QUOTIENT = ExecutionPolicy(symmetry="auto")


def symmetric_protocol(rng: random.Random) -> StatelessProtocol:
    """A random protocol invariant under the full automorphism group.

    Every node runs the same lookup table, keyed on the *sorted* incoming
    value multiset and broadcasting one value to all out-edges — so any
    relabeling of nodes that preserves the topology preserves the dynamics.
    """
    if rng.random() < 0.5:
        topology = clique(rng.randrange(3, 5))
        labels = (0, 1)  # keeps |Sigma|^m within the verification budget
    else:
        topology = bidirectional_ring(rng.randrange(3, 6))
        labels = tuple(range(rng.randrange(2, 4)))
    space = ExplicitLabelSpace(labels)
    degree = len(topology.in_edges(0))
    multiset_value = {}
    for combo in product(labels, repeat=degree):
        key = tuple(sorted(combo))
        if key not in multiset_value:
            multiset_value[key] = (rng.choice(labels), rng.choice(labels))
    reactions = []
    for i in range(topology.n):
        in_edges = topology.in_edges(i)
        out_edges = topology.out_edges(i)
        table = {}
        for combo in product(labels, repeat=len(in_edges)):
            value, output = multiset_value[tuple(sorted(combo))]
            table[(combo, 0)] = (tuple(value for _ in out_edges), output)
        reactions.append(TabularReaction(in_edges, out_edges, table))
    return StatelessProtocol(topology, space, reactions, name="sym-random")


def random_labeling(rng: random.Random, protocol) -> Labeling:
    labels = list(protocol.label_space)
    return Labeling(
        protocol.topology,
        tuple(rng.choice(labels) for _ in protocol.topology.edges),
    )


class TestVerdictEquivalence:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_label_verdicts_match(self, seed):
        rng = random.Random(seed)
        protocol = symmetric_protocol(rng)
        inputs = default_inputs(protocol)
        r = rng.randrange(1, 4)
        inits = [random_labeling(rng, protocol) for _ in range(3)]
        plain = decide_label_r_stabilizing(
            protocol, inputs, r, initial_labelings=inits
        )
        quotient = decide_label_r_stabilizing(
            protocol, inputs, r, initial_labelings=inits, policy=QUOTIENT
        )
        assert plain.stabilizing == quotient.stabilizing
        assert quotient.states_explored <= plain.states_explored
        if not quotient.stabilizing:
            witness = quotient.witness
            schedule = witness.to_schedule(protocol.n)
            assert minimal_fairness(schedule, 400) <= r
            sim = Simulator(protocol, inputs)
            report = sim.run(
                witness.initial_labeling, schedule, max_steps=4000
            )
            # either way the labeling provably cycles forever
            assert report.outcome in (
                RunOutcome.OSCILLATING,
                RunOutcome.OUTPUT_STABLE,
            )
            assert report.label_rounds is None

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_output_verdicts_match(self, seed):
        rng = random.Random(seed)
        protocol = symmetric_protocol(rng)
        inputs = default_inputs(protocol)
        r = rng.randrange(1, 3)
        inits = [random_labeling(rng, protocol) for _ in range(2)]
        plain = decide_output_r_stabilizing(
            protocol, inputs, r, initial_labelings=inits
        )
        quotient = decide_output_r_stabilizing(
            protocol, inputs, r, initial_labelings=inits, policy=QUOTIENT
        )
        assert plain.stabilizing == quotient.stabilizing

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_worst_case_delays_match(self, seed):
        rng = random.Random(seed)
        protocol = symmetric_protocol(rng)
        inputs = default_inputs(protocol)
        r = rng.randrange(1, 4)
        init = random_labeling(rng, protocol)
        plain = exhaustive_worst_case_delay(protocol, inputs, init, r)
        quotient = exhaustive_worst_case_delay(
            protocol, inputs, init, r, policy=QUOTIENT
        )
        assert plain.delay == quotient.delay
        # the lifted witness schedule is r-fair and certifies the delay:
        # every state it visits before absorption is non-stable, and an
        # unbounded witness loop closes concretely.
        assert minimal_fairness(quotient.schedule(), 400) <= r
        compiled = compile_protocol(protocol)
        values = init.values
        if plain.delay is None:
            for t_set in list(quotient.prefix) + list(quotient.loop):
                assert not compiled.is_fixed_point(values, inputs)
                values, _ = compiled.step_values(values, None, t_set, inputs)
            loop_start = values
            assert not compiled.is_fixed_point(values, inputs)
            for t_set in quotient.loop:
                values, _ = compiled.step_values(values, None, t_set, inputs)
            assert values == loop_start  # the lifted cycle closes concretely
        else:
            for t_set in quotient.prefix:
                assert not compiled.is_fixed_point(values, inputs)
                values, _ = compiled.step_values(values, None, t_set, inputs)
            assert compiled.is_fixed_point(values, inputs)
            assert len(quotient.prefix) == plain.delay


class TestGoldenZoo:
    @pytest.mark.parametrize("n, r, stabilizing", [(3, 1, True), (3, 2, False), (4, 2, True), (4, 3, False)])
    def test_example1_verdicts(self, n, r, stabilizing):
        protocol = example1_protocol(n)
        inputs = default_inputs(protocol)
        inits = list(broadcast_labelings(protocol.topology, protocol.label_space))
        quotient = decide_label_r_stabilizing(
            protocol, inputs, r, initial_labelings=inits, policy=QUOTIENT
        )
        assert quotient.stabilizing == stabilizing
        if not stabilizing:
            witness = quotient.witness
            sim = Simulator(protocol, inputs)
            report = sim.run(
                witness.initial_labeling,
                witness.to_schedule(protocol.n),
                max_steps=4000,
            )
            assert report.outcome is RunOutcome.OSCILLATING

    def test_orbit_closed_initials_cover_the_plain_graph_exactly(self):
        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        space = protocol.label_space
        inits = [
            Labeling(protocol.topology, values)
            for values in product(space, repeat=len(protocol.topology.edges))
        ]
        plain = ExplorationGraph(protocol, inputs, 2, inits)
        quotient = ExplorationGraph(protocol, inputs, 2, inits, policy=QUOTIENT)
        stats = quotient.stats()
        assert stats.covered_states == len(plain)
        assert stats.symmetry_order == 24
        assert stats.reduction_factor > 10

    def test_quotient_graph_is_frontier_mode_invariant(self):
        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        inits = list(broadcast_labelings(protocol.topology, protocol.label_space))
        serial = ExplorationGraph(
            protocol,
            inputs,
            3,
            inits,
            policy=ExecutionPolicy(symmetry="auto", frontier="serial"),
        )
        batch = ExplorationGraph(
            protocol,
            inputs,
            3,
            inits,
            policy=ExecutionPolicy(
                symmetry="auto", frontier="batch", batch_min_rows=1
            ),
        )
        assert serial.state_keys == batch.state_keys
        assert serial.successors == batch.successors
        assert list(serial.edge_gid) == list(batch.edge_gid)
        assert list(serial.edge_flags) == list(batch.edge_flags)

    def test_explicit_group_and_topology_mismatch(self):
        from repro.graphs import automorphism_generators, close_generators
        from repro.graphs.automorphisms import SymmetryGroup

        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        inits = list(broadcast_labelings(protocol.topology, protocol.label_space))
        group = SymmetryGroup(
            clique(4),
            close_generators(automorphism_generators(clique(4)), 4, 10_000),
            label_universe=frozenset({0, 1}),
        )
        explicit = ExplorationGraph(
            protocol, inputs, 2, inits, policy=ExecutionPolicy(symmetry=group)
        )
        auto = ExplorationGraph(protocol, inputs, 2, inits, policy=QUOTIENT)
        assert explicit.state_keys == auto.state_keys

        from repro.exceptions import ValidationError

        wrong = SymmetryGroup(
            clique(3),
            close_generators(automorphism_generators(clique(3)), 3, 10_000),
        )
        with pytest.raises(ValidationError):
            ExplorationGraph(
                protocol, inputs, 2, inits, policy=ExecutionPolicy(symmetry=wrong)
            )
