"""Unit tests for graph properties (radius, connectivity, degree)."""

import pytest

from repro.exceptions import ValidationError
from repro.graphs import (
    Topology,
    all_pairs_distances,
    bidirectional_ring,
    clique,
    diameter,
    distances_from,
    eccentricity,
    hypercube,
    is_strongly_connected,
    max_degree,
    radius,
    star,
    unidirectional_ring,
)


class TestDistances:
    def test_distances_on_unidirectional_ring(self):
        topo = unidirectional_ring(5)
        assert distances_from(topo, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        topo = Topology(3, [(0, 1), (1, 0), (1, 2)])
        dist = distances_from(topo, 2)
        assert dist == [-1, -1, 0]

    def test_all_pairs_shape(self):
        topo = clique(4)
        table = all_pairs_distances(topo)
        assert len(table) == 4
        assert all(table[i][i] == 0 for i in range(4))


class TestConnectivity:
    def test_ring_is_strongly_connected(self):
        assert is_strongly_connected(unidirectional_ring(6))

    def test_one_way_path_is_not(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        assert not is_strongly_connected(topo)

    def test_missing_backward_reachability_detected(self):
        # Node 0 reaches everyone, but node 2 cannot reach node 0.
        topo = Topology(3, [(0, 1), (1, 0), (0, 2)])
        assert not is_strongly_connected(topo)


class TestRadiusDiameter:
    @pytest.mark.parametrize(
        "n, expected_radius", [(3, 1), (5, 2), (7, 3), (8, 4)]
    )
    def test_bidirectional_ring_radius(self, n, expected_radius):
        assert radius(bidirectional_ring(n)) == expected_radius

    def test_unidirectional_ring_radius(self):
        assert radius(unidirectional_ring(6)) == 5

    def test_clique_radius(self):
        assert radius(clique(5)) == 1
        assert diameter(clique(5)) == 1

    def test_star_diameter(self):
        assert radius(star(6)) == 1
        assert diameter(star(6)) == 2

    def test_hypercube_diameter_is_dimension(self):
        assert diameter(hypercube(4)) == 4

    def test_eccentricity_requires_reachability(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        # node 2 reaches nothing else, so its eccentricity is undefined
        with pytest.raises(ValidationError):
            eccentricity(topo, 2)


class TestMaxDegree:
    def test_ring_degree(self):
        assert max_degree(bidirectional_ring(9)) == 2
        assert max_degree(unidirectional_ring(9)) == 1

    def test_clique_degree(self):
        assert max_degree(clique(6)) == 5

    def test_star_degree(self):
        assert max_degree(star(7)) == 6
