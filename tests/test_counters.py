"""Tests for the 2-counter (Claim 5.5) and D-counter (Claim 5.6).

The stabilization targets, from the paper:
* 2-counter: after O(n) rounds every node's b2 bit alternates each round,
  with the fixed spatial pattern phi(t) XOR s_j, s_j = floor(j/2) mod 2;
* D-counter: R_n = 4n; after stabilization all nodes hold the same counter
  value, incrementing by 1 mod D every round; L_n = 2 + 3 log2(D).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Labeling, Simulator, SynchronousSchedule
from repro.exceptions import ValidationError
from repro.power import (
    d_counter_label_complexity,
    d_counter_protocol,
    spatial_phase,
    two_counter_protocol,
)


def trace_outputs(protocol, steps, seed):
    rng = random.Random(seed)
    labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
    simulator = Simulator(protocol, (0,) * protocol.n)
    trace = simulator.run_trace(labeling, SynchronousSchedule(protocol.n), steps)
    return trace


def alternation_start(rows):
    """First index from which every column flips at every step."""
    horizon = len(rows)
    for start in range(horizon - 1):
        if all(
            rows[t + 1][j] == 1 - rows[t][j]
            for t in range(start, horizon - 1)
            for j in range(len(rows[0]))
        ):
            return start
    return None


class TestTwoCounter:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_b2_alternates_within_4n(self, n):
        protocol = two_counter_protocol(n)
        for seed in range(5):
            trace = trace_outputs(protocol, steps=4 * n + 10, seed=seed)
            rows = [config.outputs for config in trace[1:]]
            start = alternation_start(rows)
            assert start is not None, f"no alternation (n={n}, seed={seed})"
            assert start <= 4 * n

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_spatial_pattern(self, n):
        # After stabilization: b2_j(t) = phi(t) XOR floor(j/2) mod 2.
        protocol = two_counter_protocol(n)
        trace = trace_outputs(protocol, steps=4 * n + 6, seed=11)
        late = trace[-1].outputs
        phi = late[0] ^ spatial_phase(0)
        for j in range(n):
            assert late[j] == phi ^ spatial_phase(j)

    def test_rejects_even_ring(self):
        with pytest.raises(ValidationError):
            two_counter_protocol(4)

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValidationError):
            two_counter_protocol(1)

    def test_label_complexity_is_two_bits(self):
        assert two_counter_protocol(5).label_complexity == 2.0


def counter_sync_start(rows, modulus):
    """First index from which all nodes agree and increment mod D."""
    horizon = len(rows)
    for start in range(horizon - 1):
        good = True
        for t in range(start, horizon - 1):
            if len(set(rows[t])) != 1 or len(set(rows[t + 1])) != 1:
                good = False
                break
            if rows[t + 1][0] != (rows[t][0] + 1) % modulus:
                good = False
                break
        if good:
            return start
    return None


class TestDCounter:
    @pytest.mark.parametrize("n", [3, 5, 7])
    @pytest.mark.parametrize("modulus", [3, 8, 17])
    def test_synchronized_counting_within_4n(self, n, modulus):
        protocol = d_counter_protocol(n, modulus)
        for seed in range(3):
            trace = trace_outputs(protocol, steps=4 * n + 2 * modulus + 10, seed=seed)
            rows = [config.outputs for config in trace[1:]]
            start = counter_sync_start(rows, modulus)
            assert start is not None, f"never synchronized (n={n}, D={modulus})"
            assert start <= 4 * n

    @given(
        st.sampled_from([3, 5, 7, 9]),
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_synchronization_property(self, n, modulus, seed):
        protocol = d_counter_protocol(n, modulus)
        trace = trace_outputs(protocol, steps=4 * n + modulus + 8, seed=seed)
        rows = [config.outputs for config in trace[1:]]
        start = counter_sync_start(rows, modulus)
        assert start is not None
        assert start <= 4 * n

    def test_counter_field_matches_output(self):
        # The label's c field is the broadcast counter value.
        protocol = d_counter_protocol(5, 6)
        trace = trace_outputs(protocol, steps=40, seed=0)
        config = trace[-1]
        for j in range(5):
            for edge in protocol.topology.out_edges(j):
                assert config.labeling[edge][4] == config.outputs[j]

    def test_label_complexity_formula(self):
        protocol = d_counter_protocol(5, 8)
        assert math.isclose(d_counter_label_complexity(8), 2 + 3 * 3)
        assert math.isclose(protocol.label_complexity, 2 + 3 * math.log2(8))

    def test_rejects_even_ring_and_bad_modulus(self):
        with pytest.raises(ValidationError):
            d_counter_protocol(4, 5)
        with pytest.raises(ValidationError):
            d_counter_protocol(5, 1)
