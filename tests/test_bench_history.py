"""The benchmark runner's record history (``benchmarks/_runner.py``).

``BENCH_<name>.json`` keeps the latest run at the top level (what
``check_regression.py`` gates on) and folds every superseded run into a
``history`` list, newest last — re-recording a baseline must never discard
the measurements it replaces.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_runner():
    spec = importlib.util.spec_from_file_location(
        "bench_runner_under_test", BENCH_DIR / "_runner.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_runner = _load_runner()


def _record(value: float, recorded_at: str = "2026-01-01T00:00:00+0000"):
    return {
        "bench": "bench_x",
        "recorded_at": recorded_at,
        "entries": {"test_x": {"kernel_median_s": value}},
    }


class TestMergeHistory:
    def test_first_record_has_empty_history(self, tmp_path):
        out = tmp_path / "BENCH_bench_x.json"
        merged = _runner.merge_history(out, _record(1.0))
        assert merged["history"] == []

    def test_previous_top_level_run_is_appended(self, tmp_path):
        out = tmp_path / "BENCH_bench_x.json"
        out.write_text(json.dumps(_record(1.0)))
        merged = _runner.merge_history(out, _record(2.0))
        assert len(merged["history"]) == 1
        assert merged["history"][0]["entries"] == _record(1.0)["entries"]
        assert merged["history"][0]["recorded_at"] == "2026-01-01T00:00:00+0000"
        # The new run stays at the top level, untouched.
        assert merged["entries"] == _record(2.0)["entries"]

    def test_existing_history_is_carried_and_extended(self, tmp_path):
        out = tmp_path / "BENCH_bench_x.json"
        previous = _record(2.0, "2026-02-01T00:00:00+0000")
        previous["history"] = [_record(1.0)]
        out.write_text(json.dumps(previous))
        merged = _runner.merge_history(out, _record(3.0))
        values = [
            item["entries"]["test_x"]["kernel_median_s"]
            for item in merged["history"]
        ]
        assert values == [1.0, 2.0]

    def test_migrated_seed_entry_is_not_duplicated(self, tmp_path):
        # A migrated record already carries its own entries as the only
        # history snapshot; folding it again must not duplicate the seed.
        out = tmp_path / "BENCH_bench_x.json"
        migrated = _record(1.0)
        migrated["history"] = [{"entries": _record(1.0)["entries"]}]
        out.write_text(json.dumps(migrated))
        merged = _runner.merge_history(out, _record(2.0))
        assert len(merged["history"]) == 1

    def test_history_is_truncated_to_the_limit(self, tmp_path):
        out = tmp_path / "BENCH_bench_x.json"
        previous = _record(999.0)
        previous["history"] = [
            _record(float(i)) for i in range(_runner.HISTORY_LIMIT + 5)
        ]
        out.write_text(json.dumps(previous))
        merged = _runner.merge_history(out, _record(1000.0))
        assert len(merged["history"]) == _runner.HISTORY_LIMIT
        # Newest kept: the previous top-level run is the last snapshot.
        assert (
            merged["history"][-1]["entries"]["test_x"]["kernel_median_s"]
            == 999.0
        )

    def test_corrupt_previous_file_is_ignored(self, tmp_path):
        out = tmp_path / "BENCH_bench_x.json"
        out.write_text("{not json")
        merged = _runner.merge_history(out, _record(1.0))
        assert merged["history"] == []


class TestCommittedRecords:
    def test_every_committed_record_carries_history(self):
        records = sorted(BENCH_DIR.glob("BENCH_*.json"))
        assert records, "no committed benchmark records found"
        for path in records:
            data = json.loads(path.read_text())
            assert data.get("entries"), path.name
            assert isinstance(data.get("history"), list), path.name


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "bench_checker_under_test", BENCH_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestHardGates:
    def _gated(self, median, reduction):
        return {
            "entries": {
                "test_x": {
                    "kernel_median_s": median,
                    "quotient_reduction_factor": reduction,
                }
            },
            "gates": {
                "test_x": {
                    "max_kernel_median_s": 10.0,
                    "min": {"quotient_reduction_factor": 10.0},
                }
            },
        }

    def test_passing_gates_report_nothing(self):
        checker = _load_checker()
        assert checker.gate_failures(self._gated(1.5, 279.0)) == []

    def test_ceiling_violation_fails(self):
        checker = _load_checker()
        failures = checker.gate_failures(self._gated(11.0, 279.0))
        assert len(failures) == 1 and "kernel_median_s" in failures[0]

    def test_floor_violation_fails(self):
        checker = _load_checker()
        failures = checker.gate_failures(self._gated(1.5, 3.0))
        assert len(failures) == 1 and "quotient_reduction_factor" in failures[0]

    def test_missing_gated_entry_fails(self):
        checker = _load_checker()
        record = self._gated(1.5, 279.0)
        record["entries"] = {}
        assert checker.gate_failures(record)

    def test_record_without_gates_passes(self):
        checker = _load_checker()
        assert checker.gate_failures(_record(1.0)) == []

    def test_committed_a07_record_carries_its_gates(self):
        path = BENCH_DIR / "BENCH_bench_a07_frontier_quotient.json"
        data = json.loads(path.read_text())
        gate = data["gates"]["test_a07_k7_quotient_construction"]
        assert gate["max_kernel_median_s"] == 10.0
        assert gate["min"]["quotient_reduction_factor"] == 10.0
        checker = _load_checker()
        assert checker.gate_failures(data) == []
