"""Shared protocol builders and strategies for the test suite."""

from __future__ import annotations

import random

from repro.core import (
    Labeling,
    LambdaReaction,
    StatelessProtocol,
    UniformReaction,
    binary,
)
from repro.graphs import Topology, unidirectional_ring


def constant_protocol(topology: Topology, label=0) -> StatelessProtocol:
    """Every node always writes ``label`` everywhere and outputs it."""

    def make(i):
        def fn(incoming, x):
            return {edge: label for edge in topology.out_edges(i)}, label

        return LambdaReaction(fn)

    return StatelessProtocol(
        topology, binary(), [make(i) for i in range(topology.n)], name="constant"
    )


def copy_ring_protocol(n: int) -> StatelessProtocol:
    """On the unidirectional ring every node forwards its incoming bit.

    Any uniform labeling is stable; a mixed labeling rotates forever, which
    makes this a convenient non-stabilizing example.
    """
    topology = unidirectional_ring(n)

    def make(i):
        def fn(incoming, x):
            (value,) = incoming.values()
            return value, value

        return UniformReaction(topology.out_edges(i), fn)

    return StatelessProtocol(
        topology, binary(), [make(i) for i in range(n)], name=f"copy-ring({n})"
    )


def or_clique_protocol(topology: Topology) -> StatelessProtocol:
    """Example-1-style protocol: broadcast 0 iff all incoming are 0."""

    def bit(incoming, _x):
        value = 0 if all(v == 0 for v in incoming.values()) else 1
        return value, value

    reactions = [
        UniformReaction(topology.out_edges(i), bit) for i in range(topology.n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="or-clique")


def random_bit_labeling(topology: Topology, seed: int) -> Labeling:
    rng = random.Random(seed)
    return Labeling(topology, tuple(rng.randrange(2) for _ in topology.edges))
