"""Tests for the sweep job service, client front-end, and CLI.

Lifecycle (submit/status/stream/result/cancel), cache-served resubmission,
BENCH-style job records, and the ``python -m repro.service`` entry point.
"""

import io
import json
import pickle
import threading

import pytest

from repro.analysis import SweepCase, run_sweep
from repro.core import (
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
)
from repro.exceptions import JobError, ValidationError
from repro.faults.models import RandomCorruption
from repro.faults.schedules import NoFaults, OneShotFault
from repro.graphs import unidirectional_ring
from repro.service import (
    InMemoryCache,
    JobHandle,
    JobState,
    ServiceClient,
    SweepService,
    plan_resilience_sweep,
    plan_sweep,
)
from repro.service.__main__ import main as service_main

from tests.helpers import random_bit_labeling


# Module-level reaction so plans pickle for the CLI round-trip tests.
def _forward_bit(incoming, _x):
    (value,) = incoming.values()
    return value, value


def _ring(n):
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _forward_bit) for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="ring")


def _sync(index, case):
    return SynchronousSchedule(len(case.inputs))


def _plan(count=8, n=4, max_steps=60):
    protocol = _ring(n)
    cases = [
        SweepCase(
            (0,) * n, random_bit_labeling(protocol.topology, seed=s), tag=s
        )
        for s in range(count)
    ]
    return plan_sweep(protocol, cases, _sync, max_steps=max_steps), protocol, cases


class TestSweepService:
    def test_submit_result_lifecycle(self):
        plan, protocol, cases = _plan()
        one_shot = run_sweep(protocol, cases, _sync, max_steps=60)
        with SweepService() as service:
            job_id = service.submit(plan)
            assert plan.plan_fingerprint[:12] in job_id
            report = service.result(job_id, timeout=30)
            assert report == one_shot
            status = service.status(job_id)
            assert status.state is JobState.DONE
            assert status.cases_done == status.total_cases == 8
            assert status.error is None
            assert "done" in status.describe()

    def test_stream_yields_every_shard_and_ends(self):
        plan, protocol, cases = _plan()
        one_shot = run_sweep(protocol, cases, _sync, max_steps=60)
        with SweepService() as service:
            job_id = service.submit(plan, shard_size=3)
            seen = list(service.stream(job_id))
            assert [len(p.results) for p in seen] == [3, 3, 2]
            assert seen[-1].done
            assert seen[-1].aggregate == one_shot

    def test_identical_resubmission_is_cache_served(self):
        plan, protocol, cases = _plan()
        with SweepService() as service:
            first = service.result(service.submit(plan), timeout=30)
            second_id = service.submit(plan)
            second = service.result(second_id, timeout=30)
            assert second == first
            status = service.status(second_id)
            assert status.cache_hits == 8
            assert status.cache_misses == 0

    def test_unknown_job_raises(self):
        with SweepService() as service:
            with pytest.raises(JobError, match="unknown job"):
                service.status("job-999-cafebabe")

    def test_failed_job_surfaces_its_error(self):
        plan, _, _ = _plan(count=2)
        with SweepService() as service:
            # recovered= is invalid for a plain sweep plan -> the worker
            # fails the job instead of crashing the service.
            job_id = service.submit(plan, recovered="label")
            with pytest.raises(JobError, match="failed"):
                service.result(job_id, timeout=30)
            status = service.status(job_id)
            assert status.state is JobState.FAILED
            assert "resilience criterion" in status.error
            # the stream sees the same terminal failure
            with pytest.raises(JobError, match="failed"):
                list(service.stream(job_id))

    def test_cancel_between_shards(self):
        plan, _, _ = _plan(count=6, max_steps=60)
        release = threading.Event()

        class GatedCache(InMemoryCache):
            # Blocks the worker inside shard 1 until the test has cancelled,
            # making "cancel strikes between shards" deterministic.
            def _load(self, key):
                release.wait(timeout=30)
                return super()._load(key)

        with SweepService(cache=GatedCache()) as service:
            job_id = service.submit(plan, shard_size=2)
            assert service.cancel(job_id) is True
            release.set()
            with pytest.raises(JobError, match="cancelled"):
                service.result(job_id, timeout=30)
            status = service.status(job_id)
            assert status.state is JobState.CANCELLED
            assert status.shards_done < 3
            # cancelling a terminal job is a no-op
            assert service.cancel(job_id) is False

    def test_cancel_pending_job_never_runs(self):
        plan, _, _ = _plan(count=2)
        gate = threading.Event()

        class GatedCache(InMemoryCache):
            def _load(self, key):
                gate.wait(timeout=30)
                return super()._load(key)

        with SweepService(cache=GatedCache()) as service:
            blocker = service.submit(plan)  # occupies the single worker
            victim = service.submit(plan)
            assert service.cancel(victim) is True
            assert service.status(victim).state is JobState.CANCELLED
            gate.set()
            service.result(blocker, timeout=30)
            assert service.status(victim).shards_done == 0

    def test_closed_service_rejects_submissions(self):
        plan, _, _ = _plan(count=1)
        service = SweepService()
        service.close()
        with pytest.raises(JobError, match="closed"):
            service.submit(plan)

    def test_jobs_lists_in_submission_order(self):
        plan, _, _ = _plan(count=2)
        with SweepService() as service:
            ids = [service.submit(plan) for _ in range(3)]
            service.result(ids[-1], timeout=30)
            assert [status.job_id for status in service.jobs()] == ids

    def test_workers_validation(self):
        with pytest.raises(ValidationError, match="workers"):
            SweepService(workers=0)

    def test_two_workers_share_one_cache(self):
        plan, _, _ = _plan()
        distinct = len(set(plan.case_fingerprints()))
        with SweepService(workers=2) as service:
            ids = [service.submit(plan) for _ in range(4)]
            reports = [service.result(job_id, timeout=30) for job_id in ids]
            assert all(report == reports[0] for report in reports)
            stats = service.cache.stats
            # Every simulated case landed in the shared store; later jobs
            # hit it (racing jobs may each simulate a case once, so the
            # only hard bounds are these).
            assert stats.hits >= len(plan)
            assert len(service.cache) == distinct


class TestJobRecords:
    def test_record_shape_and_history_folding(self, tmp_path):
        plan, _, _ = _plan(count=4)
        records = tmp_path / "records"
        with SweepService(records_dir=records) as service:
            service.result(service.submit(plan), timeout=30)
            service.result(service.submit(plan), timeout=30)
        (path,) = records.glob("JOB_*.json")
        assert path.name == f"JOB_{plan.plan_fingerprint[:16]}.json"
        record = json.loads(path.read_text())
        entries = record["entries"]
        assert entries["state"] == "done"
        assert entries["kind"] == "sweep"
        assert entries["cases"] == entries["cases_done"] == 4
        assert entries["cache_hits"] == 4  # the warm resubmission
        assert sum(entries["outcomes"].values()) == 4
        assert entries["elapsed_s"] >= 0
        # the cold run was folded into history, newest last
        assert len(record["history"]) == 1
        assert record["history"][0]["entries"]["cache_misses"] == 4

    def test_resilience_record_counts_recoveries(self, tmp_path):
        protocol = _ring(4)
        cases = [
            SweepCase((0,) * 4, random_bit_labeling(protocol.topology, seed=s))
            for s in range(3)
        ]
        plan = plan_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(2, RandomCorruption(0.5, seed=i))
            if i
            else NoFaults(),
            max_steps=60,
        )
        with SweepService(records_dir=tmp_path) as service:
            service.result(service.submit(plan), timeout=30)
        (path,) = tmp_path.glob("JOB_*.json")
        entries = json.loads(path.read_text())["entries"]
        assert entries["kind"] == "resilience"
        assert "recovered" in entries


class TestServiceClient:
    def test_submit_sweep_and_result(self):
        _, protocol, cases = _plan()
        one_shot = run_sweep(protocol, cases, _sync, max_steps=60)
        with ServiceClient() as client:
            handle = client.submit_sweep(protocol, cases, _sync, max_steps=60)
            assert isinstance(handle, JobHandle)
            assert handle.result(timeout=30) == one_shot
            assert handle.status().state is JobState.DONE

    def test_run_helpers_block_for_reports(self):
        _, protocol, cases = _plan(count=4)
        with ServiceClient() as client:
            sweep = client.run_sweep(protocol, cases, _sync, max_steps=60)
            resilience = client.run_resilience_sweep(
                protocol, cases, _sync, lambda i, c: NoFaults(), max_steps=60
            )
        assert len(sweep) == len(resilience) == 4

    def test_wrapping_a_shared_service_leaves_it_open(self):
        plan, _, _ = _plan(count=1)
        with SweepService() as service:
            with ServiceClient(service) as client:
                client.submit_plan(plan).result(timeout=30)
            # the client did not close the shared service
            service.result(service.submit(plan), timeout=30)

    def test_service_and_options_are_exclusive(self):
        with SweepService() as service:
            with pytest.raises(TypeError, match="either"):
                ServiceClient(service, workers=2)

    def test_streaming_through_the_handle(self):
        plan, _, _ = _plan()
        with ServiceClient() as client:
            handle = client.submit_plan(plan, shard_size=4)
            shards = list(handle.stream())
            assert [p.shard for p in shards] == [0, 1]
            assert handle.cancel() is False  # already done


class TestCli:
    def test_demo_shows_warm_resubmission(self):
        out = io.StringIO()
        assert service_main(["demo", "--cases", "6"], out=out) == 0
        text = out.getvalue()
        assert "cold submission" in text
        assert "warm resubmission" in text
        assert "hits" in text
        assert "report: SweepReport" in text

    def test_run_and_inspect_a_pickled_plan(self, tmp_path):
        plan, _, _ = _plan(count=3)
        path = tmp_path / "plan.pkl"
        path.write_bytes(pickle.dumps(plan))

        out = io.StringIO()
        assert service_main(["inspect", str(path)], out=out) == 0
        assert plan.plan_fingerprint in out.getvalue()
        assert plan.case_fingerprints()[0] in out.getvalue()

        out = io.StringIO()
        cache = tmp_path / "cache.db"
        args = ["run", str(path), "--cache", str(cache), "--shard-size", "2"]
        assert service_main(args, out=out) == 0
        assert "misses" in out.getvalue()
        # second invocation over the on-disk cache is fully warm
        out = io.StringIO()
        assert service_main(args, out=out) == 0
        assert "cache 3 hits / 0 misses" in out.getvalue()

    def test_run_rejects_non_plan_pickles(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a plan"}))
        with pytest.raises(SystemExit, match="does not contain a SweepPlan"):
            service_main(["run", str(path)], out=io.StringIO())
