"""Tests for the unified exploration core (repro.stabilization.exploration).

The core replaced three hand-rolled BFS loops (seed ``StatesGraph``, the
model checker's ``_decide``, the adversary's worst-case search), so the
contract is strict: identical reachable structure — state order, successor
lists, parent links — and bit-identical witnesses on the paper gadgets.
The reference implementation below is the seed ``StatesGraph`` BFS kept
verbatim for comparison.
"""

from collections import deque
from itertools import combinations

import pytest

from repro import ExecutionPolicy
from repro.core import ExplicitSchedule, Labeling, Simulator, default_inputs
from repro.core.compiled import compile_protocol
from repro.exceptions import SearchBudgetExceeded, ValidationError
from repro.graphs import clique
from repro.stabilization import (
    ExplorationGraph,
    StatesGraph,
    broadcast_labelings,
    decide_label_r_stabilizing,
    decide_output_r_stabilizing,
    example1_protocol,
    stable_labeling_pair,
    valid_activation_sets,
)

from tests.helpers import copy_ring_protocol, or_clique_protocol


# -- the seed StatesGraph BFS, kept as the structural reference ---------------


def _seed_activation_sets(countdown, n):
    forced = frozenset(i for i in range(n) if countdown[i] == 1)
    optional = [i for i in range(n) if i not in forced]
    sets = []
    for size in range(len(optional) + 1):
        for extra in combinations(optional, size):
            t = forced | frozenset(extra)
            if t:
                sets.append(t)
    return sets


class _SeedGraph:
    def __init__(self, protocol, inputs, r, initial_labelings, budget=400_000):
        compiled = compile_protocol(protocol)
        inputs = tuple(inputs)
        n = protocol.n
        self.index = {}
        self.states = []
        self.successors = []
        self.parent = []
        self.initial_indices = []

        def add(state, parent):
            self.index[state] = len(self.states)
            self.states.append(state)
            self.successors.append([])
            self.parent.append(parent)

        queue = deque()
        for labeling in initial_labelings:
            state = (labeling.values, (r,) * n)
            if state not in self.index:
                add(state, None)
                self.initial_indices.append(self.index[state])
                queue.append(self.index[state])
        while queue:
            k = queue.popleft()
            values, countdown = self.states[k]
            for t in _seed_activation_sets(countdown, n):
                new_values, _ = compiled.step_values(values, None, t, inputs)
                nxt = (
                    new_values,
                    tuple(r if i in t else countdown[i] - 1 for i in range(n)),
                )
                if nxt not in self.index:
                    if len(self.states) >= budget:
                        raise SearchBudgetExceeded("budget")
                    add(nxt, (k, t))
                    queue.append(self.index[nxt])
                self.successors[k].append((self.index[nxt], t))


def _gadgets():
    e3 = example1_protocol(3)
    e4 = example1_protocol(4)
    ring = copy_ring_protocol(3)
    orc = or_clique_protocol(clique(4))
    return [
        (e3, 1, list(broadcast_labelings(e3.topology, e3.label_space))),
        (e3, 2, list(broadcast_labelings(e3.topology, e3.label_space))),
        (e4, 2, list(broadcast_labelings(e4.topology, e4.label_space))),
        (ring, 2, [Labeling(ring.topology, (1, 0, 0))]),
        (orc, 3, list(broadcast_labelings(orc.topology, orc.label_space))),
    ]


class TestStructureMatchesSeed:
    @pytest.mark.parametrize("case", range(5))
    def test_identical_reachable_structure(self, case):
        protocol, r, initials = _gadgets()[case]
        inputs = default_inputs(protocol)
        seed = _SeedGraph(protocol, inputs, r, initials)
        core = StatesGraph(protocol, inputs, r, initials)
        assert len(core) == len(seed.states)
        assert core.states == seed.states
        assert core.index == seed.index
        assert core.successors == seed.successors
        assert core.parent == seed.parent
        assert core.initial_indices == seed.initial_indices

    def test_attractor_region_matches_seed_fixpoint(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
        seed = _SeedGraph(protocol, inputs, 2, initials)
        core = StatesGraph(protocol, inputs, 2, initials)
        zero, one = stable_labeling_pair(3)
        targets = {zero.values, one.values}

        # Reference inevitability fixpoint on the seed graph.
        in_region = [seed.states[k][0] in targets for k in range(len(seed.states))]
        changed = True
        while changed:
            changed = False
            for k in range(len(seed.states)):
                if not in_region[k] and all(
                    in_region[j] for j, _ in seed.successors[k]
                ):
                    in_region[k] = True
                    changed = True
        reference = {k for k, inside in enumerate(in_region) if inside}
        assert core.attractor_region(targets) == reference


class TestInterning:
    def test_labelings_are_interned_to_shared_tuples(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        graph = StatesGraph(
            protocol,
            inputs,
            2,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        by_id: dict[int, tuple] = {}
        for k in range(len(graph)):
            lid = graph.label_id_of(k)
            values = graph.labeling_of(k)
            if lid in by_id:
                assert by_id[lid] is values  # the same object, not a copy
            by_id[lid] = values
            # ids round-trip through the reverse lookup
            assert graph.labeling_id(values) == lid
        assert graph.num_labelings == len(by_id)
        assert graph.num_labelings <= len(graph)

    def test_countdowns_round_trip(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        graph = StatesGraph(
            protocol,
            inputs,
            2,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        for k in graph.initial_indices:
            assert graph.countdown_of(k) == (2, 2, 2)
        for k in range(len(graph)):
            countdown = graph.countdown_of(k)
            assert len(countdown) == 3
            assert all(1 <= c <= 2 for c in countdown)
            assert graph.states[k] == (graph.labeling_of(k), countdown)

    def test_label_only_graph_has_all_none_outputs(self):
        protocol = copy_ring_protocol(3)
        graph = ExplorationGraph(
            protocol,
            default_inputs(protocol),
            1,
            [Labeling(protocol.topology, (1, 0, 0))],
        )
        assert all(graph.outputs_of(k) == (None, None, None) for k in range(len(graph)))
        assert all(graph.output_id_of(k) == 0 for k in range(len(graph)))

    def test_output_tracking_matches_engine_stepping(self):
        protocol = copy_ring_protocol(3)
        inputs = default_inputs(protocol)
        graph = ExplorationGraph(
            protocol,
            inputs,
            1,
            [Labeling(protocol.topology, (1, 0, 0))],
            track_outputs=True,
        )
        compiled = compile_protocol(protocol)
        for k in range(len(graph)):
            for (j, t) in graph.successors[k]:
                values, outputs = compiled.step_values(
                    graph.labeling_of(k), graph.outputs_of(k), t, tuple(inputs)
                )
                assert graph.labeling_of(j) == values
                assert graph.outputs_of(j) == outputs

    def test_output_tracking_distinguishes_states(self):
        # The label-only graph of the copy ring at r=1 has 8 states; with
        # outputs tracked (initially all-None, then per-node bits) it has 16.
        protocol = copy_ring_protocol(3)
        inputs = default_inputs(protocol)
        initial = [Labeling(protocol.topology, (1, 0, 0))]
        label_only = ExplorationGraph(protocol, inputs, 1, initial)
        with_outputs = ExplorationGraph(
            protocol, inputs, 1, initial, track_outputs=True
        )
        assert len(label_only) < len(with_outputs)


class TestBudgetAndValidation:
    def test_budget_exhaustion_names_the_consumer(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
        with pytest.raises(SearchBudgetExceeded, match="states-graph exceeded"):
            StatesGraph(protocol, inputs, 2, initials, budget=10)
        with pytest.raises(SearchBudgetExceeded, match="model checker exceeded"):
            decide_label_r_stabilizing(
                protocol,
                inputs,
                2,
                initial_labelings=broadcast_labelings(
                    protocol.topology, protocol.label_space
                ),
                budget=10,
            )

    def test_budget_allows_exactly_the_reachable_size(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
        full = StatesGraph(protocol, inputs, 2, initials)
        again = StatesGraph(protocol, inputs, 2, initials, budget=len(full))
        assert len(again) == len(full)
        with pytest.raises(SearchBudgetExceeded):
            StatesGraph(protocol, inputs, 2, initials, budget=len(full) - 1)

    def test_invalid_r_rejected(self):
        protocol = example1_protocol(3)
        with pytest.raises(ValidationError):
            ExplorationGraph(protocol, default_inputs(protocol), 0, [])


class TestWitnessReplay:
    def test_path_to_replays_through_the_engine(self):
        protocol = or_clique_protocol(clique(3))
        inputs = default_inputs(protocol)
        graph = StatesGraph(
            protocol,
            inputs,
            2,
            broadcast_labelings(protocol.topology, protocol.label_space),
        )
        simulator = Simulator(protocol, inputs)
        checked = 0
        for k in range(len(graph)):
            actions = graph.path_to(k)
            if not 0 < len(actions) <= 5:
                continue
            root = graph.root_of(k)
            labeling = Labeling(protocol.topology, graph.labeling_of(root))
            trace = simulator.run_trace(
                labeling, ExplicitSchedule(3, actions, cycle=False), steps=len(actions)
            )
            assert trace[-1].labeling.values == graph.labeling_of(k)
            checked += 1
        assert checked > 10

    def test_initial_labeling_objects_preserved(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        initials = list(broadcast_labelings(protocol.topology, protocol.label_space))
        graph = StatesGraph(protocol, inputs, 2, initials)
        recovered = [graph.initial_labeling(k) for k in graph.initial_indices]
        assert [labeling.values for labeling in recovered] == [
            labeling.values for labeling in initials
        ]


class TestGoldenWitnesses:
    """Verdicts and witnesses captured from the seed model checker — the
    rebuilt checker must reproduce them bit-for-bit."""

    def test_example1_k3_r2(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            2,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing
        assert verdict.states_explored == 35
        witness = verdict.witness
        assert witness.initial_labeling.values == (0, 0, 0, 0, 1, 1)
        assert witness.prefix == (frozenset({0, 2}),)
        assert witness.loop == (
            frozenset({0, 1}),
            frozenset({1, 2}),
            frozenset({0, 2}),
        )

    def test_example1_k4_r3(self):
        protocol = example1_protocol(4)
        inputs = default_inputs(protocol)
        verdict = decide_label_r_stabilizing(
            protocol,
            inputs,
            3,
            initial_labelings=broadcast_labelings(
                protocol.topology, protocol.label_space
            ),
        )
        assert not verdict.stabilizing
        assert verdict.states_explored == 404
        witness = verdict.witness
        assert witness.initial_labeling.values == (0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1)
        assert witness.prefix == (frozenset({0, 3}), frozenset({0, 1}))
        assert witness.loop == (
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({0, 3}),
            frozenset({0, 1}),
        )

    def test_copy_ring_label_and_output(self):
        protocol = copy_ring_protocol(3)
        inputs = default_inputs(protocol)
        label_verdict = decide_label_r_stabilizing(protocol, inputs, 1)
        assert not label_verdict.stabilizing
        assert label_verdict.states_explored == 8
        assert label_verdict.witness.initial_labeling.values == (0, 0, 1)
        assert label_verdict.witness.prefix == ()
        assert label_verdict.witness.loop == (frozenset({0, 1, 2}),) * 3

        output_verdict = decide_output_r_stabilizing(protocol, inputs, 1)
        assert not output_verdict.stabilizing
        assert output_verdict.states_explored == 16
        assert output_verdict.witness.initial_labeling.values == (0, 0, 1)
        assert output_verdict.witness.prefix == (frozenset({0, 1, 2}),)
        assert output_verdict.witness.loop == (frozenset({0, 1, 2}),) * 3


class TestActivationSetCache:
    def test_matches_naive_enumeration_order(self):
        for countdown in [(1, 3, 2), (5, 5, 5), (1, 1), (2,), (1, 2, 1, 2)]:
            n = len(countdown)
            assert valid_activation_sets(countdown, n) == _seed_activation_sets(
                countdown, n
            )

    def test_returns_a_fresh_mutable_list(self):
        first = valid_activation_sets((2, 2), 2)
        first.clear()  # mutating the result must not corrupt the cache
        assert valid_activation_sets((2, 2), 2) == _seed_activation_sets((2, 2), 2)

    def test_accepts_any_sequence_type(self):
        as_list = valid_activation_sets([1, 2, 2], 3)
        as_tuple = valid_activation_sets((1, 2, 2), 3)
        assert as_list == as_tuple

    def test_cache_is_bounded(self, monkeypatch):
        # Long-running greedy adversaries feed a near-unique countdown per
        # step; the shared cache must evict rather than grow without bound.
        from repro.stabilization import exploration

        monkeypatch.setattr(exploration, "_ACTIVATION_SETS_CAP", 8)
        for k in range(100):
            # distinct countdowns (all > 1, so no forced set)
            valid_activation_sets((2 + k, 2 + k + 1), 2)
            assert len(exploration._ACTIVATION_SETS) <= 8
        # correctness survives eviction
        assert valid_activation_sets((2, 3), 2) == _seed_activation_sets((2, 3), 2)

    def test_second_chance_keeps_hot_entries(self, monkeypatch):
        # Regression: eviction used to clear the whole cache, so an
        # exhaustive search whose working set fits the cap still lost every
        # hot countdown each time a burst of cold ones arrived.  The
        # second-chance sweep must keep recently referenced entries.
        from repro.stabilization import exploration

        monkeypatch.setattr(exploration, "_ACTIVATION_SETS_CAP", 8)
        exploration._ACTIVATION_SETS.clear()
        hot = (3, 4)
        valid_activation_sets(hot, 2)
        hot_key = (hot, 2)
        for k in range(200):
            valid_activation_sets((5 + k, 6 + k), 2)  # cold, near-unique
            valid_activation_sets(hot, 2)  # re-reference the hot entry
            assert hot_key in exploration._ACTIVATION_SETS
            assert len(exploration._ACTIVATION_SETS) <= 8

    def test_eviction_bounds_after_sweep(self, monkeypatch):
        # Even when every entry was recently referenced, a sweep must leave
        # room for the incoming entry (hard bound, not best-effort).
        from repro.stabilization import exploration

        monkeypatch.setattr(exploration, "_ACTIVATION_SETS_CAP", 4)
        exploration._ACTIVATION_SETS.clear()
        for k in range(50):
            valid_activation_sets((2 + k, 3 + k), 2)
            valid_activation_sets((2 + k, 3 + k), 2)  # sets the ref bit
            assert len(exploration._ACTIVATION_SETS) <= 4


# -- frontier modes -----------------------------------------------------------


class TestFrontierModes:
    """The batch frontier route must be bit-identical to the serial scan."""

    @pytest.mark.parametrize("case", _gadgets())
    def test_forced_batch_matches_serial(self, case):
        protocol, r, inits = case
        inputs = default_inputs(protocol)
        serial = ExplorationGraph(
            protocol, inputs, r, inits, policy=ExecutionPolicy(frontier="serial")
        )
        batch = ExplorationGraph(
            protocol,
            inputs,
            r,
            inits,
            policy=ExecutionPolicy(frontier="batch", batch_min_rows=1),
        )
        assert serial.state_keys == batch.state_keys
        assert serial.successors == batch.successors
        assert list(serial.parent_idx) == list(batch.parent_idx)
        assert list(serial.parent_sid) == list(batch.parent_sid)
        assert batch.stats().batch_calls > 0

    def test_forced_batch_matches_serial_with_outputs(self):
        protocol = copy_ring_protocol(4)
        inputs = default_inputs(protocol)
        inits = [Labeling(protocol.topology, (1, 0, 0, 1))]
        serial = ExplorationGraph(
            protocol,
            inputs,
            2,
            inits,
            track_outputs=True,
            policy=ExecutionPolicy(frontier="serial"),
        )
        batch = ExplorationGraph(
            protocol,
            inputs,
            2,
            inits,
            track_outputs=True,
            policy=ExecutionPolicy(frontier="batch", batch_min_rows=1),
        )
        assert serial.state_keys == batch.state_keys
        assert serial.successors == batch.successors
        assert [serial.outputs_of(k) for k in range(len(serial))] == [
            batch.outputs_of(k) for k in range(len(batch))
        ]

    def test_spilled_graph_matches_in_memory(self, tmp_path):
        pytest.importorskip("numpy")
        protocol = or_clique_protocol(clique(4))
        inputs = default_inputs(protocol)
        inits = list(broadcast_labelings(protocol.topology, protocol.label_space))
        ram = ExplorationGraph(protocol, inputs, 3, inits)
        spilled = ExplorationGraph(
            protocol,
            inputs,
            3,
            inits,
            policy=ExecutionPolicy(spill_dir=str(tmp_path)),
        )
        assert ram.state_keys == spilled.state_keys
        assert ram.successors == spilled.successors
        assert spilled.stats().spilled
        assert any(tmp_path.iterdir())  # arrays actually live on disk

    def test_stats_shape(self):
        protocol = example1_protocol(3)
        inputs = default_inputs(protocol)
        inits = list(broadcast_labelings(protocol.topology, protocol.label_space))
        graph = ExplorationGraph(protocol, inputs, 2, inits)
        stats = graph.stats()
        assert stats.states == len(graph)
        assert stats.edges == graph.num_edges
        assert stats.peak_frontier >= 1
        assert stats.transition_cache_hits + stats.transition_cache_misses > 0
        assert stats.symmetry_order == 1
        assert stats.covered_states == len(graph)
        assert stats.reduction_factor == pytest.approx(1.0)
        record = stats.as_dict()
        assert record["states"] == len(graph)
        assert record["frontier_mode"] in {"serial", "batch", "auto"}
