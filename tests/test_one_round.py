"""Tests for the 1-round clique baseline and Lemma C.2(1) as a property.

* Section 5, opening: any Boolean function computes on K_n with 1-bit labels
  in one synchronous round — including equality, which needs *linear* labels
  on the ring (the contrast the paper's Part II is about).
* Lemma C.2(1): R_n <= n |Sigma| on the unidirectional ring holds for
  *arbitrary* protocols — hypothesis-tested on random tabular protocols by
  exhausting every initial labeling: each run either provably oscillates or
  label-stabilizes within n |Sigma| rounds.
"""

import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Labeling,
    RunOutcome,
    Simulator,
    StatelessProtocol,
    SynchronousSchedule,
    TabularReaction,
)
from repro.exceptions import ValidationError
from repro.graphs import unidirectional_ring
from repro.lowerbounds import equality_function, majority_function
from repro.power.one_round import one_round_clique_protocol


def all_inputs(n):
    return list(product((0, 1), repeat=n))


class TestOneRoundClique:
    @pytest.mark.parametrize(
        "f,name",
        [
            (equality_function, "equality"),
            (majority_function, "majority"),
            (lambda x: x[0] ^ x[-1], "xor-ends"),
        ],
    )
    @pytest.mark.parametrize("n", [2, 4])
    def test_computes_in_one_round(self, f, name, n):
        protocol = one_round_clique_protocol(n, f)
        assert protocol.label_complexity == 1.0
        rng = random.Random(0)
        for x in all_inputs(n):
            labeling = Labeling.random(protocol.topology, protocol.label_space, rng)
            report = Simulator(protocol, x).run(
                labeling, SynchronousSchedule(n)
            )
            assert report.label_stable
            assert all(y == f(x) & 1 for y in report.outputs)
            # labels settle after the single broadcast round
            assert report.label_rounds <= 1
            # outputs settle one step later at worst (second activation sees
            # the correct labels)
            assert report.output_rounds <= 2

    def test_contrast_with_ring_lower_bound(self):
        # Equality: 1 bit suffices on the clique, but Corollary 6.3 proves
        # (n-4)/8 bits are necessary on the ring — the paper's separation.
        from repro.lowerbounds import equality_bound

        n = 16
        protocol = one_round_clique_protocol(n, equality_function)
        assert protocol.label_complexity < equality_bound(n)

    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            one_round_clique_protocol(1, lambda x: 0)


def random_ring_protocol(n, sigma_size, seed):
    rng = random.Random(seed)
    topology = unidirectional_ring(n)
    labels = tuple(range(sigma_size))
    reactions = []
    for i in range(n):
        table = {}
        for label in labels:
            for x in (0, 1):
                table[((label,), x)] = (
                    (rng.randrange(sigma_size),),
                    rng.randrange(2),
                )
        reactions.append(
            TabularReaction(topology.in_edges(i), topology.out_edges(i), table)
        )
    from repro.core import ExplicitLabelSpace

    return StatelessProtocol(
        topology, ExplicitLabelSpace(labels), reactions, name=f"rand-ring({seed})"
    )


class TestLemmaC21Property:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_convergence_within_n_sigma_or_oscillation(self, n, sigma_size, seed):
        protocol = random_ring_protocol(n, sigma_size, seed)
        bound = n * sigma_size
        simulator = Simulator(protocol, (0,) * n)
        for values in product(range(sigma_size), repeat=n):
            labeling = Labeling(protocol.topology, values)
            report = simulator.run(
                labeling, SynchronousSchedule(n), max_steps=bound + n * sigma_size + 5
            )
            if report.outcome is RunOutcome.LABEL_STABLE:
                assert report.label_rounds <= bound
            else:
                # non-stabilizing runs must be provable cycles, and even then
                # the paper's claim is about output stabilization: if outputs
                # stabilized, they did so within the bound
                assert report.cycle_length is not None
                if report.outcome is RunOutcome.OUTPUT_STABLE:
                    assert report.output_rounds <= bound
