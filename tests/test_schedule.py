"""Unit tests for schedules and fairness measurement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitSchedule,
    LassoSchedule,
    RandomRFairSchedule,
    RoundRobinSchedule,
    SynchronousSchedule,
    is_r_fair,
    minimal_fairness,
)
from repro.core.schedule import ShiftedSchedule
from repro.exceptions import ScheduleError, ValidationError


class TestSynchronous:
    def test_all_nodes_every_step(self):
        sched = SynchronousSchedule(4)
        assert sched.active(0) == frozenset(range(4))
        assert sched.active(99) == frozenset(range(4))
        assert sched.period == 1

    def test_is_one_fair(self):
        assert is_r_fair(SynchronousSchedule(3), 1, 50)
        assert minimal_fairness(SynchronousSchedule(3), 50) == 1


class TestRoundRobin:
    def test_rotation(self):
        sched = RoundRobinSchedule(3)
        assert [sched.active(t) for t in range(4)] == [
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
            frozenset({0}),
        ]

    def test_is_exactly_n_fair(self):
        sched = RoundRobinSchedule(5)
        assert is_r_fair(sched, 5, 100)
        assert not is_r_fair(sched, 4, 100)
        assert minimal_fairness(sched, 100) == 5


class TestExplicit:
    def test_cycles(self):
        sched = ExplicitSchedule(3, [{0}, {1, 2}])
        assert sched.active(0) == frozenset({0})
        assert sched.active(3) == frozenset({1, 2})
        assert sched.period == 2

    def test_non_cyclic_bounds(self):
        sched = ExplicitSchedule(2, [{0}, {1}], cycle=False)
        with pytest.raises(ScheduleError):
            sched.active(2)

    def test_empty_step_rejected(self):
        with pytest.raises(ValidationError):
            ExplicitSchedule(2, [set()])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            ExplicitSchedule(2, [{5}])


class TestLasso:
    def test_prefix_then_loop(self):
        sched = LassoSchedule(3, prefix=[{0}], loop=[{1}, {2}])
        assert sched.active(0) == frozenset({0})
        assert sched.active(1) == frozenset({1})
        assert sched.active(2) == frozenset({2})
        assert sched.active(3) == frozenset({1})
        assert sched.preperiod == 1
        assert sched.period == 2

    def test_empty_loop_rejected(self):
        with pytest.raises(ValidationError):
            LassoSchedule(2, prefix=[{0}], loop=[])


class TestRandomRFair:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_r_fair(self, n, r, seed):
        sched = RandomRFairSchedule(n, r=r, seed=seed, p=0.3)
        assert is_r_fair(sched, r, 200)

    def test_memoized_and_deterministic(self):
        a = RandomRFairSchedule(5, r=3, seed=42)
        b = RandomRFairSchedule(5, r=3, seed=42)
        trace_a = [a.active(t) for t in range(50)]
        # query out of order to exercise memoization
        assert b.active(49) == trace_a[49]
        assert [b.active(t) for t in range(50)] == trace_a
        assert [a.active(t) for t in range(50)] == trace_a

    def test_nonempty_steps(self):
        sched = RandomRFairSchedule(4, r=10, seed=0, p=0.0)
        assert all(sched.active(t) for t in range(100))

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            RandomRFairSchedule(3, r=0)
        with pytest.raises(ValidationError):
            RandomRFairSchedule(3, r=2, p=1.5)


class TestShiftedPhase:
    def test_phase_aligns_with_base_loop_past_preperiod(self):
        # Regression: with offset > base.preperiod the clamped preperiod is
        # 0, and the default phase formula decoupled from the base loop —
        # shifted.phase(0) reported 0 even though the view starts mid-loop.
        base = LassoSchedule(2, prefix=[{0}], loop=[{0}, {1}, {0, 1}])
        shifted = base.shifted(2)  # offset 2 > preperiod 1
        for t in range(12):
            assert shifted.phase(t) == base.phase(t + 2)
        assert shifted.phase(0) == 1  # mid-loop, not 0

    def test_phase_matches_base_when_offset_within_preperiod(self):
        base = LassoSchedule(2, prefix=[{0}, {1}, {0}], loop=[{0}, {1}])
        shifted = base.shifted(1)
        for t in range(12):
            assert shifted.phase(t) == base.phase(t + 1)

    def test_phase_consistent_with_active(self):
        # Equal phases (past the preperiod) must mean equal activation sets.
        base = LassoSchedule(3, prefix=[{0}], loop=[{1}, {2}])
        shifted = ShiftedSchedule(base, 3)
        for t in range(1, 10):
            for u in range(1, 10):
                if shifted.phase(t) == shifted.phase(u):
                    assert shifted.active(t) == shifted.active(u)


class TestFairnessMeasures:
    def test_minimal_fairness_counts_tail_gap(self):
        # node 1 is never activated after step 0 within the horizon
        sched = ExplicitSchedule(2, [{1}] + [{0}] * 9, cycle=True)
        assert minimal_fairness(sched, 10) == 10

    def test_is_r_fair_window_semantics(self):
        sched = ExplicitSchedule(2, [{0}, {1}], cycle=True)
        assert is_r_fair(sched, 2, 100)
        assert not is_r_fair(sched, 1, 100)

    def test_minimal_fairness_none_when_node_never_activated(self):
        # Regression: this used to return horizon + 1 — an r no
        # horizon-length run can actually certify.
        sched = ExplicitSchedule(2, [{0}], cycle=True)  # node 1 never runs
        assert minimal_fairness(sched, 10) is None

    def test_minimal_fairness_finite_once_every_node_seen(self):
        sched = ExplicitSchedule(2, [{0}], cycle=True)
        # shrinking horizon does not resurrect a bound
        assert minimal_fairness(sched, 1) is None
        # a schedule touching both nodes reports the real gap
        both = ExplicitSchedule(2, [{0, 1}], cycle=True)
        assert minimal_fairness(both, 10) == 1
