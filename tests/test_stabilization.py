"""Tests for fixed points, the states-graph, the model checker, and Example 1.

These machine-verify the Part I results of the paper on small instances:

* Theorem 3.1: two stable labelings => not label (n-1)-stabilizing.
* Example 1 tightness: the clique protocol is label (n-2)-stabilizing.
"""

import pytest

from repro.core import (
    RunOutcome,
    Simulator,
    default_inputs,
    minimal_fairness,
)
from repro.exceptions import SearchBudgetExceeded
from repro.graphs import clique
from repro.stabilization import (
    StatesGraph,
    all_labelings,
    broadcast_labelings,
    decide_label_r_stabilizing,
    decide_output_r_stabilizing,
    example1_protocol,
    is_stable_labeling,
    one_token_labeling,
    oscillating_schedule,
    stable_labeling_pair,
    stable_labelings,
    valid_activation_sets,
)

from tests.helpers import copy_ring_protocol, or_clique_protocol


class TestFixedPoints:
    def test_example1_stable_pair(self):
        proto = example1_protocol(3)
        inputs = default_inputs(proto)
        zero, one = stable_labeling_pair(3)
        assert is_stable_labeling(proto, inputs, zero)
        assert is_stable_labeling(proto, inputs, one)

    def test_token_labeling_not_stable(self):
        proto = example1_protocol(3)
        assert not is_stable_labeling(
            proto, default_inputs(proto), one_token_labeling(3)
        )

    def test_full_enumeration_on_tiny_ring(self):
        proto = copy_ring_protocol(3)
        stables = stable_labelings(proto, default_inputs(proto))
        # copy ring: stable iff the labeling is uniform
        assert len(stables) == 2

    def test_broadcast_enumeration_matches_full_on_clique(self):
        proto = example1_protocol(3)
        inputs = default_inputs(proto)
        full = stable_labelings(proto, inputs)
        broadcast = stable_labelings(
            proto, inputs, broadcast_labelings(proto.topology, proto.label_space)
        )
        assert set(full) == set(broadcast)
        assert len(broadcast) == 2

    def test_budget_guard(self):
        proto = example1_protocol(5)  # K_5 has 20 edges: 2^20 labelings
        with pytest.raises(SearchBudgetExceeded):
            list(all_labelings(proto.topology, proto.label_space, budget=1000))


class TestValidActivationSets:
    def test_forced_nodes_always_included(self):
        sets = valid_activation_sets((1, 3, 2), 3)
        assert all(0 in t for t in sets)

    def test_no_empty_set(self):
        sets = valid_activation_sets((5, 5, 5), 3)
        assert frozenset() not in sets
        assert len(sets) == 7  # 2^3 - 1

    def test_all_forced(self):
        sets = valid_activation_sets((1, 1), 2)
        assert sets == [frozenset({0, 1})]


class TestStatesGraph:
    def test_every_run_is_a_path(self):
        proto = example1_protocol(3)
        inputs = default_inputs(proto)
        graph = StatesGraph(
            proto,
            inputs,
            r=2,
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        # all states have at least one successor (schedules never stall)
        assert all(graph.successors[k] for k in range(len(graph)))

    def test_attractor_of_stable_set_covers_initials_when_stabilizing(self):
        # r = n-2 = 2 on K_4: the protocol stabilizes, so from every initial
        # vertex every path inevitably reaches a stable labeling.
        proto = example1_protocol(4)
        inputs = default_inputs(proto)
        graph = StatesGraph(
            proto,
            inputs,
            r=2,
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        zero, one = stable_labeling_pair(4)
        region = graph.attractor_region({zero.values, one.values})
        assert all(k in region for k in graph.initial_indices)

    def test_initial_vertex_escapes_attractors_when_not_stabilizing(self):
        # r = n-1 = 2 on K_3: some initialization vertex admits a run that
        # avoids both stable labelings forever (Lemma 3.2 / Theorem 3.1).
        proto = example1_protocol(3)
        inputs = default_inputs(proto)
        graph = StatesGraph(
            proto,
            inputs,
            r=2,
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        zero, one = stable_labeling_pair(3)
        region = graph.attractor_region({zero.values, one.values})
        assert any(k not in region for k in graph.initial_indices)

    def test_single_labeling_attractors_are_disjoint_on_stables(self):
        proto = example1_protocol(3)
        inputs = default_inputs(proto)
        graph = StatesGraph(
            proto,
            inputs,
            r=1,
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        zero, one = stable_labeling_pair(3)
        attractor_zero = graph.attractor_region({zero.values})
        attractor_one = graph.attractor_region({one.values})
        assert not (attractor_zero & attractor_one)


class TestModelChecker:
    @pytest.mark.parametrize("n", [3, 4])
    def test_example1_not_label_n_minus_1_stabilizing(self, n):
        proto = example1_protocol(n)
        inputs = default_inputs(proto)
        verdict = decide_label_r_stabilizing(
            proto,
            inputs,
            n - 1,
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        assert not verdict.stabilizing
        assert verdict.witness is not None

    @pytest.mark.parametrize("n", [3, 4])
    def test_example1_is_label_n_minus_2_stabilizing(self, n):
        proto = example1_protocol(n)
        inputs = default_inputs(proto)
        verdict = decide_label_r_stabilizing(
            proto,
            inputs,
            max(n - 2, 1),
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        assert verdict.stabilizing

    def test_witness_replays_as_oscillation(self):
        proto = example1_protocol(4)
        inputs = default_inputs(proto)
        verdict = decide_label_r_stabilizing(
            proto,
            inputs,
            3,
            initial_labelings=broadcast_labelings(proto.topology, proto.label_space),
        )
        witness = verdict.witness
        schedule = witness.to_schedule(proto.n)
        # the witness schedule respects (n-1)-fairness
        assert minimal_fairness(schedule, 300) <= 3
        sim = Simulator(proto, inputs)
        report = sim.run(witness.initial_labeling, schedule, max_steps=3000)
        assert report.outcome is RunOutcome.OSCILLATING

    def test_full_space_check_on_k3(self):
        # exhaustive (non-broadcast) initial labelings on K_3 agree
        proto = example1_protocol(3)
        inputs = default_inputs(proto)
        verdict = decide_label_r_stabilizing(proto, inputs, 2)
        assert not verdict.stabilizing
        verdict_sync = decide_label_r_stabilizing(proto, inputs, 1)
        assert verdict_sync.stabilizing

    def test_copy_ring_never_label_stabilizing(self):
        proto = copy_ring_protocol(3)
        verdict = decide_label_r_stabilizing(proto, default_inputs(proto), 1)
        assert not verdict.stabilizing

    def test_output_checker_detects_output_oscillation(self):
        proto = copy_ring_protocol(3)
        verdict = decide_output_r_stabilizing(proto, default_inputs(proto), 1)
        assert not verdict.stabilizing

    def test_output_checker_accepts_or_clique_synchronous(self):
        proto = or_clique_protocol(clique(3))
        verdict = decide_output_r_stabilizing(proto, default_inputs(proto), 1)
        assert verdict.stabilizing


class TestExample1Schedule:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_schedule_is_exactly_n_minus_1_fair(self, n):
        schedule = oscillating_schedule(n)
        assert minimal_fairness(schedule, 20 * n) == n - 1

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_oscillates_forever(self, n):
        proto = example1_protocol(n)
        sim = Simulator(proto, default_inputs(proto))
        report = sim.run(one_token_labeling(n), oscillating_schedule(n), max_steps=5000)
        assert report.outcome is RunOutcome.OSCILLATING
        assert report.cycle_length == n

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_converges_under_synchronous_schedule(self, n):
        from repro.core import SynchronousSchedule

        proto = example1_protocol(n)
        sim = Simulator(proto, default_inputs(proto))
        report = sim.run(one_token_labeling(n), SynchronousSchedule(n))
        assert report.outcome is RunOutcome.LABEL_STABLE
