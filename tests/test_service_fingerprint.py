"""Tests for the service layer's canonical fingerprints.

Two satellite suites guard the cache's content addressing:

* **Golden fixtures** (``tests/fixtures/golden_fingerprints.json``): the
  committed digests of the protocol zoo, schedule/fault components, and
  full case keys.  Any canonicalization drift — a reordered field, a
  changed tag letter, a new attribute leaking into the tree — changes these
  digests and would silently poison every existing on-disk cache; the
  fixture turns that into a loud test failure.  If a change is
  *intentional*, bump ``ENGINE_VERSION`` (retiring old caches) and
  regenerate the fixture.
* **Near-miss matrix**: cases differing in exactly one semantic dimension
  (a seed, a fault fire time, a schedule phase, one labeling bit, ...)
  must never share a fingerprint — a collision here would serve one case's
  result for another.  Cosmetic state (tags, names, case position) must
  *not* separate fingerprints, or identical resubmissions would always
  miss.
"""

import json
import pickle
import random
from pathlib import Path

import pytest

from repro.analysis import SweepCase
from repro.core import (
    Labeling,
    LambdaReaction,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
)
from repro.core.schedule import (
    ExplicitSchedule,
    RandomRFairSchedule,
    RoundRobinSchedule,
    ShiftedSchedule,
)
from repro.exceptions import FingerprintError
from repro.faults.models import RandomCorruption, StuckAtFault
from repro.faults.schedules import BurstFault, NoFaults, OneShotFault
from repro.graphs import clique, unidirectional_ring
from repro.service import ENGINE_VERSION, canonical, fingerprint
from repro.service.plan import plan_resilience_sweep, plan_sweep

FIXTURE = Path(__file__).parent / "fixtures" / "golden_fingerprints.json"


# Module-level reaction so the protocol (and plans over it) pickle.
def _forward_bit(incoming, _x):
    (value,) = incoming.values()
    return value, value


def _picklable_ring(n):
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _forward_bit) for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="ring")


def _golden() -> dict:
    return json.loads(FIXTURE.read_text())


def _zoo_protocols() -> dict:
    from repro.dynamics.congestion import congestion_protocol
    from repro.dynamics.diffusion import contagion_protocol
    from repro.power.counters import d_counter_protocol, two_counter_protocol
    from repro.power.unidirectional import worst_case_protocol
    from repro.stabilization.example_clique import example1_protocol

    return {
        "example1_clique_n4": example1_protocol(4),
        "two_counter_n5": two_counter_protocol(5),
        "d_counter_n5_mod3": d_counter_protocol(5, 3),
        "worst_case_n4_q2": worst_case_protocol(4, 2),
        "contagion_clique4_theta0.5": contagion_protocol(clique(4), 0.5),
        "congestion_players3": congestion_protocol(3),
    }


def _zoo_components() -> dict:
    return {
        "synchronous_n4": SynchronousSchedule(4),
        "round_robin_n4": RoundRobinSchedule(4),
        "random_rfair_n4_r2_seed7": RandomRFairSchedule(4, r=2, seed=7),
        "explicit_2cycle_n3": ExplicitSchedule(3, [(0,), (1, 2)], cycle=True),
        "no_faults": NoFaults(),
        "oneshot_t3_corrupt0.5_seed1": OneShotFault(
            3, RandomCorruption(0.5, seed=1)
        ),
    }


def _example1_plans():
    from repro.stabilization.example_clique import example1_protocol

    protocol = example1_protocol(4)
    topology = protocol.topology
    cases = [
        SweepCase((0,) * 4, Labeling(topology, (0,) * topology.m)),
        SweepCase((0,) * 4, Labeling(topology, (1, 0) * (topology.m // 2))),
    ]
    plan = plan_sweep(
        protocol, cases, lambda i, c: SynchronousSchedule(4), max_steps=100
    )
    rplan = plan_resilience_sweep(
        protocol,
        cases,
        lambda i, c: RoundRobinSchedule(4),
        lambda i, c: OneShotFault(3, RandomCorruption(0.5, seed=i)),
        max_steps=100,
    )
    return plan, rplan


class TestGoldenFingerprints:
    """The committed digests must be reproducible from source, forever
    (within one ``ENGINE_VERSION``)."""

    def test_fixture_matches_engine_version(self):
        assert _golden()["engine_version"] == ENGINE_VERSION

    def test_protocol_zoo_digests(self):
        golden = _golden()["protocols"]
        built = {name: fingerprint(p) for name, p in _zoo_protocols().items()}
        assert built == golden

    def test_component_digests(self):
        golden = _golden()["components"]
        built = {name: fingerprint(c) for name, c in _zoo_components().items()}
        assert built == golden

    def test_case_and_plan_digests(self):
        golden = _golden()["cases"]
        plan, rplan = _example1_plans()
        assert plan.case_fingerprint(plan.specs[0]) == golden["example1_sweep_case0"]
        assert plan.case_fingerprint(plan.specs[1]) == golden["example1_sweep_case1"]
        assert plan.plan_fingerprint == golden["example1_sweep_plan"]
        assert (
            rplan.case_fingerprint(rplan.specs[0])
            == golden["example1_resilience_case0"]
        )
        assert rplan.plan_fingerprint == golden["example1_resilience_plan"]

    def test_rebuilding_gives_identical_digests(self):
        # Construction is deterministic: two independent builds agree.
        first = {name: fingerprint(p) for name, p in _zoo_protocols().items()}
        second = {name: fingerprint(p) for name, p in _zoo_protocols().items()}
        assert first == second

    def test_pickled_plan_keeps_its_fingerprints(self):
        # The id-keyed memo must not survive pickling (ids are
        # process-local); fingerprints recomputed after a round-trip match.
        # Needs module-level reactions — closure-built protocols (the zoo)
        # do not pickle, by design.
        protocol = _picklable_ring(3)
        topology = protocol.topology
        plan = plan_sweep(
            protocol,
            [SweepCase((0, 0, 0), Labeling(topology, (0, 1, 0)))],
            lambda i, c: SynchronousSchedule(3),
        )
        before = plan.case_fingerprints()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.case_fingerprints() == before
        assert clone.plan_fingerprint == plan.plan_fingerprint


def _ring_protocol(n=3, flip=False):
    topology = unidirectional_ring(n)

    def forward(incoming, _x):
        (value,) = incoming.values()
        return value, value

    def negate(incoming, _x):
        (value,) = incoming.values()
        return 1 - value, 1 - value

    fn = negate if flip else forward
    reactions = [UniformReaction(topology.out_edges(i), fn) for i in range(n)]
    return StatelessProtocol(topology, binary(), reactions, name="ring")


class TestNearMissMatrix:
    """One-dimension-apart cases must never collide."""

    def _case_key(self, *, inputs=(0, 0, 0), values=(0, 0, 0), outputs=None,
                  schedule=None, faults=None, max_steps=64, flip=False,
                  kind=None):
        protocol = _ring_protocol(flip=flip)
        topology = protocol.topology
        case = SweepCase(
            inputs, Labeling(topology, values), initial_outputs=outputs
        )
        if schedule is None:
            schedule = SynchronousSchedule(3)
        if kind is None:
            kind = "sweep" if faults is None else "resilience"
        if kind == "sweep":
            plan = plan_sweep(
                protocol, [case], lambda i, c: schedule, max_steps=max_steps
            )
        else:
            plan = plan_resilience_sweep(
                protocol,
                [case],
                lambda i, c: schedule,
                lambda i, c: faults if faults is not None else NoFaults(),
                max_steps=max_steps,
            )
        return plan.case_fingerprint(plan.specs[0])

    def test_every_semantic_dimension_separates(self):
        baseline_faults = OneShotFault(3, RandomCorruption(0.5, seed=0))
        variants = {
            "baseline": self._case_key(),
            # case state
            "input_entry": self._case_key(inputs=(1, 0, 0)),
            "labeling_bit": self._case_key(values=(1, 0, 0)),
            "initial_outputs": self._case_key(outputs=(0, 0, 0)),
            "max_steps": self._case_key(max_steps=65),
            "reaction_body": self._case_key(flip=True),
            # schedule identity and phase
            "round_robin": self._case_key(schedule=RoundRobinSchedule(3)),
            "rfair_seed_0": self._case_key(
                schedule=RandomRFairSchedule(3, r=2, seed=0)
            ),
            "rfair_seed_1": self._case_key(
                schedule=RandomRFairSchedule(3, r=2, seed=1)
            ),
            "rfair_r": self._case_key(
                schedule=RandomRFairSchedule(3, r=3, seed=0)
            ),
            "explicit": self._case_key(
                schedule=ExplicitSchedule(3, [(0,), (1,), (2,)], cycle=True)
            ),
            "explicit_rotated": self._case_key(
                schedule=ExplicitSchedule(3, [(1,), (2,), (0,)], cycle=True)
            ),
            "shifted_1": self._case_key(
                schedule=ShiftedSchedule(SynchronousSchedule(3), 1)
            ),
            "shifted_2": self._case_key(
                schedule=ShiftedSchedule(SynchronousSchedule(3), 2)
            ),
            # plan kind: the same physical case, fault-free, still must not
            # collide with the plain sweep (different engine code path)
            "resilience_no_faults": self._case_key(faults=NoFaults()),
            # fault plan dimensions
            "fault_baseline": self._case_key(faults=baseline_faults),
            "fault_time": self._case_key(
                faults=OneShotFault(4, RandomCorruption(0.5, seed=0))
            ),
            "fault_fraction": self._case_key(
                faults=OneShotFault(3, RandomCorruption(0.25, seed=0))
            ),
            "fault_seed": self._case_key(
                faults=OneShotFault(3, RandomCorruption(0.5, seed=1))
            ),
            "fault_schedule_shape": self._case_key(
                faults=BurstFault([3], RandomCorruption(0.5, seed=0))
            ),
            "fault_model_kind": self._case_key(
                faults=OneShotFault(3, StuckAtFault([(0, 1)], 1))
            ),
        }
        digests = list(variants.values())
        assert len(set(digests)) == len(digests), {
            name: digest[:12] for name, digest in variants.items()
        }

    def test_cosmetic_state_does_not_separate(self):
        protocol = _ring_protocol()
        topology = protocol.topology
        schedule = SynchronousSchedule(3)

        def build(tag, name, order):
            renamed = StatelessProtocol(
                topology, protocol.label_space, protocol.reactions, name=name
            )
            cases = [
                SweepCase((0, 0, 0), Labeling(topology, (0, 0, 0)), tag=tag),
                SweepCase((1, 1, 1), Labeling(topology, (1, 1, 1)), tag=tag),
            ]
            if order:
                cases.reverse()
            return plan_sweep(renamed, cases, lambda i, c: schedule)

        a = build(tag="first", name="ring", order=False)
        b = build(tag="second", name="renamed-ring", order=True)
        # Same physical cases -> same fingerprints, regardless of tag,
        # protocol name, or position in the sweep.
        assert set(a.case_fingerprints()) == set(b.case_fingerprints())
        # ...but the plan fingerprint is order-sensitive (a plan is a
        # sequence, and job records key on the exact submission).
        assert a.plan_fingerprint != b.plan_fingerprint


class TestRefusals:
    """Objects without a stable identity are rejected, not mis-keyed."""

    def test_lambda_reactions_are_refused(self):
        topology = clique(3)
        reactions = [
            LambdaReaction(lambda incoming, x: (0, 0)) for _ in range(3)
        ]
        protocol = StatelessProtocol(topology, binary(), reactions)
        with pytest.raises(FingerprintError, match="lambda"):
            fingerprint(protocol)

    def test_raw_rng_state_is_refused(self):
        with pytest.raises(FingerprintError):
            fingerprint(random.Random(0))

    def test_rfair_schedule_fingerprints_by_seed_not_rng(self):
        # The RNG-bearing schedule is canonicalized through its registered
        # (n, r, p, seed) extractor, so consuming the RNG changes nothing.
        schedule = RandomRFairSchedule(4, r=2, seed=9)
        before = fingerprint(schedule)
        schedule.active(0), schedule.active(7)  # realize some steps
        assert fingerprint(schedule) == before
        assert fingerprint(RandomRFairSchedule(4, r=2, seed=9)) == before

    def test_canonical_is_repr_stable(self):
        # canonical() output feeds repr() -> sha256; it must be a pure tree
        # of scalars/tuples (no object addresses leaking in).
        tree = canonical(_zoo_components()["oneshot_t3_corrupt0.5_seed1"])
        assert "0x" not in repr(tree)
