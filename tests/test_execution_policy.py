"""Tests for the unified :class:`repro.ExecutionPolicy` API.

The whole module runs under ``-W error::DeprecationWarning`` (scoped via
``pytestmark``): any *internal* code path that still routes through a
legacy scattered keyword blows up here.  Legacy spellings are exercised
only inside explicit ``pytest.warns(DeprecationWarning)`` blocks, where the
shim contract is the thing under test: same report, bit for bit, plus one
warning naming the replacement.

The golden-fingerprint tests pin the policy's cosmetic contract: no policy
field may ever reach a cache key.  If they fail, either a policy field
leaked into fingerprinting (a cache-poisoning bug) or the fingerprint
scheme itself was deliberately revised (update the constants in the same
commit as the scheme).
"""

import dataclasses

import pytest

from repro import DEFAULT_POLICY, ExecutionPolicy
from repro.analysis import SweepCase, run_resilience_sweep, run_sweep
from repro.core import Labeling
from repro.exceptions import ValidationError
from repro.faults.schedules import NoFaults
from repro.policy import UNSET, resolve_policy
from repro.service import SweepService, execute_plan, plan_sweep
from repro.stabilization import (
    ExplorationGraph,
    StatesGraph,
    decide_label_r_stabilizing,
)
from repro.stabilization.example_clique import example1_protocol

from tests.helpers import random_bit_labeling
from tests.test_service_jobs import _plan, _ring, _sync

pytestmark = pytest.mark.filterwarnings("error::DeprecationWarning")


def _cases(protocol, count=6):
    return [
        SweepCase(
            (0,) * protocol.n,
            random_bit_labeling(protocol.topology, seed=s),
            tag=s,
        )
        for s in range(count)
    ]


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy == DEFAULT_POLICY
        assert policy.executor == "serial"
        assert policy.kernel is None
        assert policy.processes is None
        assert policy.frontier == "auto"
        assert policy.symmetry == "none"

    def test_frozen_value_object(self):
        policy = ExecutionPolicy(executor="batch")
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.executor = "serial"
        assert policy == ExecutionPolicy(executor="batch")
        assert hash(policy) == hash(ExecutionPolicy(executor="batch"))

    def test_merged_derives_and_revalidates(self):
        base = ExecutionPolicy(executor="batch")
        derived = base.merged(kernel="numpy", processes=2)
        assert derived.kernel == "numpy"
        assert base.kernel is None  # original untouched
        with pytest.raises(ValidationError, match="executor='batch'"):
            DEFAULT_POLICY.merged(kernel="numpy")

    def test_describe_names_only_the_changed_fields(self):
        assert ExecutionPolicy().describe() == "ExecutionPolicy(defaults)"
        text = ExecutionPolicy(executor="batch", processes=2).describe()
        assert "executor='batch'" in text
        assert "processes=2" in text
        assert "frontier" not in text

    @pytest.mark.parametrize(
        "fields, match",
        [
            ({"executor": "gpu"}, "unknown executor"),
            ({"executor": "batch", "kernel": "metal"}, "unknown kernel"),
            ({"kernel": "numpy"}, "executor='batch'"),
            ({"chunk_rows": 512}, "executor='batch'"),
            ({"executor": "batch", "chunk_rows": 0}, "chunk_rows"),
            ({"processes": 0}, "processes"),
            ({"frontier": "threads"}, "unknown frontier"),
            ({"batch_min_rows": 0}, "batch_min_rows"),
        ],
    )
    def test_validation(self, fields, match):
        with pytest.raises(ValidationError, match=match):
            ExecutionPolicy(**fields)


class TestResolvePolicy:
    def test_explicit_policy_wins(self):
        policy = ExecutionPolicy(processes=2)
        resolved = resolve_policy(policy, {"processes": UNSET}, api="f")
        assert resolved is policy

    def test_defaults_apply_without_any_input(self):
        assert resolve_policy(None, {}, api="f") is DEFAULT_POLICY
        fallback = ExecutionPolicy(executor="batch")
        assert resolve_policy(None, {}, api="f", fallback=fallback) is fallback

    def test_unset_legacy_values_are_not_passed(self):
        # No warning may escape (the module-level error filter enforces it).
        resolved = resolve_policy(
            None, {"processes": UNSET, "executor": UNSET}, api="f"
        )
        assert resolved is DEFAULT_POLICY

    def test_legacy_keywords_warn_and_fold_into_the_fallback(self):
        fallback = ExecutionPolicy(executor="batch", kernel="numpy")
        with pytest.warns(DeprecationWarning, match="f: the processes"):
            resolved = resolve_policy(
                None, {"processes": 3, "executor": UNSET}, api="f",
                fallback=fallback,
            )
        assert resolved == fallback.merged(processes=3)

    def test_warning_names_every_passed_keyword(self):
        with pytest.warns(
            DeprecationWarning, match="executor, kernel.*deprecated"
        ):
            resolve_policy(
                None,
                {"executor": "batch", "kernel": "numpy", "processes": UNSET},
                api="f",
            )

    def test_policy_plus_legacy_is_ambiguous(self):
        with pytest.raises(ValidationError, match="not both"):
            resolve_policy(
                DEFAULT_POLICY, {"processes": 2}, api="run_sweep"
            )

    def test_policy_type_is_checked(self):
        with pytest.raises(ValidationError, match="must be an ExecutionPolicy"):
            resolve_policy("batch", {}, api="run_sweep")


class TestSweepShims:
    """Legacy keywords on the sweep runners: warn once, same report."""

    def test_run_sweep_legacy_executor_matches_policy(self):
        protocol = _ring(4)
        cases = _cases(protocol)
        via_policy = run_sweep(
            protocol,
            cases,
            _sync,
            max_steps=60,
            policy=ExecutionPolicy(executor="batch"),
        )
        with pytest.warns(DeprecationWarning, match="run_sweep: the executor"):
            via_legacy = run_sweep(
                protocol, cases, _sync, max_steps=60, executor="batch"
            )
        assert via_legacy == via_policy
        # ... and both match the plain serial default.
        assert via_policy == run_sweep(protocol, cases, _sync, max_steps=60)

    def test_run_sweep_legacy_processes_matches_policy(self):
        protocol = _ring(4)
        cases = _cases(protocol)
        via_policy = run_sweep(
            protocol,
            cases,
            _sync,
            max_steps=60,
            policy=ExecutionPolicy(processes=2),
        )
        with pytest.warns(
            DeprecationWarning, match="pass policy=ExecutionPolicy"
        ):
            via_legacy = run_sweep(
                protocol, cases, _sync, max_steps=60, processes=2
            )
        assert via_legacy == via_policy

    def test_run_sweep_rejects_policy_plus_legacy(self):
        protocol = _ring(4)
        with pytest.raises(ValidationError, match="not both"):
            run_sweep(
                protocol,
                _cases(protocol, 2),
                _sync,
                max_steps=60,
                policy=ExecutionPolicy(executor="batch"),
                executor="batch",
            )

    def test_run_resilience_sweep_shim(self):
        protocol = _ring(4)
        cases = _cases(protocol)

        def faults(index, case):
            return NoFaults()

        via_policy = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            faults,
            max_steps=60,
            policy=ExecutionPolicy(executor="batch"),
        )
        with pytest.warns(
            DeprecationWarning, match="run_resilience_sweep: the executor"
        ):
            via_legacy = run_resilience_sweep(
                protocol, cases, _sync, faults, max_steps=60, executor="batch"
            )
        assert via_legacy == via_policy


class TestServiceShims:
    def test_execute_plan_shim(self):
        plan, _, _ = _plan()
        via_policy = execute_plan(plan, policy=ExecutionPolicy(executor="batch"))
        with pytest.warns(
            DeprecationWarning, match="execute_plan: the executor"
        ):
            via_legacy = execute_plan(plan, executor="batch")
        assert via_legacy == via_policy
        assert via_policy == execute_plan(plan)

    def test_plan_attached_policy_needs_no_keywords_at_all(self):
        bare, protocol, cases = _plan()
        plan = plan_sweep(
            protocol,
            cases,
            _sync,
            max_steps=60,
            policy=ExecutionPolicy(executor="batch"),
        )
        # Executing the plan touches no legacy path and emits no warning.
        assert execute_plan(plan) == execute_plan(bare)

    def test_service_submit_shim(self):
        plan, _, _ = _plan()
        with SweepService() as service:
            via_policy = service.result(
                service.submit(plan, policy=ExecutionPolicy(executor="batch")),
                timeout=30,
            )
            with pytest.warns(
                DeprecationWarning, match="SweepService.submit: the executor"
            ):
                legacy_id = service.submit(plan, executor="batch")
            assert service.result(legacy_id, timeout=30) == via_policy


class TestExplorationShims:
    def test_exploration_graph_legacy_symmetry_matches_policy(self):
        protocol = example1_protocol(3)
        inputs = (0,) * 3
        inits = [random_bit_labeling(protocol.topology, seed=7)]
        via_policy = ExplorationGraph(
            protocol,
            inputs,
            2,
            inits,
            policy=ExecutionPolicy(symmetry="auto", frontier="serial"),
        )
        with pytest.warns(
            DeprecationWarning, match="ExplorationGraph: the .*symmetry"
        ):
            via_legacy = ExplorationGraph(
                protocol, inputs, 2, inits, symmetry="auto", frontier="serial"
            )
        assert via_legacy.state_keys == via_policy.state_keys
        assert len(via_legacy.edge_dst) == len(via_policy.edge_dst)

    def test_states_graph_accepts_a_policy(self):
        protocol = example1_protocol(3)
        inputs = (0,) * 3
        inits = [random_bit_labeling(protocol.topology, seed=7)]
        plain = StatesGraph(protocol, inputs, r=2, initial_labelings=inits)
        quotient = StatesGraph(
            protocol,
            inputs,
            r=2,
            initial_labelings=inits,
            policy=ExecutionPolicy(symmetry="auto"),
        )
        assert len(quotient.state_keys) <= len(plain.state_keys)
        with pytest.warns(DeprecationWarning, match="StatesGraph"):
            legacy = StatesGraph(
                protocol, inputs, r=2, initial_labelings=inits, symmetry="auto"
            )
        assert len(legacy.state_keys) == len(quotient.state_keys)

    def test_model_checker_accepts_a_policy(self):
        protocol = example1_protocol(3)
        inputs = (0,) * 3
        plain = decide_label_r_stabilizing(protocol, inputs, 2)
        via_policy = decide_label_r_stabilizing(
            protocol, inputs, 2, policy=ExecutionPolicy(symmetry="auto")
        )
        assert via_policy.stabilizing == plain.stabilizing
        with pytest.warns(
            DeprecationWarning, match="decide_label_r_stabilizing"
        ):
            via_legacy = decide_label_r_stabilizing(
                protocol, inputs, 2, symmetry="auto"
            )
        assert via_legacy.stabilizing == plain.stabilizing


class TestFingerprintCosmetics:
    """No policy spelling may ever reach a cache key."""

    #: Fingerprints of the fixed golden plan below, pinned at the current
    #: fingerprint-scheme version.  Only a deliberate scheme revision may
    #: change them — policies must not.
    GOLDEN_PLAN = (
        "cbdcba108627967d8437235397184487ebfb023f69fe4f2475adc8cea195c2ec"
    )
    GOLDEN_CASE = (
        "7ed2f577ecbbfa9f1d6b4be747ff3935c5720b58f84d2faab1b37bc2d517d324"
    )

    def _golden_plan(self, policy=None):
        protocol = _ring(4)
        case = SweepCase(
            (0, 0, 0, 0),
            Labeling(protocol.topology, (1, 0, 1, 0)),
            tag="golden",
        )
        return plan_sweep(
            protocol, [case], _sync, max_steps=32, policy=policy
        )

    @pytest.mark.parametrize(
        "policy",
        [
            None,
            ExecutionPolicy(),
            ExecutionPolicy(executor="batch", kernel="numba", processes=4),
            ExecutionPolicy(
                frontier="serial", symmetry="auto", batch_min_rows=1
            ),
        ],
        ids=["none", "default", "batch-numba-fanout", "exploration-knobs"],
    )
    def test_golden_fingerprints_ignore_every_policy_spelling(self, policy):
        plan = self._golden_plan(policy)
        assert plan.plan_fingerprint == self.GOLDEN_PLAN
        assert plan.case_fingerprints() == [self.GOLDEN_CASE]

    def test_policy_is_excluded_from_plan_equality_and_cache_reuse(self):
        bare = self._golden_plan()
        dressed = dataclasses.replace(
            bare, policy=ExecutionPolicy(executor="batch")
        )
        assert bare == dressed  # compare=False on the policy field
        assert bare.policy is None
        assert dressed.policy == ExecutionPolicy(executor="batch")
        assert dressed.plan_fingerprint == self.GOLDEN_PLAN

    def test_cross_executor_cache_hits(self):
        from repro.service import InMemoryCache

        plan, _, _ = _plan()
        cache = InMemoryCache()
        serial = execute_plan(plan, cache=cache)
        batch = execute_plan(
            plan, cache=cache, policy=ExecutionPolicy(executor="batch")
        )
        assert batch == serial
        assert cache.stats.hits >= len(plan)  # second run fully cache-served
