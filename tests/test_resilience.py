"""Resilience sweeps: the PR-2 acceptance matrix.

Every self-stabilizing construction in the library (generic protocol,
D-counter, TM-on-ring, circuit-on-ring, safe BGP) shows **100% recovery**
under ``RandomCorruption``; the non-stabilizing oscillation gadgets
(Example 1 under its (n-1)-fair schedule, the rotating copy-ring, the BGP
bad gadget) show **non-recovery**.  Plus the multiprocessing regression:
seeded resilience sweeps are bit-identical serial vs. fanned out.
"""

import random

import pytest

from repro import ExecutionPolicy
from repro.analysis import (
    RECOVERY_CRITERIA,
    ResilienceReport,
    SweepCase,
    run_resilience_sweep,
)
from repro.core import (
    Labeling,
    RandomRFairSchedule,
    RunOutcome,
    StatelessProtocol,
    SynchronousSchedule,
    UniformReaction,
    binary,
    default_inputs,
)
from repro.dynamics import NO_ROUTE, bad_gadget, bgp_protocol, good_gadget
from repro.exceptions import ValidationError
from repro.faults import (
    BurstFault,
    NoFaults,
    OneShotFault,
    RandomCorruption,
    StuckAtFault,
    TargetedCorruption,
)
from repro.graphs import clique, unidirectional_ring
from repro.power import (
    RingCircuitLayout,
    circuit_ring_protocol,
    d_counter_protocol,
    generic_protocol,
    machine_ring_protocol,
    machine_ring_round_bound,
    ring_inputs,
)
from repro.stabilization import (
    example1_protocol,
    one_token_labeling,
    oscillating_schedule,
)
from repro.substrates.circuits import parity_circuit
from repro.substrates.turing import ConfigurationGraph, parity_machine

from tests.helpers import random_bit_labeling


def _sync(index, case):
    return SynchronousSchedule(len(case.inputs))


def _random_cases(protocol, inputs, count, seed):
    rng = random.Random(seed)
    return [
        SweepCase(
            tuple(inputs),
            Labeling.random(protocol.topology, protocol.label_space, rng),
            tag=k,
        )
        for k in range(count)
    ]


class TestSelfStabilizingConstructionsRecover:
    def test_generic_protocol_full_recovery(self):
        topology = clique(4)
        f = lambda bits: (bits[0] & bits[1]) ^ bits[3]  # noqa: E731
        protocol = generic_protocol(topology, f)
        rng = random.Random(0)
        cases = []
        for _ in range(8):
            x = tuple(rng.randrange(2) for _ in range(4))
            cases.append(
                SweepCase(
                    x,
                    Labeling.random(topology, protocol.label_space, rng),
                    tag=x,
                )
            )
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(9, RandomCorruption(0.5, seed=i)),
            max_steps=60,
            recovered="label",
        )
        assert isinstance(report, ResilienceReport)
        assert report.all_recovered
        assert report.recovery_rate == 1.0
        # and the recovered outputs are the recomputed function values
        for result in report.results:
            assert set(result.outputs) == {f(result.tag)}
        # recovery bounded by the paper's 2n+2 rounds
        assert report.worst_recovery_rounds <= 2 * 4 + 2

    def test_d_counter_full_recovery(self):
        n, modulus = 5, 7
        protocol = d_counter_protocol(n, modulus)
        cases = _random_cases(protocol, (0,) * n, 6, seed=1)
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(4 * n + 4, RandomCorruption(0.6, seed=i)),
            max_steps=600,
            # the counter's job is to keep counting: recovery = the run
            # provably re-entered a cycle with synchronized outputs
            recovered=lambda r: r.outcome is RunOutcome.OSCILLATING
            and len(set(r.outputs)) == 1,
        )
        assert report.all_recovered
        assert report.non_recovered == ()

    def test_tm_on_ring_full_recovery(self):
        n = 3
        graph = ConfigurationGraph(parity_machine(), n)
        protocol = machine_ring_protocol(graph)
        bound = machine_ring_round_bound(graph)
        rng = random.Random(2)
        x = (1, 0, 1)
        cases = [
            SweepCase(
                x, Labeling.random(protocol.topology, protocol.label_space, rng), tag=k
            )
            for k in range(5)
        ]
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(bound // 2, RandomCorruption(0.5, seed=i)),
            max_steps=3 * bound + 200,
            recovered="output",
        )
        assert report.all_recovered
        for result in report.results:
            assert set(result.outputs) == {sum(x) % 2}
        assert report.worst_recovery_rounds <= bound

    def test_circuit_on_ring_full_recovery(self):
        circuit = parity_circuit(3)
        layout = RingCircuitLayout(circuit)
        protocol = circuit_ring_protocol(circuit)
        x = (1, 1, 0)
        inputs = ring_inputs(layout, x)
        rng = random.Random(3)
        cases = [
            SweepCase(
                inputs,
                Labeling.random(protocol.topology, protocol.label_space, rng),
                tag=k,
            )
            for k in range(4)
        ]
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(
                layout.round_bound() // 2, RandomCorruption(0.5, seed=i)
            ),
            max_steps=3 * layout.round_bound(),
            recovered="output",
        )
        assert report.all_recovered
        for result in report.results:
            assert set(result.outputs) == {circuit.evaluate(x)}

    def test_safe_bgp_full_recovery(self):
        protocol = bgp_protocol(good_gadget())
        initial = Labeling.uniform(protocol.topology, NO_ROUTE)
        cases = [
            SweepCase(default_inputs(protocol), initial, tag=k) for k in range(8)
        ]
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: BurstFault([5, 9], RandomCorruption(0.5, seed=i)),
            max_steps=200,
            recovered="label",
        )
        assert report.all_recovered
        # the unique routing tree is restored in every case
        for result in report.results:
            assert result.outputs[1] == (1, 0)


class TestOscillationGadgetsDoNotRecover:
    def test_bgp_bad_gadget_never_recovers(self):
        # No stable routing solution exists, so no corruption can help.
        protocol = bgp_protocol(bad_gadget())
        initial = Labeling.uniform(protocol.topology, NO_ROUTE)
        cases = [
            SweepCase(default_inputs(protocol), initial, tag=k) for k in range(6)
        ]
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(5, RandomCorruption(0.5, seed=i)),
            max_steps=400,
            recovered="label",
        )
        assert report.recovery_rate == 0.0
        assert report.non_recovered_count == len(cases)
        assert {r.outcome for r in report.results} == {RunOutcome.OSCILLATING}

    def test_copy_ring_stuck_at_fault_never_recovers(self):
        # A single stuck edge knocks the stable uniform labeling into the
        # rotating orbit, and the forwarding ring can never repair it.
        protocol = _copy_ring(4)
        uniform = Labeling.uniform(protocol.topology, 0)
        cases = [SweepCase((0,) * 4, uniform, tag=k) for k in range(3)]
        report = run_resilience_sweep(
            protocol,
            cases,
            _sync,
            lambda i, c: OneShotFault(
                5 + i, StuckAtFault([protocol.topology.edges[0]], 1)
            ),
            max_steps=100,
            recovered="label",
        )
        assert report.recovery_rate == 0.0
        assert {r.outcome for r in report.results} == {RunOutcome.OSCILLATING}

    def test_example1_adversarial_token_replant_keeps_oscillating(self):
        # An adversarial targeted fault re-plants the token exactly where
        # the (n-1)-fair oscillating schedule expects it: the run keeps
        # oscillating after the fault.
        n = 4
        protocol = example1_protocol(n)
        token = one_token_labeling(n)
        replant = TargetedCorruption(
            protocol.topology.edges,
            labels=one_token_labeling(n, holder=0).as_dict(),
        )
        cases = [SweepCase(default_inputs(protocol), token, tag=0)]
        report = run_resilience_sweep(
            protocol,
            cases,
            lambda i, c: oscillating_schedule(n),
            lambda i, c: OneShotFault(2 * n, replant),
            max_steps=200,
            recovered="label",
        )
        (result,) = report.results
        assert result.outcome is RunOutcome.OSCILLATING
        assert not result.recovered
        assert report.recovery_rate == 0.0


# -- multiprocessing reproducibility (module-level pieces so it pickles) -----


def _forward_bit(incoming, _x):
    (value,) = incoming.values()
    return value, value


def _copy_ring(n):
    topology = unidirectional_ring(n)
    reactions = [
        UniformReaction(topology.out_edges(i), _forward_bit) for i in range(n)
    ]
    return StatelessProtocol(topology, binary(), reactions, name="copy-ring")


def _seeded_random_schedule(index, case):
    return RandomRFairSchedule(len(case.inputs), r=3, seed=index)


def _seeded_corruption(index, case):
    return BurstFault([4, 11], RandomCorruption(0.5, seed=1000 + index))


class TestResilienceSweepMechanics:
    def test_serial_and_parallel_reports_bit_identical(self):
        # The PR-2 regression: seeded random schedules and fault models
        # must produce the same report whether the sweep runs in-process or
        # fans out over a pool (everything here pickles; on platforms
        # without pools the fallback makes this vacuous but still true).
        protocol = _copy_ring(4)
        cases = [
            SweepCase((0,) * 4, random_bit_labeling(protocol.topology, seed=s), tag=s)
            for s in range(9)
        ]
        serial = run_resilience_sweep(
            protocol,
            cases,
            _seeded_random_schedule,
            _seeded_corruption,
            max_steps=80,
        )
        parallel = run_resilience_sweep(
            protocol,
            cases,
            _seeded_random_schedule,
            _seeded_corruption,
            max_steps=80,
            policy=ExecutionPolicy(processes=3),
        )
        assert serial == parallel

    def test_unpicklable_sweep_falls_back_to_serial(self):
        protocol = example1_protocol(3)  # closure reactions: not picklable
        cases = [
            SweepCase(
                (0,) * 3, random_bit_labeling(protocol.topology, seed=s), tag=s
            )
            for s in range(3)
        ]
        with pytest.warns(RuntimeWarning, match="do not pickle"):
            report = run_resilience_sweep(
                protocol,
                cases,
                _sync,
                lambda i, c: OneShotFault(2, RandomCorruption(0.5, seed=i)),
                max_steps=50,
                policy=ExecutionPolicy(processes=4),
            )
        assert len(report) == 3

    def test_no_fault_control_matches_plain_sweep(self):
        from repro.analysis import run_sweep

        protocol = _copy_ring(4)
        cases = [
            SweepCase((0,) * 4, random_bit_labeling(protocol.topology, seed=s), tag=s)
            for s in range(6)
        ]
        plain = run_sweep(protocol, cases, _seeded_random_schedule, max_steps=60)
        control = run_resilience_sweep(
            protocol,
            cases,
            _seeded_random_schedule,
            lambda i, c: NoFaults(),
            max_steps=60,
        )
        for bare, injected in zip(plain.results, control.results, strict=True):
            assert injected.outcome == bare.outcome
            assert injected.label_rounds == bare.label_rounds
            assert injected.output_rounds == bare.output_rounds
            assert injected.steps_executed == bare.steps_executed
            assert injected.final_values == bare.final_values
            assert injected.outputs == bare.outputs
            assert injected.faults_fired == 0

    def test_recovery_criteria_and_report_surface(self):
        protocol = _copy_ring(3)
        stable = Labeling.uniform(protocol.topology, 0)
        rotating = Labeling(protocol.topology, (1, 0, 0))
        report = run_resilience_sweep(
            protocol,
            [
                SweepCase((0,) * 3, stable, tag="stable"),
                SweepCase((0,) * 3, rotating, tag="rotates"),
            ],
            _sync,
            lambda i, c: NoFaults(),
            max_steps=50,
            recovered="label",
        )
        assert report.recovered_count == 1
        assert report.non_recovered_count == 1
        assert report.recovery_rate == 0.5
        assert not report.all_recovered
        assert report.recovery_histogram() == {0: 1}
        assert report.worst_recovery_rounds == 0
        (loser,) = report.non_recovered
        assert loser.tag == "rotates"
        assert "recovered=1" in report.describe()
        # the orbit criterion accepts the provable oscillation too
        orbit = run_resilience_sweep(
            protocol,
            [SweepCase((0,) * 3, rotating, tag="rotates")],
            _sync,
            lambda i, c: NoFaults(),
            max_steps=50,
            recovered="orbit",
        )
        assert orbit.all_recovered

    def test_unknown_criterion_rejected(self):
        protocol = _copy_ring(3)
        with pytest.raises(ValidationError):
            run_resilience_sweep(
                protocol,
                [SweepCase((0,) * 3, Labeling.uniform(protocol.topology, 0))],
                _sync,
                lambda i, c: NoFaults(),
                recovered="nonsense",
            )

    def test_empty_sweep(self):
        protocol = _copy_ring(3)
        report = run_resilience_sweep(
            protocol, [], _sync, lambda i, c: NoFaults()
        )
        assert len(report) == 0
        assert report.recovery_rate == 1.0
        assert report.all_recovered

    def test_criteria_registry_is_consistent(self):
        assert set(RECOVERY_CRITERIA) == {"label", "output", "orbit"}
