"""Unit tests for spanning in-/out-trees (substrate of Proposition 2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.graphs import (
    Topology,
    broadcast_tree,
    clique,
    convergecast_tree,
    random_strongly_connected,
    unidirectional_ring,
)


class TestBroadcastTree:
    def test_ring_out_tree_is_chain(self):
        topo = unidirectional_ring(5)
        tree = broadcast_tree(topo, 0)
        assert tree.parent == {1: 0, 2: 1, 3: 2, 4: 3}
        assert tree.children[0] == (1,)

    def test_edges_exist_in_graph(self):
        topo = clique(5)
        tree = broadcast_tree(topo, 0)
        for child, parent in tree.parent.items():
            assert topo.has_edge(parent, child)

    def test_unreachable_raises(self):
        topo = Topology(3, [(1, 0), (2, 1), (0, 2), (2, 0)])
        # from node 0: 0 -> 2 -> 1: fine; use a graph where root cannot reach all
        broken = Topology(3, [(1, 0), (2, 0)])
        with pytest.raises(ValidationError):
            broadcast_tree(broken, 0)
        broadcast_tree(topo, 0)  # sanity: strongly connected case works


class TestConvergecastTree:
    def test_ring_in_tree_is_chain(self):
        topo = unidirectional_ring(4)
        tree = convergecast_tree(topo, 0)
        # next hop from i toward 0 follows the ring direction
        assert tree.parent == {3: 0, 2: 3, 1: 2}

    def test_edges_point_toward_root(self):
        topo = clique(4)
        tree = convergecast_tree(topo, 0)
        for node, hop in tree.parent.items():
            assert topo.has_edge(node, hop)

    def test_depths_decrease_along_parents(self):
        topo = random_strongly_connected(10, 5, seed=3)
        tree = convergecast_tree(topo, 0)
        for node in range(1, 10):
            assert tree.depth(node) == tree.depth(tree.parent[node]) + 1


@given(st.integers(min_value=2, max_value=14), st.integers(min_value=0, max_value=8))
def test_trees_span_every_node(n, extra):
    topo = random_strongly_connected(n, extra, seed=n * 100 + extra)
    out_tree = broadcast_tree(topo, 0)
    in_tree = convergecast_tree(topo, 0)
    assert set(out_tree.parent) == set(range(1, n))
    assert set(in_tree.parent) == set(range(1, n))
    # every node's in-tree path terminates at the root
    for node in range(1, n):
        seen = set()
        current = node
        while current != 0:
            assert current not in seen
            seen.add(current)
            current = in_tree.parent[current]
